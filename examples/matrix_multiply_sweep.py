#!/usr/bin/env python
"""Remote-acceleration overhead across matrix sizes (mini Fig. 4(c)).

Sweeps the Spector MM kernel from 16×16 to 2048×2048 on the three
deployment flavours — Native, BlastFunction over gRPC, BlastFunction over
shared memory — and prints where each transport's overhead matters: for
small compute-light calls the ~2 ms control signalling dominates; for large
matrices the extra data copies do; for compute-heavy sizes the overhead
vanishes into the kernel time (0.3% at 2048²).

Run:  python examples/matrix_multiply_sweep.py
"""

from repro.experiments import run_mm_sweep


def main():
    sizes = [16, 64, 256, 512, 1024, 2048]
    points = run_mm_sweep(sizes=sizes)
    by_size = {}
    for point in points:
        by_size.setdefault(point.label, {})[point.system] = point.rtt

    print(f"{'size':<10} {'native':>10} {'grpc':>10} {'shm':>10} "
          f"{'grpc ovh':>9} {'shm ovh':>9}")
    for label, systems in by_size.items():
        native = systems["native"]
        grpc = systems["blastfunction"]
        shm = systems["blastfunction_shm"]
        print(
            f"{label:<10} {native * 1e3:>8.2f}ms {grpc * 1e3:>8.2f}ms "
            f"{shm * 1e3:>8.2f}ms "
            f"{100 * (grpc - native) / native:>8.1f}% "
            f"{100 * (shm - native) / native:>8.1f}%"
        )

    print()
    print("Shared memory turns the gRPC data-plane penalty (3 copies +")
    print("protobuf) into a single memcpy; compute-bound sizes hide even")
    print("that, matching the paper's 0.27% relative overhead for MM.")


if __name__ == "__main__":
    main()

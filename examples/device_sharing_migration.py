#!/usr/bin/env python
"""Device allocation, reconfiguration and live migration walkthrough.

Shows the Accelerators Registry's control plane in action:

1. three Sobel functions fill the three boards (Algorithm 1 spreads them
   by connected-function count and programs each blank board once);
2. an MM function arrives — no board runs the ``mm`` bitstream, so the
   Registry picks a victim board, *migrates* its Sobel tenant to another
   board (create-before-delete, as Kubernetes does), and approves the
   reconfiguration;
3. all four functions then serve traffic concurrently.

Run:  python examples/device_sharing_migration.py
"""

from repro.cluster import DeviceQuery, WatchEventType, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.serverless import (
    FunctionController,
    FunctionSpec,
    Gateway,
    MMApp,
    SobelApp,
)
from repro.sim import Environment


def main():
    env = Environment()
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate

    log = []
    testbed.cluster.watch(lambda event: log.append(
        f"t={env.now:7.3f}s  {event.type.value:<8} pod {event.pod.name} "
        f"(node {event.pod.node.name if event.pod.node else '?'})"
    ))

    def show_devices(moment):
        print(f"\n--- devices at {moment} ---")
        for record in registry.devices.all():
            print(f"  {record.name} (node {record.node}): "
                  f"bitstream={record.configured_bitstream!r}, "
                  f"instances={sorted(record.instances)}")

    def flow():
        for index in range(1, 4):
            yield from gateway.deploy(FunctionSpec(
                name=f"sobel-{index}",
                app_factory=lambda: SobelApp(width=640, height=480),
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready(f"sobel-{index}")
        show_devices("after 3 Sobel deployments")

        print("\nDeploying mm-1: every board is busy with sobel, so the "
              "Registry\nmust free one (migrate its tenant) and "
              "reconfigure it...")
        yield from gateway.deploy(FunctionSpec(
            name="mm-1",
            app_factory=lambda: MMApp(n=256),
            device_query=DeviceQuery(accelerator="mm"),
        ))
        yield from controller.wait_ready("mm-1")
        yield env.timeout(15.0)  # let migration + reprogramming settle
        show_devices("after mm-1 deployment and migration")

        print("\nInvoking every function once:")
        for name in ("sobel-1", "sobel-2", "sobel-3", "mm-1"):
            latency, _ = yield from gateway.invoke(name)
            print(f"  {name}: {latency * 1e3:7.2f} ms")

    env.run(until=env.process(flow()))

    print(f"\nRegistry decisions: {registry.allocations} allocations, "
          f"{registry.migrations} migration(s)")
    print("\nPod lifecycle (watch events):")
    for line in log:
        print(f"  {line}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Elastic FPGA capacity: F1-style node autoscaling (paper future work).

"Future work will address the integration with AWS F1 for nodes
autoscaling."  This example runs that scenario: the three-board testbed is
driven hard enough that fleet utilization crosses the scale-out threshold,
the autoscaler provisions an F1 node (boot delay and all), the Accelerators
Registry starts allocating onto it, and two late-arriving functions land on
the fresh capacity.

Run:  python examples/elastic_f1_autoscaling.py
"""

from repro.cluster import (
    AutoscalerPolicy,
    DeviceQuery,
    NodeAutoscaler,
    build_testbed,
)
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.loadgen import run_load
from repro.serverless import (
    FunctionController,
    FunctionSpec,
    Gateway,
    SobelApp,
)
from repro.sim import AllOf, Environment


def main():
    env = Environment()
    testbed = build_testbed(env, functional=False, scrape_interval=1.0)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper, metrics_window=10.0,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate
    autoscaler = NodeAutoscaler(
        env, testbed, registry, router,
        policy=AutoscalerPolicy(
            scale_out_threshold=0.45, scale_in_threshold=-1.0,
            interval=2.0, cooldown=15.0, boot_delay=20.0, max_nodes=5,
        ),
    )

    def deploy(name):
        yield from gateway.deploy(FunctionSpec(
            name=name,
            app_factory=lambda: SobelApp(),
            device_query=DeviceQuery(accelerator="sobel"),
        ))
        yield from controller.wait_ready(name)

    def show_fleet(moment):
        print(f"\n--- fleet at {moment} (t={env.now:.1f}s) ---")
        for record in registry.devices.all():
            print(f"  {record.name} (node {record.node}): "
                  f"instances={sorted(record.instances)}")

    def scenario():
        for index in range(1, 4):
            yield from deploy(f"sobel-{index}")
        show_fleet("initial deployment (3 functions, 3 boards)")

        print("\nDriving all three functions at 45 rq/s each...")
        loads = [
            env.process(run_load(env, gateway, f"sobel-{index}",
                                 rate=45.0, duration=60.0))
            for index in range(1, 4)
        ]
        # While the fleet is saturated, two more tenants arrive.
        yield env.timeout(40.0)
        print(f"t={env.now:.1f}s: autoscaler performed "
              f"{autoscaler.scale_outs} scale-out(s); "
              f"added nodes: {autoscaler.added_nodes}")
        for index in range(4, 6):
            yield from deploy(f"sobel-{index}")
        show_fleet("after late arrivals")

        late_loads = [
            env.process(run_load(env, gateway, f"sobel-{index}",
                                 rate=30.0, duration=15.0))
            for index in range(4, 6)
        ]
        results = yield AllOf(env, loads + late_loads)
        stats = [results[p] for p in loads + late_loads]
        print("\nper-function results:")
        for s in stats:
            print(f"  {s.function}: {s.achieved_rate:6.2f} rq/s processed "
                  f"(target {s.target_rate:.0f}), "
                  f"mean latency {s.mean_latency * 1e3:6.2f} ms")

    env.run(until=env.process(scenario()))
    new_nodes = [n for n in testbed.cluster.nodes if n.startswith("F1-")]
    print(f"\nautoscaled nodes online: {new_nodes}")
    assert autoscaler.scale_outs >= 1, "expected at least one scale-out"
    late_devices = {
        registry.functions.instance(pod).device
        for name in ("sobel-4", "sobel-5")
        for pod in [p.name for p in
                    testbed.cluster.pods_of_function(name)]
    }
    print(f"late arrivals were allocated to: {sorted(late_devices)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Where does a BlastFunction request's time go?

Attaches the tracer to the full stack, drives a Sobel and an MM function
under load, then prints each function's latency decomposed into central
queue wait, FPGA device time and everything-else overhead (gateway, host
code, control round trips, data-plane copies) — and writes a Chrome/
Perfetto trace of the boards and Device Managers.

Run:  python examples/trace_latency_breakdown.py
Open: chrome://tracing  (load /tmp/blastfunction_trace.json)
"""

from repro.analysis import render_breakdown, request_breakdown
from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.loadgen import run_load
from repro.serverless import (
    FunctionController,
    FunctionSpec,
    Gateway,
    MMApp,
    SobelApp,
)
from repro.sim import AllOf, Environment
from repro.trace import Tracer, attach_gateway, attach_testbed, write_chrome_trace

TRACE_PATH = "/tmp/blastfunction_trace.json"


def main():
    env = Environment()
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate

    tracer = Tracer(env)
    attach_testbed(tracer, testbed)
    attach_gateway(tracer, gateway)

    def flow():
        yield from gateway.deploy(FunctionSpec(
            name="sobel-1", app_factory=lambda: SobelApp(),
            device_query=DeviceQuery(accelerator="sobel"),
        ))
        yield from gateway.deploy(FunctionSpec(
            name="mm-1", app_factory=lambda: MMApp(),
            device_query=DeviceQuery(accelerator="mm"),
        ))
        yield from controller.wait_ready("sobel-1")
        yield from controller.wait_ready("mm-1")
        loads = [
            env.process(run_load(env, gateway, "sobel-1", rate=30.0,
                                 duration=10.0)),
            env.process(run_load(env, gateway, "mm-1", rate=40.0,
                                 duration=10.0)),
        ]
        yield AllOf(env, loads)

    env.run(until=env.process(flow()))

    print(render_breakdown(request_breakdown(tracer)))
    print()
    for node in ("A", "B", "C"):
        board = f"fpga-{node}"
        if board in tracer.actors():
            busy = tracer.busy_fraction(board, 0.0, env.now)
            print(f"{board}: {busy * 100:5.1f}% busy over the whole run")

    write_chrome_trace(tracer, TRACE_PATH)
    print(f"\nChrome trace written to {TRACE_PATH} "
          f"({len(tracer.spans)} spans)")


if __name__ == "__main__":
    main()

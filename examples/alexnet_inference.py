#!/usr/bin/env python
"""Functional AlexNet inference through the full BlastFunction stack.

Runs the PipeCNN accelerator *functionally* (real conv/pool/LRN/FC math in
the board model) behind a Device Manager, invoked through the serverless
gateway — then validates the classification against a pure-NumPy forward
pass of the same network and weights.

This is the paper's heaviest use case: the host enqueues ~30 kernels per
inference across 8 layer boundaries, which is why its relative overhead
under BlastFunction is the largest of the three benchmarks (Table IV).

Run:  python examples/alexnet_inference.py      (~30 s of NumPy compute)
"""

import numpy as np

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.kernels import (
    alexnet_layers,
    conv2d_reference,
    lrn_reference,
    maxpool_reference,
)
from repro.serverless import (
    AlexNetApp,
    FunctionController,
    FunctionSpec,
    Gateway,
)
from repro.sim import Environment

SEED = 7


def numpy_forward(image, weights, biases):
    """Golden forward pass with the same layer configs and weights."""
    x = image
    for layer, w, b in zip(alexnet_layers(), weights, biases):
        conv = layer.conv
        w = w.reshape(conv.out_channels, conv.in_channels // conv.groups,
                      conv.kernel, conv.kernel)
        x = conv2d_reference(x, w, b, stride=conv.stride, pad=conv.pad,
                             groups=conv.groups, relu=conv.relu)
        if layer.pool is not None:
            x = maxpool_reference(x, layer.pool.kernel, layer.pool.stride)
        if layer.lrn is not None:
            lrn = layer.lrn
            x = lrn_reference(x, lrn.local_size, lrn.alpha, lrn.beta, lrn.k)
    return x.reshape(-1)


def main():
    env = Environment()
    testbed = build_testbed(env, functional=True)  # boards compute for real
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate

    app_holder = {}

    def make_app():
        app = AlexNetApp(functional=True, seed=SEED)
        app_holder["app"] = app
        return app

    def flow():
        yield from gateway.deploy(FunctionSpec(
            name="alexnet",
            app_factory=make_app,
            device_query=DeviceQuery(accelerator="pipecnn_alexnet"),
        ))
        yield from controller.wait_ready("alexnet")
        latency, result = yield from gateway.invoke("alexnet")
        return latency, result

    latency, result = env.run(until=env.process(flow()))
    print(f"inference latency (simulated): {latency * 1e3:.2f} ms")
    print(f"predicted class (accelerator): {result['top1']}")

    # Validate against a pure-NumPy forward pass with identical weights.
    app = app_holder["app"]
    rng = np.random.default_rng(SEED)
    weights, biases = [], []
    for layer in alexnet_layers():
        conv = layer.conv
        weights.append(
            (rng.standard_normal(conv.weight_count) * 0.01).astype(np.float32)
        )
        biases.append(np.zeros(conv.out_channels, dtype=np.float32))
    image = np.asarray(
        np.random.default_rng(SEED).standard_normal((3, 227, 227)),
        dtype=np.float32,
    )
    logits = numpy_forward(image, weights, biases)
    print(f"predicted class (golden):      {int(logits.argmax())}")
    assert int(logits.argmax()) == result["top1"], "classification mismatch"
    print("accelerator output matches the golden model")


if __name__ == "__main__":
    main()

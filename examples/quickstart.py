#!/usr/bin/env python
"""Quickstart: the same OpenCL host code on the vendor runtime and on
BlastFunction.

Demonstrates the paper's core transparency claim in ~80 lines: one host
function (write image → Sobel kernel → read result) runs unchanged against

1. the **native** platform (direct access to a local FPGA board), and
2. the **BlastFunction** platform (Remote OpenCL Library → Device Manager),

producing bit-identical results, with BlastFunction adding only ~2 ms.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.kernels import sobel_reference
from repro.ocl import Context, native_platform
from repro.rpc import Network
from repro.sim import Environment

WIDTH, HEIGHT = 256, 256


def sobel_host(platform, image):
    """Host code, written once: runs on EITHER platform unchanged."""
    context = Context(platform.get_devices())
    queue = context.create_queue()
    program = context.create_program("sobel")
    yield from program.build()
    kernel = program.create_kernel("sobel")
    in_buf = context.create_buffer(image.nbytes)
    out_buf = context.create_buffer(image.nbytes)
    kernel.set_args(in_buf, out_buf, WIDTH, HEIGHT)

    yield from queue.write_buffer(in_buf, image)
    yield from queue.run_kernel(kernel)
    data = yield from queue.read_buffer(out_buf)
    context.release()
    return np.frombuffer(data, dtype=np.uint32).reshape(image.shape)


def run_native(image):
    env = Environment()
    board = FPGABoard(env, name="fpga-local", functional=True)
    platform = native_platform(env, board, standard_library())

    def main():
        result = yield from sobel_host(platform, image)
        return result

    result = env.run(until=env.process(main()))
    return result, env.now


def run_blastfunction(image):
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, name="fpga-B", functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)

    def main():
        platform = yield from remote_platform(
            env, "quickstart-fn", node, manager, network, library
        )
        result = yield from sobel_host(platform, image)
        return result

    result = env.run(until=env.process(main()))
    return result, env.now


def main():
    rng = np.random.default_rng(42)
    image = rng.integers(0, 4096, size=(HEIGHT, WIDTH), dtype=np.uint32)

    native_result, native_time = run_native(image)
    bf_result, bf_time = run_blastfunction(image)
    golden = sobel_reference(image)

    assert np.array_equal(native_result, golden), "native result wrong"
    assert np.array_equal(bf_result, golden), "BlastFunction result wrong"
    assert np.array_equal(native_result, bf_result)

    # Both timings include the one-off 2.5 s board programming.
    print(f"image: {WIDTH}x{HEIGHT}, results identical on both platforms")
    print(f"native runtime:         {native_time * 1e3:9.3f} ms (simulated)")
    print(f"BlastFunction runtime:  {bf_time * 1e3:9.3f} ms (simulated)")
    print(f"sharing overhead:       {(bf_time - native_time) * 1e3:9.3f} ms")
    print("transparency: host code was byte-for-byte the same in both runs")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Bring-your-own-accelerator: a streaming analytics pipeline.

Demonstrates extending BlastFunction beyond the paper's three benchmarks:
two additional Spector accelerators (a FIR low-pass filter and a
histogram) are packaged into the bitstream library, deployed as serverless
functions, and shared across the testbed's boards. The functions run
*functionally* — results are validated against NumPy golden models — and
then serve a short mixed load.

This is the full recipe for adding an accelerator:
  1. subclass `AcceleratorKernel` (see `repro.kernels.fir`),
  2. package it in a `Bitstream` (see `extended_library`),
  3. write the host `FunctionApp` below,
  4. deploy with a `DeviceQuery` naming the new bitstream.

Run:  python examples/streaming_analytics.py
"""

import numpy as np

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.fpga import extended_library
from repro.kernels import fir_reference, histogram_reference
from repro.loadgen import run_load
from repro.ocl import Context
from repro.serverless import (
    FunctionApp,
    FunctionController,
    FunctionSpec,
    Gateway,
)
from repro.sim import AllOf, Environment

N_SAMPLES = 1 << 16
TAPS = 32
BINS = 64
SEED = 2024


class FIRApp(FunctionApp):
    """Low-pass filter a fixed telemetry window per request."""

    host_overhead = 1.0e-3

    def setup(self, env, platform, node):
        rng = np.random.default_rng(SEED)
        self.signal = rng.standard_normal(N_SAMPLES).astype(np.float32)
        self.coeffs = (np.hamming(TAPS) / np.hamming(TAPS).sum()).astype(
            np.float32
        )
        self.context = Context(platform.get_devices())
        self.queue = self.context.create_queue()
        program = self.context.create_program("fir")
        yield from program.build()
        self.kernel = program.create_kernel("fir")
        self.sig_buf = self.context.create_buffer(self.signal.nbytes)
        self.coef_buf = self.context.create_buffer(self.coeffs.nbytes)
        self.out_buf = self.context.create_buffer(self.signal.nbytes)
        self.kernel.set_args(self.sig_buf, self.coef_buf, self.out_buf,
                             N_SAMPLES, TAPS)
        yield from self.queue.write_buffer(self.coef_buf, self.coeffs)

    def handle(self, request):
        self.queue.enqueue_write_buffer(self.sig_buf, self.signal)
        self.queue.enqueue_kernel(self.kernel)
        data = yield from self.queue.read_buffer(self.out_buf)
        out = np.frombuffer(data, dtype=np.float32)
        return {"rms": float(np.sqrt(np.mean(out ** 2))), "data": out}


class HistogramApp(FunctionApp):
    """Histogram a fixed event batch per request."""

    host_overhead = 1.0e-3

    def setup(self, env, platform, node):
        rng = np.random.default_rng(SEED + 1)
        self.values = rng.integers(
            0, 2**32, size=N_SAMPLES, dtype=np.uint32
        )
        self.context = Context(platform.get_devices())
        self.queue = self.context.create_queue()
        program = self.context.create_program("histogram")
        yield from program.build()
        self.kernel = program.create_kernel("hist")
        self.val_buf = self.context.create_buffer(self.values.nbytes)
        self.count_buf = self.context.create_buffer(BINS * 4)
        self.kernel.set_args(self.val_buf, self.count_buf, N_SAMPLES, BINS)

    def handle(self, request):
        self.queue.enqueue_write_buffer(self.val_buf, self.values)
        self.queue.enqueue_kernel(self.kernel)
        data = yield from self.queue.read_buffer(self.count_buf)
        counts = np.frombuffer(data, dtype=np.uint32)
        return {"counts": counts, "total": int(counts.sum())}


def main():
    env = Environment()
    library = extended_library()
    testbed = build_testbed(env, library=library, functional=True)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate

    def scenario():
        yield from gateway.deploy(FunctionSpec(
            name="lowpass", app_factory=FIRApp,
            device_query=DeviceQuery(accelerator="fir"),
        ))
        yield from gateway.deploy(FunctionSpec(
            name="eventhist", app_factory=HistogramApp,
            device_query=DeviceQuery(accelerator="histogram"),
        ))
        yield from controller.wait_ready("lowpass")
        yield from controller.wait_ready("eventhist")

        fir_latency, fir_result = yield from gateway.invoke("lowpass")
        hist_latency, hist_result = yield from gateway.invoke("eventhist")

        # Validate against the golden models.
        rng = np.random.default_rng(SEED)
        signal = rng.standard_normal(N_SAMPLES).astype(np.float32)
        coeffs = (np.hamming(TAPS) / np.hamming(TAPS).sum()).astype(
            np.float32
        )
        np.testing.assert_allclose(
            fir_result["data"], fir_reference(signal, coeffs), rtol=1e-4
        )
        rng2 = np.random.default_rng(SEED + 1)
        values = rng2.integers(0, 2**32, size=N_SAMPLES, dtype=np.uint32)
        np.testing.assert_array_equal(
            fir_result["data"].shape, (N_SAMPLES,)
        )
        np.testing.assert_array_equal(
            hist_result["counts"], histogram_reference(values, BINS)
        )
        assert hist_result["total"] == N_SAMPLES

        print(f"lowpass:   latency {fir_latency * 1e3:6.2f} ms, "
              f"rms {fir_result['rms']:.4f}  (matches golden model)")
        print(f"eventhist: latency {hist_latency * 1e3:6.2f} ms, "
              f"{hist_result['total']} events binned  (matches golden)")

        print("\nshort mixed load (5 s)...")
        loads = [
            env.process(run_load(env, gateway, "lowpass", rate=50.0,
                                 duration=5.0)),
            env.process(run_load(env, gateway, "eventhist", rate=80.0,
                                 duration=5.0)),
        ]
        results = yield AllOf(env, loads)
        for load in loads:
            stats = results[load]
            print(f"  {stats.function}: {stats.achieved_rate:.1f} rq/s "
                  f"(target {stats.target_rate:.0f}), "
                  f"mean {stats.mean_latency * 1e3:.2f} ms")

        placements = {
            record.name: sorted(record.instances)
            for record in registry.devices.all() if record.instances
        }
        print(f"\nplacements: {placements}")

    env.run(until=env.process(scenario()))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A multi-tenant Sobel edge-detection service (mini Table II).

Deploys five identical Sobel functions onto the paper's three-node
FPGA-as-a-Service testbed — the Accelerators Registry allocates each
instance to a Device Manager and forces co-location for shared memory —
then drives every endpoint with a closed-loop `hey`-style load generator
and reports per-function FPGA time utilization, latency and throughput.

Compare with a Native deployment, which fits only one function per board.

Run:  python examples/edge_detection_service.py
"""

from repro.experiments import rates_for, run_scenario
from repro.experiments.config import LoadTiming
from repro.serverless import SobelApp


def main():
    timing = LoadTiming(warmup=2.0, duration=10.0)

    print("=== BlastFunction: 5 Sobel functions sharing 3 FPGAs ===")
    bf = run_scenario(
        use_case="sobel", configuration="medium", runtime="blastfunction",
        app_factory=lambda: SobelApp(),
        accelerator="sobel",
        rates=rates_for("sobel", "medium", "blastfunction"),
        timing=timing,
    )
    _report(bf)

    print()
    print("=== Native: 3 Sobel functions, one FPGA each ===")
    native = run_scenario(
        use_case="sobel", configuration="medium", runtime="native",
        app_factory=lambda: SobelApp(),
        accelerator="sobel",
        rates=rates_for("sobel", "medium", "native"),
        timing=timing,
    )
    _report(native)

    print()
    print(f"BlastFunction served {bf.total_processed:.1f} rq/s on the same "
          f"3 boards vs {native.total_processed:.1f} rq/s Native "
          f"({bf.total_utilization_pct:.1f}% vs "
          f"{native.total_utilization_pct:.1f}% aggregate utilization).")


def _report(result):
    print(f"{'function':<10} {'node':<5} {'util%':>7} {'latency':>9} "
          f"{'processed':>10} {'target':>7}")
    for fn in result.functions:
        print(f"{fn.function:<10} {fn.node:<5} {fn.utilization_pct:>6.2f} "
              f"{fn.latency * 1e3:>7.2f}ms {fn.processed:>7.2f}rq/s "
              f"{fn.target:>5.0f}rq/s")


if __name__ == "__main__":
    main()

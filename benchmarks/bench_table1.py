"""Table I: the load configurations driving every multi-function test.

Table I is an input table, not a measurement; this bench regenerates it
and validates its structure against the paper (per-benchmark configurations
and descending per-function rates).
"""

from repro.experiments import TABLE1_RATES, run_table1


def _render():
    return run_table1()


def test_table1_configurations(benchmark):
    text = benchmark.pedantic(_render, rounds=1, iterations=1)

    assert "Use-Case" in text
    # Paper rows: sobel and MM have low/medium/high, AlexNet only two.
    assert set(TABLE1_RATES["sobel"]) == {"low", "medium", "high"}
    assert set(TABLE1_RATES["mm"]) == {"low", "medium", "high"}
    assert set(TABLE1_RATES["alexnet"]) == {"medium", "high"}
    for use_case, configurations in TABLE1_RATES.items():
        for rates in configurations.values():
            assert len(rates) == 5
            assert rates == sorted(rates, reverse=True)
    # Spot-check exact paper values.
    assert TABLE1_RATES["sobel"]["high"] == [60, 50, 35, 30, 15]
    assert TABLE1_RATES["mm"]["low"] == [28, 21, 14, 7, 7]
    assert TABLE1_RATES["alexnet"]["high"] == [9, 9, 6, 6, 3]

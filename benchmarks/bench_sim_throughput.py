"""Simulation-kernel throughput: DES events/sec and Table II wall clock.

Unlike the other benchmarks (which check *simulated* results), this one
measures the simulator itself — the real-time cost of the zero-copy data
plane and the DES hot path.  It writes ``BENCH_simcore.json`` at the repo
root: the committed copy is the performance baseline the CI quick-profile
smoke compares against (a >25 % wall-clock regression on the Table II run
fails the build; see ``.github/workflows/ci.yml``).

``baseline_*`` figures are the pre-optimization numbers recorded on the
machine that produced the committed file (bytes-based data plane, un-slotted
event kernel); ``recorded_full_*`` is the paper-length run measured on the
same machine, which the quick benchmark cannot afford to repeat.
"""

import json
import platform
import statistics
import time
from pathlib import Path

from repro.experiments.config import load_timing, rates_for
from repro.experiments.loadtest import run_scenario
from repro.experiments.tables import ACCELERATORS, APP_FACTORIES, run_use_case
from repro.faults import NetworkFaultPlane
from repro.sim import Environment

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_simcore.json"

#: Pre-optimization wall clocks (same machine as the committed baselines).
BASELINE_QUICK_WALL_S = 7.60
BASELINE_FULL_WALL_S = 29.19
#: Paper-length wall clock measured after the optimization.
RECORDED_FULL_WALL_S = 5.77

_results: dict = {}


def _pingpong(env: Environment, steps: int):
    for _ in range(steps):
        yield env.timeout(0.001)


def test_des_event_throughput(benchmark):
    """Raw kernel throughput: 200 processes × 500 timeouts each."""

    def run() -> float:
        env = Environment()
        for _ in range(200):
            env.process(_pingpong(env, 500))
        start = time.perf_counter()
        env.run()
        wall = time.perf_counter() - start
        # _eid counts every scheduled event (timeouts + process resumes).
        return env._eid / wall

    rate = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["des_events_per_sec"] = round(rate)
    # Generous floor: the slotted kernel clears ~500k events/s on a
    # workstation; fail only on an order-of-magnitude collapse.
    assert rate > 50_000


def test_table2_quick_wall(benchmark):
    """Wall clock of the full quick-mode Table II sweep (6 scenarios)."""
    start = time.perf_counter()
    results = benchmark.pedantic(
        lambda: run_use_case("sobel"), rounds=1, iterations=1
    )
    _results["table2_quick_wall_s"] = round(time.perf_counter() - start, 3)
    assert len(results) == 6


#: Runs per arm of the hook-overhead measurement.  Single-shot walls on a
#: shared machine are noisy enough to report *negative* overheads; the
#: median of five in-process runs per arm keeps noise out of the ratio.
OVERHEAD_RUNS = 5


def _scenario_wall(network_setup) -> float:
    """Wall clock of one quick Table-II "low" BlastFunction scenario."""
    start = time.perf_counter()
    run_scenario(
        use_case="sobel",
        configuration="low",
        runtime="blastfunction",
        app_factory=APP_FACTORIES["sobel"],
        accelerator=ACCELERATORS["sobel"],
        rates=rates_for("sobel", "low", "blastfunction"),
        timing=load_timing(),
        network_setup=network_setup,
    )
    return time.perf_counter() - start


def test_disabled_fault_hook_overhead():
    """The fault-injection hooks must be ~free while disabled.

    Every control delivery passes through the ``network.faults is None``
    check in ``Transport.deliver_to_*`` and every unary call through the
    client-side reply-loss branch.  This measures what the hooks cost by
    comparing two arms on the *same* machine in the *same* process:

    * **disabled** — no fault plane attached (``network.faults is None``),
      the default of every experiment;
    * **inert** — a zero-rate :class:`NetworkFaultPlane` attached, so
      every message takes the full hook path but no fault ever fires.

    Each arm is the median of ``OVERHEAD_RUNS`` identical runs, so
    scheduler noise cannot report a negative cost the way the old
    single-run-vs-committed-baseline comparison (recorded on different
    hardware) once did.
    """

    def inert_plane(network) -> None:
        network.faults = NetworkFaultPlane(
            seed=1, drop_rate=0.0, duplicate_rate=0.0,
            delay_rate=0.0, delay=0.0,
        )

    disabled = statistics.median(
        _scenario_wall(None) for _ in range(OVERHEAD_RUNS)
    )
    inert = statistics.median(
        _scenario_wall(inert_plane) for _ in range(OVERHEAD_RUNS)
    )
    overhead_pct = (inert / disabled - 1.0) * 100
    _results["disabled_hook_overhead_pct"] = round(overhead_pct, 2)
    _results["hook_disabled_median_s"] = round(disabled, 3)
    _results["hook_inert_median_s"] = round(inert, 3)
    assert overhead_pct < 25.0, (
        f"fault hooks cost {overhead_pct:.1f}% of the Table II scenario "
        f"wall clock (disabled {disabled:.3f}s vs inert {inert:.3f}s)"
    )


def test_durable_store_overhead():
    """The WAL + snapshot layer must stay cheap on the serving hot path.

    With ``REPRO_REGISTRY=durable`` every admission, removal, device
    state flip and watch event appends an in-memory WAL record, and a
    background process snapshots the full registry image every
    ``snapshot_interval`` simulated seconds.  None of that sits on the
    per-request data path, so the cost over a volatile registry should
    be bookkeeping noise.  Same methodology as the fault-hook
    measurement: median of ``OVERHEAD_RUNS`` identical in-process quick
    Table-II 'low' runs per arm, both arms on the same machine.
    """
    import os

    saved = os.environ.get("REPRO_REGISTRY")
    try:
        os.environ.pop("REPRO_REGISTRY", None)
        volatile = statistics.median(
            _scenario_wall(None) for _ in range(OVERHEAD_RUNS)
        )
        os.environ["REPRO_REGISTRY"] = "durable"
        durable = statistics.median(
            _scenario_wall(None) for _ in range(OVERHEAD_RUNS)
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_REGISTRY", None)
        else:
            os.environ["REPRO_REGISTRY"] = saved
    overhead_pct = (durable / volatile - 1.0) * 100
    _results["durable_store_overhead_pct"] = round(overhead_pct, 2)
    _results["registry_volatile_median_s"] = round(volatile, 3)
    _results["registry_durable_median_s"] = round(durable, 3)
    assert overhead_pct < 25.0, (
        f"durable registry costs {overhead_pct:.1f}% of the Table II "
        f"scenario wall clock (volatile {volatile:.3f}s vs durable "
        f"{durable:.3f}s)"
    )


def test_write_bench_json():
    """Persist the measurements (runs last: pytest keeps file order)."""
    assert {"des_events_per_sec", "table2_quick_wall_s"} <= set(_results)
    faults = {
        "disabled_hook_overhead_pct": _results.get(
            "disabled_hook_overhead_pct"),
        "disabled_median_s": _results.get("hook_disabled_median_s"),
        "inert_median_s": _results.get("hook_inert_median_s"),
        "method": (
            f"median of {OVERHEAD_RUNS} in-process quick Table-II 'low' "
            "runs per arm (no plane vs zero-rate plane)"
        ),
    }
    OUTPUT.write_text(json.dumps({
        "python": platform.python_version(),
        "des": {
            "events_per_sec": _results["des_events_per_sec"],
        },
        "table2": {
            "quick_wall_s": _results["table2_quick_wall_s"],
            "baseline_quick_wall_s": BASELINE_QUICK_WALL_S,
            "recorded_full_wall_s": RECORDED_FULL_WALL_S,
            "baseline_full_wall_s": BASELINE_FULL_WALL_S,
            "recorded_full_speedup": round(
                BASELINE_FULL_WALL_S / RECORDED_FULL_WALL_S, 2
            ),
        },
        "faults": faults,
        "registry": {
            "durable_store_overhead_pct": _results.get(
                "durable_store_overhead_pct"),
            "volatile_median_s": _results.get(
                "registry_volatile_median_s"),
            "durable_median_s": _results.get("registry_durable_median_s"),
            "method": (
                f"median of {OVERHEAD_RUNS} in-process quick Table-II "
                "'low' runs per arm (REPRO_REGISTRY unset vs =durable)"
            ),
        },
    }, indent=2) + "\n")

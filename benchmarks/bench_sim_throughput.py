"""Simulation-kernel throughput: DES events/sec and Table II wall clock.

Unlike the other benchmarks (which check *simulated* results), this one
measures the simulator itself — the real-time cost of the zero-copy data
plane and the DES hot path.  It writes ``BENCH_simcore.json`` at the repo
root: the committed copy is the performance baseline the CI quick-profile
smoke compares against (a >25 % wall-clock regression on the Table II run
fails the build; see ``.github/workflows/ci.yml``).

``baseline_*`` figures are the pre-optimization numbers recorded on the
machine that produced the committed file (bytes-based data plane, un-slotted
event kernel); ``recorded_full_*`` is the paper-length run measured on the
same machine, which the quick benchmark cannot afford to repeat.
"""

import json
import platform
import time
from pathlib import Path

from repro.experiments.tables import run_use_case
from repro.sim import Environment

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_simcore.json"

#: Pre-optimization wall clocks (same machine as the committed baselines).
BASELINE_QUICK_WALL_S = 7.60
BASELINE_FULL_WALL_S = 29.19
#: Paper-length wall clock measured after the optimization.
RECORDED_FULL_WALL_S = 5.77

_results: dict = {}


def _pingpong(env: Environment, steps: int):
    for _ in range(steps):
        yield env.timeout(0.001)


def test_des_event_throughput(benchmark):
    """Raw kernel throughput: 200 processes × 500 timeouts each."""

    def run() -> float:
        env = Environment()
        for _ in range(200):
            env.process(_pingpong(env, 500))
        start = time.perf_counter()
        env.run()
        wall = time.perf_counter() - start
        # _eid counts every scheduled event (timeouts + process resumes).
        return env._eid / wall

    rate = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["des_events_per_sec"] = round(rate)
    # Generous floor: the slotted kernel clears ~500k events/s on a
    # workstation; fail only on an order-of-magnitude collapse.
    assert rate > 50_000


def test_table2_quick_wall(benchmark):
    """Wall clock of the full quick-mode Table II sweep (6 scenarios)."""
    start = time.perf_counter()
    results = benchmark.pedantic(
        lambda: run_use_case("sobel"), rounds=1, iterations=1
    )
    _results["table2_quick_wall_s"] = round(time.perf_counter() - start, 3)
    assert len(results) == 6


def test_write_bench_json():
    """Persist the measurements (runs last: pytest keeps file order)."""
    assert {"des_events_per_sec", "table2_quick_wall_s"} <= set(_results)
    OUTPUT.write_text(json.dumps({
        "python": platform.python_version(),
        "des": {
            "events_per_sec": _results["des_events_per_sec"],
        },
        "table2": {
            "quick_wall_s": _results["table2_quick_wall_s"],
            "baseline_quick_wall_s": BASELINE_QUICK_WALL_S,
            "recorded_full_wall_s": RECORDED_FULL_WALL_S,
            "baseline_full_wall_s": BASELINE_FULL_WALL_S,
            "recorded_full_speedup": round(
                BASELINE_FULL_WALL_S / RECORDED_FULL_WALL_S, 2
            ),
        },
    }, indent=2) + "\n")

"""Extension bench: heterogeneous multi-accelerator tenancy.

The paper's load tests run one accelerator type at a time.  A real
FPGA-as-a-Service fleet hosts a mix — here Sobel, MM and AlexNet functions
arrive together on the 3-board cluster.  Algorithm 1 must partition the
boards by accelerator (one bitstream each), and every tenant must meet its
(feasible) target despite the cluster-wide heterogeneity.

Native cannot run this mix at all with fewer boards than accelerator
types + replicas; that structural advantage of the shared system is the
point of this extension.
"""

import pytest

from repro.experiments.config import LoadTiming
from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.loadgen import run_load
from repro.serverless import (
    AlexNetApp,
    FunctionController,
    FunctionSpec,
    Gateway,
    MMApp,
    SobelApp,
)
from repro.sim import AllOf, Environment

TIMING = LoadTiming(warmup=3.0, duration=12.0)

#: (function, app factory, accelerator, target rq/s)
WORKLOAD = [
    ("sobel-1", lambda: SobelApp(), "sobel", 25.0),
    ("mm-1", lambda: MMApp(), "mm", 40.0),
    ("alexnet-1", lambda: AlexNetApp(), "pipecnn_alexnet", 5.0),
    ("sobel-2", lambda: SobelApp(), "sobel", 10.0),
    ("mm-2", lambda: MMApp(), "mm", 20.0),
]


def _run():
    env = Environment()
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate

    def flow():
        for name, factory, accelerator, _rate in WORKLOAD:
            yield from gateway.deploy(FunctionSpec(
                name=name, app_factory=factory,
                device_query=DeviceQuery(accelerator=accelerator),
            ))
            yield from controller.wait_ready(name)
        loads = [
            env.process(run_load(env, gateway, name, rate=rate,
                                 duration=TIMING.duration,
                                 warmup=TIMING.warmup))
            for name, _f, _a, rate in WORKLOAD
        ]
        results = yield AllOf(env, loads)
        return [results[p] for p in loads]

    stats = env.run(until=env.process(flow()))
    bitstreams = sorted(
        record.configured_bitstream
        for record in registry.devices.all()
    )
    return stats, bitstreams, registry.migrations


def test_extension_mixed_tenancy(benchmark):
    stats, bitstreams, migrations = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    # Algorithm 1 partitioned the three boards across the three
    # accelerator types.
    assert bitstreams == ["mm", "pipecnn_alexnet", "sobel"]

    # Every tenant meets its target within 15% (the mix is feasible).
    by_name = {s.function: s for s in stats}
    for name, _f, _a, rate in WORKLOAD:
        assert by_name[name].achieved_rate == pytest.approx(
            rate, rel=0.15
        ), f"{name} missed its target"

    # Same-accelerator tenants were co-located onto the same board
    # (5 functions, 3 boards, zero migrations needed in this order).
    assert migrations == 0

    benchmark.extra_info["total_processed"] = round(
        sum(s.achieved_rate for s in stats), 1
    )
    benchmark.extra_info["alexnet_latency_ms"] = round(
        by_name["alexnet-1"].mean_latency * 1e3, 1
    )

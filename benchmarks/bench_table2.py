"""Table II: multi-function Sobel load test (BlastFunction vs Native).

Checks the paper's qualitative results: BlastFunction runs 5 functions on
the 3 boards where Native fits 3; at low load both meet their targets; at
high load the closed-loop latency cap bites and node A saturates; sharing
raises aggregate utilization and served throughput.
"""

import pytest

from repro.experiments import rates_for, run_scenario
from repro.serverless import SobelApp


def _run():
    results = {}
    for runtime in ("blastfunction", "native"):
        for configuration in ("low", "high"):
            results[(runtime, configuration)] = run_scenario(
                use_case="sobel", configuration=configuration,
                runtime=runtime,
                app_factory=lambda: SobelApp(),
                accelerator="sobel",
                rates=rates_for("sobel", configuration, runtime),
            )
    return results


def test_table2_sobel_load(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    bf_low = results[("blastfunction", "low")]
    bf_high = results[("blastfunction", "high")]
    native_low = results[("native", "low")]
    native_high = results[("native", "high")]

    # 5 functions under BlastFunction vs 3 Native (paper's deployment).
    assert len(bf_low.functions) == 5
    assert len(native_low.functions) == 3

    # Low load: both runtimes keep up with the target throughput, with
    # latencies in the paper's 20-30 ms band.
    for result in (bf_low, native_low):
        for fn in result.functions:
            assert fn.processed == pytest.approx(fn.target, rel=0.1)
            assert 15e-3 < fn.latency < 40e-3

    # Sharing serves more aggregate load on the same 3 boards.
    assert bf_high.total_processed > native_high.total_processed
    assert bf_high.total_utilization_pct > native_high.total_utilization_pct

    # High load: node A cannot keep up in either scenario (the paper:
    # "Node A saturated in both cases").
    for result in (bf_high, native_high):
        node_a = [fn for fn in result.functions if fn.node == "A"]
        assert any(fn.processed < 0.9 * fn.target for fn in node_a)

    # Per-function utilization is bounded by a single board.
    for result in results.values():
        for fn in result.functions:
            assert 0.0 <= fn.utilization <= 1.0

    benchmark.extra_info["bf_high_processed"] = round(
        bf_high.total_processed, 1
    )
    benchmark.extra_info["native_high_processed"] = round(
        native_high.total_processed, 1
    )

"""Ablation: shared-memory vs pure-gRPC data plane *under load*.

Figure 4 compares the transports single-client; this ablation re-runs the
Table II medium Sobel scenario with the Registry's shared-memory volumes
disabled, quantifying what the one-copy data path is worth end to end
(Sobel moves ~16 MB per request, so the 3-copies+protobuf path hurts).
"""

import pytest

from repro.experiments import rates_for, run_scenario
from repro.serverless import SobelApp


def _run():
    results = {}
    for use_shm in (True, False):
        results[use_shm] = run_scenario(
            use_case="sobel", configuration="medium",
            runtime="blastfunction",
            app_factory=lambda: SobelApp(),
            accelerator="sobel",
            rates=rates_for("sobel", "medium", "blastfunction"),
            use_shm=use_shm,
        )
    return results


def test_ablation_transport_under_load(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    shm = results[True]
    grpc = results[False]

    # The gRPC data plane costs several extra milliseconds per request.
    assert grpc.mean_latency > shm.mean_latency + 3e-3
    # And loses throughput once the latency cap crosses target intervals.
    assert grpc.total_processed <= shm.total_processed + 1.0

    benchmark.extra_info["shm_latency_ms"] = round(shm.mean_latency * 1e3, 2)
    benchmark.extra_info["grpc_latency_ms"] = round(
        grpc.mean_latency * 1e3, 2
    )
    benchmark.extra_info["shm_processed"] = round(shm.total_processed, 1)
    benchmark.extra_info["grpc_processed"] = round(grpc.total_processed, 1)

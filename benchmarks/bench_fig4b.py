"""Figure 4(b): Sobel operator RTT vs image size (3 systems).

Anchors: native 0.27 ms at 10×10 up to 14.53 ms at 1920×1080; BlastFunction
with shared memory stays a small constant (~2 ms) above native; pure gRPC
reaches ~24 ms at the largest image.
"""

import pytest

from repro.experiments import run_sobel_sweep

SIZES = [(10, 10), (640, 480), (1920, 1080)]


def _run():
    points = run_sobel_sweep(sizes=SIZES)
    return {(p.label, p.system): p.rtt for p in points}


def test_fig4b_sobel_sweep(benchmark):
    by_key = benchmark.pedantic(_run, rounds=1, iterations=1)

    native_min = by_key[("10x10", "native")]
    native_max = by_key[("1920x1080", "native")]
    grpc_max = by_key[("1920x1080", "blastfunction")]
    shm_max = by_key[("1920x1080", "blastfunction_shm")]

    # Paper: 0.27 ms → 14.53 ms native.
    assert native_min < 0.5e-3
    assert native_max == pytest.approx(14.53e-3, rel=0.08)
    # Paper: BlastFunction reaches ~24 ms at 1080p.
    assert grpc_max == pytest.approx(24e-3, rel=0.15)
    # Paper: shm keeps a small, roughly constant overhead (~2 ms).
    for width, height in SIZES:
        label = f"{width}x{height}"
        overhead = (
            by_key[(label, "blastfunction_shm")] - by_key[(label, "native")]
        )
        assert 0.5e-3 < overhead < 4e-3

    benchmark.extra_info["native_1080p_ms"] = round(native_max * 1e3, 2)
    benchmark.extra_info["grpc_1080p_ms"] = round(grpc_max * 1e3, 2)
    benchmark.extra_info["shm_overhead_ms"] = round(
        (shm_max - native_max) * 1e3, 2
    )

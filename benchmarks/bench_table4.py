"""Table IV: PipeCNN AlexNet load test aggregates.

The paper's overhead-heavy case: the host launches ~30 kernels per
inference across 8 layer-boundary waits, so BlastFunction's per-call
round trips *raise* latency versus Native (132.89 vs 94.29 ms at medium) —
yet sharing still delivers more processed requests and higher utilization.
"""

import pytest

from repro.experiments import rates_for, run_scenario
from repro.serverless import AlexNetApp


def _run():
    results = {}
    for runtime in ("blastfunction", "native"):
        for configuration in ("medium", "high"):
            results[(runtime, configuration)] = run_scenario(
                use_case="alexnet", configuration=configuration,
                runtime=runtime,
                app_factory=lambda: AlexNetApp(),
                accelerator="pipecnn_alexnet",
                rates=rates_for("alexnet", configuration, runtime),
            )
    return results


def test_table4_alexnet_load(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    bf_medium = results[("blastfunction", "medium")]
    bf_high = results[("blastfunction", "high")]
    native_medium = results[("native", "medium")]
    native_high = results[("native", "high")]

    # Paper: Native ≈ 94 ms; BlastFunction is *higher* (124-133 ms) because
    # the host calls multiple kernels per computation.
    assert native_medium.mean_latency == pytest.approx(94.29e-3, rel=0.1)
    assert bf_medium.mean_latency > 1.15 * native_medium.mean_latency
    assert bf_medium.mean_latency < 2.0 * native_medium.mean_latency

    # Paper: sharing still processes more requests at higher utilization
    # in both configurations.
    for bf, native in ((bf_medium, native_medium), (bf_high, native_high)):
        assert bf.total_processed > native.total_processed
        assert bf.total_utilization_pct > native.total_utilization_pct

    # Paper: medium-load targets are met by both (0.63% / 0.68% gaps).
    assert bf_medium.total_processed == pytest.approx(
        bf_medium.total_target, rel=0.08
    )
    assert native_medium.total_processed == pytest.approx(
        native_medium.total_target, rel=0.08
    )

    benchmark.extra_info["bf_latency_ms"] = round(
        bf_medium.mean_latency * 1e3, 1
    )
    benchmark.extra_info["native_latency_ms"] = round(
        native_medium.mean_latency * 1e3, 1
    )
    benchmark.extra_info["bf_high_processed"] = round(
        bf_high.total_processed, 1
    )
    benchmark.extra_info["native_high_processed"] = round(
        native_high.total_processed, 1
    )

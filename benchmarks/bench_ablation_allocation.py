"""Ablation: Algorithm 1's metric ordering.

The Registry sorts candidate devices by a configurable metric priority
("the metrics priority can be chosen depending on the system and
applications SLA").  Ordering by connected functions spreads tenants across
boards; ordering by (scraped) utilization alone is blind at deployment time
— all devices report ~0 — so the accelerator-compatibility tie-break piles
every function onto the first programmed board, collapsing throughput.
"""

import pytest

from repro.experiments import rates_for, run_scenario
from repro.serverless import SobelApp


def _run():
    results = {}
    for label, order in (
        ("spread", ("connected_functions", "utilization")),
        ("utilization_only", ("utilization",)),
    ):
        results[label] = run_scenario(
            use_case="sobel", configuration="high",
            runtime="blastfunction",
            app_factory=lambda: SobelApp(),
            accelerator="sobel",
            rates=rates_for("sobel", "high", "blastfunction"),
            metrics_order=order,
        )
    return results


def test_ablation_allocation_metric_order(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    spread = results["spread"]
    piled = results["utilization_only"]

    spread_devices = {fn.device for fn in spread.functions}
    piled_devices = {fn.device for fn in piled.functions}

    # connected-functions ordering uses all three boards; utilization-only
    # ordering (blind at deploy time) concentrates placement.
    assert len(spread_devices) == 3
    assert len(piled_devices) < 3

    # The spread placement serves substantially more load.
    assert spread.total_processed > 1.2 * piled.total_processed

    benchmark.extra_info["spread_processed"] = round(
        spread.total_processed, 1
    )
    benchmark.extra_info["piled_processed"] = round(piled.total_processed, 1)
    benchmark.extra_info["piled_devices"] = len(piled_devices)

"""Table III: multi-function MM load test aggregates.

The paper's strongest sharing result: Native misses its target by up to
39.97% at high load (its per-request latency of ~21-24 ms caps each
single-connection closed loop at ~42 rq/s), while BlastFunction — whose
task batching collapses the four host calls into one round trip — stays
within ~1-2% of the 266 rq/s aggregate target at a *lower* latency.
"""

import pytest

from repro.experiments import rates_for, run_scenario
from repro.serverless import MMApp


def _run():
    results = {}
    for runtime in ("blastfunction", "native"):
        for configuration in ("low", "high"):
            results[(runtime, configuration)] = run_scenario(
                use_case="mm", configuration=configuration, runtime=runtime,
                app_factory=lambda: MMApp(),
                accelerator="mm",
                rates=rates_for("mm", configuration, runtime),
            )
    return results


def test_table3_mm_load(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    bf_low = results[("blastfunction", "low")]
    bf_high = results[("blastfunction", "high")]
    native_low = results[("native", "low")]
    native_high = results[("native", "high")]

    # Paper: BlastFunction latency ~11-13 ms, Native ~21-25 ms (inverted!).
    assert 9e-3 < bf_low.mean_latency < 15e-3
    assert 18e-3 < native_low.mean_latency < 28e-3
    assert bf_low.mean_latency < native_low.mean_latency

    # Paper: low-load targets met by both (0.04% / 3.97% gaps).
    assert bf_low.total_processed == pytest.approx(
        bf_low.total_target, rel=0.05
    )
    assert native_low.total_processed == pytest.approx(
        native_low.total_target, rel=0.08
    )

    # Paper: at high load Native collapses (39.97% gap), BlastFunction
    # stays within a couple percent.
    native_gap = 1 - native_high.total_processed / native_high.total_target
    bf_gap = 1 - bf_high.total_processed / bf_high.total_target
    assert native_gap > 0.3
    assert bf_gap < 0.1
    assert bf_high.total_processed > 1.8 * native_high.total_processed

    benchmark.extra_info["bf_high_gap_pct"] = round(100 * bf_gap, 2)
    benchmark.extra_info["native_high_gap_pct"] = round(100 * native_gap, 2)
    benchmark.extra_info["bf_latency_ms"] = round(
        bf_low.mean_latency * 1e3, 2
    )
    benchmark.extra_info["native_latency_ms"] = round(
        native_low.mean_latency * 1e3, 2
    )

"""Ablation: cost of reconfiguration and instance migration.

Measures time-to-first-request for a new MM function in two cluster states:
(a) a blank board is available (program it, ~2.5 s), and (b) every board is
occupied by Sobel tenants, so the Registry must migrate one tenant
(create-before-delete) *and* reprogram — the full Section III-C flow.
"""

import pytest

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.serverless import (
    FunctionController,
    FunctionSpec,
    Gateway,
    MMApp,
    SobelApp,
)
from repro.sim import Environment


def _stack(env):
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate
    return testbed, registry, gateway, controller


def _time_to_first_mm(occupy_all_boards: bool):
    env = Environment()
    testbed, registry, gateway, controller = _stack(env)

    def flow():
        sobel_count = 3 if occupy_all_boards else 0
        for index in range(1, sobel_count + 1):
            yield from gateway.deploy(FunctionSpec(
                name=f"sobel-{index}",
                app_factory=lambda: SobelApp(width=64, height=64),
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready(f"sobel-{index}")
        start = env.now
        yield from gateway.deploy(FunctionSpec(
            name="mm-1",
            app_factory=lambda: MMApp(n=64),
            device_query=DeviceQuery(accelerator="mm"),
        ))
        yield from controller.wait_ready("mm-1")
        yield from gateway.invoke("mm-1")
        return env.now - start, registry.migrations

    return env.run(until=env.process(flow()))


def _run():
    blank_time, blank_migrations = _time_to_first_mm(False)
    busy_time, busy_migrations = _time_to_first_mm(True)
    return blank_time, blank_migrations, busy_time, busy_migrations


def test_ablation_reconfiguration_cost(benchmark):
    blank_time, blank_migrations, busy_time, busy_migrations = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )

    reconfig = 2.5  # DE5a-Net full reconfiguration, seconds

    # Blank board: pod start + programming dominates; no migration.
    assert blank_migrations == 0
    assert reconfig < blank_time < reconfig + 2.0

    # Occupied boards: exactly one tenant is migrated, and the end-to-end
    # time additionally covers the replacement pod's startup.
    assert busy_migrations == 1
    assert busy_time > blank_time

    benchmark.extra_info["blank_board_s"] = round(blank_time, 2)
    benchmark.extra_info["with_migration_s"] = round(busy_time, 2)

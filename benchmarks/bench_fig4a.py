"""Figure 4(a): R/W round-trip time vs transfer size (3 systems).

Regenerates the sweep and checks the paper's anchors: local gRPC lands near
4× the native PCIe time, and shared memory's overhead ceiling is one memcpy
(~155 ms for 2 GB).
"""

import pytest

from repro.experiments import run_rw_sweep
from repro.experiments.fig4 import GiB, KiB, MiB

SIZES = [1 * KiB, 1 * MiB, 128 * MiB, 2 * GiB]


def _run():
    points = run_rw_sweep(sizes=SIZES)
    by_key = {(p.size, p.system): p.rtt for p in points}
    return by_key


def test_fig4a_rw_sweep(benchmark):
    by_key = benchmark.pedantic(_run, rounds=1, iterations=1)

    native_2g = by_key[(2 * GiB, "native")]
    grpc_2g = by_key[(2 * GiB, "blastfunction")]
    shm_2g = by_key[(2 * GiB, "blastfunction_shm")]

    # Paper: native 2 GB is PCIe-bound (~0.32 s).
    assert native_2g == pytest.approx(0.316, rel=0.05)
    # Paper: "a total latency of four times w.r.t. the Native execution".
    assert 3.0 < grpc_2g / native_2g < 4.5
    # Paper: "a maximum overhead of 155 ms when transferring 2 GBs".
    assert 0.13 < shm_2g - native_2g < 0.18
    # Ordering holds across every size.
    for size in SIZES:
        assert (
            by_key[(size, "native")]
            < by_key[(size, "blastfunction_shm")]
            < by_key[(size, "blastfunction")]
        )

    benchmark.extra_info["native_2GB_s"] = round(native_2g, 4)
    benchmark.extra_info["grpc_over_native"] = round(grpc_2g / native_2g, 2)
    benchmark.extra_info["shm_overhead_s"] = round(shm_2g - native_2g, 4)

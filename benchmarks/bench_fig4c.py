"""Figure 4(c): MM kernel RTT vs matrix size (3 systems).

Anchors: native 0.45 ms at 16×16 up to 3.571 s at 4096×4096; BlastFunction
3.675 s; shared memory 3.588 s (only 17 ms above native — relative overhead
0.27% for this compute-bound kernel).
"""

import pytest

from repro.experiments import run_mm_sweep

SIZES = [16, 512, 4096]


def _run():
    points = run_mm_sweep(sizes=SIZES)
    return {(p.label, p.system): p.rtt for p in points}


def test_fig4c_mm_sweep(benchmark):
    by_key = benchmark.pedantic(_run, rounds=1, iterations=1)

    native_min = by_key[("16x16", "native")]
    native_max = by_key[("4096x4096", "native")]
    grpc_max = by_key[("4096x4096", "blastfunction")]
    shm_max = by_key[("4096x4096", "blastfunction_shm")]

    # Paper anchors.
    assert native_min < 1e-3
    assert native_max == pytest.approx(3.571, rel=0.02)
    assert grpc_max == pytest.approx(3.675, rel=0.02)
    assert shm_max == pytest.approx(3.588, rel=0.02)
    # Paper: remote minimum RTT ≈ 2 ms of control signalling.
    assert 1e-3 < by_key[("16x16", "blastfunction_shm")] < 4e-3
    # Paper: relative shm overhead for MM is sub-percent at 4096.
    assert (shm_max - native_max) / native_max < 0.01

    benchmark.extra_info["native_4096_s"] = round(native_max, 3)
    benchmark.extra_info["shm_overhead_ms"] = round(
        (shm_max - native_max) * 1e3, 1
    )

"""Ablation: Device Manager task scheduling policies.

The paper's central queue is FIFO.  When a latency-sensitive light tenant
(small Sobel frames) shares a board with a heavy tenant (large MM jobs),
FIFO makes the light tenant wait behind multi-hundred-ms tasks.  SJF and
WFQ reorder the queue using the same kernel latency models the board runs
on; this bench quantifies the light tenant's mean latency under each
policy and checks the heavy tenant is not starved.
"""

import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.ocl import Context
from repro.rpc import Network
from repro.sim import Environment

DURATION = 120.0
MM_N = 2048          # ~450 ms per job
SOBEL_SIDE = 256     # ~0.5 ms per frame


def _tenant(env, node, manager, network, library, name, period, setup, go,
            latencies):
    def flow():
        platform = yield from remote_platform(
            env, name, node, manager, network, library
        )
        context = Context(platform.get_devices())
        queue = context.create_queue()
        state = yield from setup(context, queue)
        while env.now < DURATION:
            start = env.now
            yield from go(queue, state)
            latencies.setdefault(name, []).append(env.now - start)
            wait = period - (env.now - start)
            if wait > 0:
                yield env.timeout(wait)

    return flow


def _run_policy(policy: str) -> dict:
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, name="fpga-B", functional=False)
    manager = DeviceManager(env, "dm-B", board, library, network, node,
                            scheduler=policy)
    if policy == "wfq":
        manager.scheduler.set_client_weight("fn-light", 1.0)
        manager.scheduler.set_client_weight("fn-heavy", 1.0)
    latencies: dict = {}

    def sobel_setup(context, queue):
        program = context.create_program("sobel")
        yield from program.build()
        kernel = program.create_kernel("sobel")
        nbytes = SOBEL_SIDE * SOBEL_SIDE * 4
        in_buf = context.create_buffer(nbytes)
        out_buf = context.create_buffer(nbytes)
        kernel.set_args(in_buf, out_buf, SOBEL_SIDE, SOBEL_SIDE)
        return kernel

    def sobel_go(queue, kernel):
        yield from queue.run_kernel(kernel)

    def mm_setup(context, queue):
        # Both tenants use kernels of the sobel bitstream's board: give the
        # heavy tenant the same accelerator with a huge image instead of a
        # second bitstream (one-slot board).
        program = context.create_program("sobel")
        yield from program.build()
        kernel = program.create_kernel("sobel")
        side = 8192  # ~380 ms per frame
        nbytes = side * side * 4
        in_buf = context.create_buffer(nbytes)
        out_buf = context.create_buffer(nbytes)
        kernel.set_args(in_buf, out_buf, side, side)
        return kernel

    def mm_go(queue, kernel):
        # Burst submission: three ~380 ms frames per round, flushed as
        # separate tasks — this builds the backlog that makes scheduling
        # policy matter (a closed-loop tenant never queues >1 task).
        events = []
        for _ in range(3):
            events.append(queue.enqueue_kernel(kernel))
            queue.flush()
        from repro.ocl import wait_for_events

        yield wait_for_events(events)

    env.process(_tenant(env, node, manager, network, library,
                        "fn-light", 0.05, sobel_setup, sobel_go,
                        latencies)())
    env.process(_tenant(env, node, manager, network, library,
                        "fn-heavy", 1.5, mm_setup, mm_go, latencies)())
    env.run(until=DURATION + 20.0)
    return latencies


def _run():
    return {policy: _run_policy(policy) for policy in ("fifo", "sjf", "wfq")}


def _mean(values):
    return sum(values) / len(values)


def test_ablation_scheduling_policies(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    from repro.loadgen import percentile

    fifo_light = results["fifo"]["fn-light"]
    sjf_light = results["sjf"]["fn-light"]
    wfq_light = results["wfq"]["fn-light"]

    # FIFO makes the light tenant wait out entire heavy bursts (~1.1 s
    # worst case); SJF and WFQ bound its wait to one non-preemptible heavy
    # execution (~0.4 s), halving the tail.
    assert max(sjf_light) < 0.55 * max(fifo_light)
    assert max(wfq_light) < 0.55 * max(fifo_light)
    assert percentile(sjf_light, 99) < 0.6 * percentile(fifo_light, 99)

    # No policy starves the heavy tenant.
    for policy in ("fifo", "sjf", "wfq"):
        assert len(results[policy]["fn-heavy"]) >= 50

    benchmark.extra_info["fifo_light_p99_ms"] = round(
        percentile(fifo_light, 99) * 1e3, 1
    )
    benchmark.extra_info["sjf_light_p99_ms"] = round(
        percentile(sjf_light, 99) * 1e3, 1
    )
    benchmark.extra_info["wfq_light_p99_ms"] = round(
        percentile(wfq_light, 99) * 1e3, 1
    )
    benchmark.extra_info["fifo_light_mean_ms"] = round(
        _mean(fifo_light) * 1e3, 1
    )
    benchmark.extra_info["sjf_light_mean_ms"] = round(
        _mean(sjf_light) * 1e3, 1
    )

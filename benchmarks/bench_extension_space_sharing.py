"""Extension bench: space-sharing (PR slots) vs time-sharing-only boards.

The paper's future work. Two tenants with *different* accelerators (Sobel
and MM) share one board. On a classic single-slot board every tenant
switch forces a full 2.5 s reprogram (and wipes device buffers) — mixed
tenancy is effectively serialized by reconfiguration. A two-slot board
holds both bitstreams at once: each build is a one-off 0.4 s partial
reconfiguration and the kernels execute concurrently.
"""

from dataclasses import replace

import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import DE5A_NET, FPGABoard, standard_library
from repro.ocl import CLError, Context
from repro.rpc import Network
from repro.sim import Environment

DURATION = 60.0


def _tenant(env, node, manager, network, library, name, binary, make_args,
            counters):
    """Closed-loop tenant: (re)build → buffers → kernel → read, repeat."""

    def flow():
        platform = yield from remote_platform(
            env, name, node, manager, network, library
        )
        context = Context(platform.get_devices())
        queue = context.create_queue()
        while env.now < DURATION:
            try:
                program = context.create_program(binary)
                yield from program.build()
                kernel = program.create_kernel(binary)
                buffers, args = make_args(context)
                kernel.set_args(*args)
                yield from queue.run_kernel(kernel)
                for buffer in buffers:
                    buffer.release()
            except CLError:
                # Board was reprogrammed under us; retry the iteration.
                continue
            counters[name] = counters.get(name, 0) + 1

    return flow


def _run_mode(pr_slots: int) -> dict:
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(
        env, name="fpga-B", spec=replace(DE5A_NET, pr_slots=pr_slots),
        functional=False,
    )
    manager = DeviceManager(env, "dm-B", board, library, network, node)
    counters: dict = {}

    def sobel_args(context):
        nbytes = 256 * 256 * 4
        in_buf = context.create_buffer(nbytes)
        out_buf = context.create_buffer(nbytes)
        return [in_buf, out_buf], (in_buf, out_buf, 256, 256)

    def mm_args(context):
        bufs = [context.create_buffer(256 * 256 * 4) for _ in range(3)]
        return bufs, (*bufs, 256, 256, 256)

    env.process(_tenant(env, node, manager, network, library,
                        "fn-sobel", "sobel", sobel_args, counters)())
    env.process(_tenant(env, node, manager, network, library,
                        "fn-mm", "mm", mm_args, counters)())
    env.run(until=DURATION + 5.0)
    counters["reconfigurations"] = board.reconfigurations
    counters["partial"] = board.partial_reconfigurations
    return counters


def _run():
    return {"time_sharing": _run_mode(1), "space_sharing": _run_mode(2)}


def test_extension_space_sharing(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    time_sharing = results["time_sharing"]
    space_sharing = results["space_sharing"]

    ts_total = (time_sharing.get("fn-sobel", 0)
                + time_sharing.get("fn-mm", 0))
    ss_total = (space_sharing.get("fn-sobel", 0)
                + space_sharing.get("fn-mm", 0))

    # Mixed tenancy on one slot thrashes full reconfigurations...
    assert time_sharing["reconfigurations"] > 5
    # ...while two slots program each accelerator exactly once.
    assert space_sharing["partial"] == 2
    assert space_sharing["reconfigurations"] == 0
    # And space sharing delivers at least an order of magnitude more work.
    assert ss_total > 10 * max(ts_total, 1)

    benchmark.extra_info["time_sharing_reqs"] = ts_total
    benchmark.extra_info["space_sharing_reqs"] = ss_total
    benchmark.extra_info["full_reconfigs"] = time_sharing["reconfigurations"]

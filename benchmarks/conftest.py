"""Benchmark-suite configuration.

Benchmarks default to the shortened load windows (the full-length runs are
available through ``python -m repro.experiments`` without REPRO_QUICK); the
simulations themselves are deterministic, so one round is exact.
"""

import os

os.environ.setdefault("REPRO_QUICK", "1")

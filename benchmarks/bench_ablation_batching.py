"""Ablation: multi-operation task batching in the Device Manager.

The paper motivates tasks with *consistency*: a client's command-queue
sequence "should execute atomically on the FPGA".  This ablation makes that
property measurable.  Two Sobel tenants share one board; with batching each
request's write→kernel→read triple runs contiguously on the device, while
the op-at-a-time baseline lets the other tenant's operations interleave
inside a request.

A secondary (and honest) finding: under work-conserving FIFO scheduling the
*mean* latency barely moves — what batching buys is atomicity and
device-order isolation, not raw speed.
"""

import pytest

from repro.experiments import rates_for, run_scenario
from repro.serverless import SobelApp


def _interleavings(runs):
    """Count client switches that occur inside another client's request.

    ``runs`` is the device-order list of (client, op_type) executions; a
    request is the write..read span of one client.  With batching, spans
    are contiguous: exactly 2 boundary switches per request.
    """
    switches = 0
    open_spans = {}
    previous = None
    for client, op_type in runs:
        if previous is not None and client != previous and open_spans:
            # A switch while some client's span is open.
            if any(other != client for other in open_spans):
                switches += 1
        if op_type == "write":
            open_spans[client] = True
        elif op_type == "read":
            open_spans.pop(client, None)
        previous = client
    return switches


def _run():
    outcomes = {}
    for batching in (True, False):
        device_order = []

        # Capture per-device op order through the manager hook.
        import repro.experiments.loadtest as loadtest_mod
        from repro.cluster.testbed import build_testbed as real_build

        def instrumented_build(env, **kwargs):
            testbed = real_build(env, **kwargs)
            for manager in testbed.managers.values():
                manager.op_listeners.append(
                    lambda op, name=manager.name: device_order.append(
                        (name, op.client, op.type.value)
                    )
                )
            return testbed

        loadtest_mod.build_testbed = instrumented_build
        try:
            result = run_scenario(
                use_case="sobel", configuration="high",
                runtime="blastfunction",
                app_factory=lambda: SobelApp(),
                accelerator="sobel",
                rates=rates_for("sobel", "high", "blastfunction"),
                batching=batching,
            )
        finally:
            loadtest_mod.build_testbed = real_build

        per_device = {}
        for device, client, op_type in device_order:
            per_device.setdefault(device, []).append((client, op_type))
        interleavings = sum(
            _interleavings(runs) for runs in per_device.values()
        )
        outcomes[batching] = (result, interleavings)
    return outcomes


def test_ablation_task_batching(benchmark):
    outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    batched_result, batched_interleavings = outcomes[True]
    unbatched_result, unbatched_interleavings = outcomes[False]

    # Batching guarantees atomic per-request execution on the device.
    assert batched_interleavings == 0
    # Op-at-a-time lets co-tenants break into requests routinely.
    assert unbatched_interleavings > 10

    # Work-conserving FIFO: mean latency is within a small factor either
    # way (the paper's batching argument is consistency, not speed).
    assert batched_result.mean_latency == pytest.approx(
        unbatched_result.mean_latency, rel=0.25
    )

    benchmark.extra_info["unbatched_interleavings"] = unbatched_interleavings
    benchmark.extra_info["batched_latency_ms"] = round(
        batched_result.mean_latency * 1e3, 2
    )
    benchmark.extra_info["unbatched_latency_ms"] = round(
        unbatched_result.mean_latency * 1e3, 2
    )

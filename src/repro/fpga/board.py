"""The FPGA board: programming, DMA, kernel execution, busy accounting.

One :class:`FPGABoard` models a Terasic DE5a-Net attached to a node.  The
board offers three externally visible activities, all simulation processes:

* :meth:`program` — full reconfiguration with a bitstream (exclusive,
  seconds-long, wipes device memory);
* :meth:`dma_write` / :meth:`dma_read` — host↔DDR transfers through the
  PCIe link;
* :meth:`execute` — run a kernel from the programmed bitstream (the board
  executes one kernel at a time: the time-sharing unit of the paper).

Every busy interval (DMA or compute) is reported to registered listeners;
the Device Manager uses this to export the *FPGA time utilization* metric
("time spent by the device computing OpenCL calls in a given amount of
time").
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..kernels.base import AcceleratorKernel
from ..sim import Environment, Resource
from .bitstream import Bitstream
from .ddr import (
    DeviceBuffer,
    MemoryAllocator,
    as_uint8_view,
    payload_nbytes,
    zero_view,
)
from .hwspec import BoardSpec, DE5A_NET, PCIeSpec, PCIE_GEN3_X8
from .pcie import PCIeLink

#: Listener signature: (busy_seconds, activity) with activity in
#: {"dma", "kernel", "reconfigure"}.
BusyListener = Callable[[float, str], None]


class BoardError(RuntimeError):
    """Board misuse: executing without a bitstream, unknown kernel, ..."""


class KernelFault(RuntimeError):
    """A kernel run failed on the device (injected or hardware fault)."""


class BoardUnavailableError(BoardError):
    """The board is locked up (hardware wedge) until recovered."""


class ReconfigurationError(BoardError):
    """A (partial) reconfiguration failed, leaving the target unprogrammed."""


class FPGABoard:
    """A single FPGA accelerator board."""

    def __init__(
        self,
        env: Environment,
        name: str = "fpga0",
        spec: BoardSpec = DE5A_NET,
        pcie: PCIeSpec = PCIE_GEN3_X8,
        functional: bool = True,
    ):
        self.env = env
        self.name = name
        self.spec = spec
        self.functional = functional
        self.link = PCIeLink(env, pcie)
        self.memory = MemoryAllocator(spec.memory_bytes, functional)
        #: One partial-reconfiguration slot per accelerator region; each
        #: slot executes one kernel at a time.  Classic boards have a
        #: single slot, making kernel execution fully exclusive.
        self.slots: List[Optional[Bitstream]] = [None] * spec.pr_slots
        self._slot_locks = [Resource(env, capacity=1)
                            for _ in range(spec.pr_slots)]
        self.busy_seconds = 0.0
        self.kernel_runs = 0
        self.reconfigurations = 0
        self.partial_reconfigurations = 0
        self._busy_listeners: List[BusyListener] = []
        #: Fault injection hook for robustness testing: called before every
        #: kernel run as ``fault_injector(kernel_name, run_index)``; a
        #: truthy return makes the run fail with :class:`KernelFault` after
        #: consuming its device time (a hang/abort detected at completion).
        #: The special return ``"hang"`` models a wedged kernel: the abort
        #: only surfaces after :attr:`hang_detect_seconds` more.
        self.fault_injector: Optional[Callable[[str, int], bool]] = None
        #: Injected reconfiguration failures: called as
        #: ``reconfiguration_injector(bitstream_name)``; truthy → the
        #: reconfiguration consumes its full time, then fails and leaves
        #: the target region unprogrammed.
        self.reconfiguration_injector: Optional[Callable[[str], bool]] = None
        #: Watchdog latency for a hung kernel, seconds.
        self.hang_detect_seconds = 1.0
        #: False while the board is locked up (see :meth:`lock_up`).
        self.alive = True
        self.lockups = 0

    @property
    def slot_count(self) -> int:
        return self.spec.pr_slots

    @property
    def compute(self) -> Resource:
        """The primary slot's execution lock (single-slot compatibility)."""
        return self._slot_locks[0]

    @property
    def bitstream(self) -> Optional[Bitstream]:
        """The primary slot's image (single-slot compatibility)."""
        return self.slots[0]

    # -- observation -------------------------------------------------------
    def add_busy_listener(self, listener: BusyListener) -> None:
        """Register a callback invoked after every busy interval."""
        self._busy_listeners.append(listener)

    def _account(self, seconds: float, activity: str) -> None:
        self.busy_seconds += seconds
        for listener in self._busy_listeners:
            listener(seconds, activity)

    @property
    def programmed(self) -> bool:
        return any(slot is not None for slot in self.slots)

    # -- health --------------------------------------------------------------
    def lock_up(self) -> None:
        """Wedge the board: every operation fails until :meth:`recover`."""
        self.alive = False
        self.lockups += 1

    def recover(self) -> None:
        """Power-cycle a locked-up board: memory and slots are wiped."""
        self.memory.release_all()
        self.slots = [None] * self.slot_count
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise BoardUnavailableError(f"board {self.name} is locked up")

    def kernel_slot(self, name: str) -> tuple[int, AcceleratorKernel]:
        """Find which slot hosts a kernel; returns (slot index, kernel)."""
        if not self.programmed:
            raise BoardError(f"board {self.name} has no bitstream")
        for index, bitstream in enumerate(self.slots):
            if bitstream is not None and name in bitstream:
                return index, bitstream.kernel(name)
        raise KeyError(
            f"kernel {name!r} not programmed on board {self.name} "
            f"(slots: {[b.name if b else None for b in self.slots]})"
        )

    def kernel(self, name: str) -> AcceleratorKernel:
        """Look up a kernel among the programmed slots."""
        return self.kernel_slot(name)[1]

    # -- programming ---------------------------------------------------------
    def program(self, bitstream: Bitstream):
        """Process: full-device reconfiguration.

        Blocks all kernel execution for the full reconfiguration time,
        wipes every slot and invalidates device memory (all buffers are
        freed), as a real full-device reprogram does.  The image lands in
        slot 0.
        """
        self._check_alive()
        grants = [lock.request() for lock in self._slot_locks]
        try:
            for grant in grants:
                yield grant
            start = self.env.now
            yield self.env.timeout(self.spec.reconfiguration_time)
            self.memory.release_all()
            self.slots = [None] * self.slot_count
            if (self.reconfiguration_injector is not None
                    and self.reconfiguration_injector(bitstream.name)):
                self._account(self.env.now - start, "reconfigure")
                raise ReconfigurationError(
                    f"reconfiguration of board {self.name} with "
                    f"{bitstream.name!r} failed"
                )
            self.slots[0] = bitstream
            self.reconfigurations += 1
            self._account(self.env.now - start, "reconfigure")
        finally:
            for lock, grant in zip(self._slot_locks, grants):
                lock.release(grant)

    def program_slot(self, slot: int, bitstream: Bitstream):
        """Process: partial reconfiguration of one slot (space-sharing).

        Only the target slot is blocked; other slots keep executing and
        device memory survives, as with real PR flows.
        """
        if not 0 <= slot < self.slot_count:
            raise BoardError(
                f"slot {slot} out of range (board has {self.slot_count})"
            )
        self._check_alive()
        with self._slot_locks[slot].request() as grant:
            yield grant
            start = self.env.now
            yield self.env.timeout(self.spec.partial_reconfiguration_time)
            if (self.reconfiguration_injector is not None
                    and self.reconfiguration_injector(bitstream.name)):
                self.slots[slot] = None
                self._account(self.env.now - start, "reconfigure")
                raise ReconfigurationError(
                    f"partial reconfiguration of slot {slot} of board "
                    f"{self.name} with {bitstream.name!r} failed"
                )
            self.slots[slot] = bitstream
            self.partial_reconfigurations += 1
            self._account(self.env.now - start, "reconfigure")

    # -- memory ---------------------------------------------------------------
    def allocate(self, size: int) -> DeviceBuffer:
        """Allocate device memory (instantaneous control operation)."""
        self._check_alive()
        return self.memory.allocate(size)

    def free(self, buffer: DeviceBuffer | int) -> None:
        self.memory.release(buffer)

    # -- data movement ---------------------------------------------------------
    def dma_write(
        self,
        buffer: DeviceBuffer,
        nbytes: int,
        data=None,
        offset: int = 0,
    ):
        """Process: move ``nbytes`` host→device; returns nothing.

        ``data`` (any bytes-like object, memoryview or numpy array) is
        stored into the buffer when the board is functional; timing-only
        boards never touch the payload.
        """
        if nbytes < 0 or offset < 0 or offset + nbytes > buffer.size:
            raise ValueError(
                f"write of {nbytes}@{offset} outside buffer size {buffer.size}"
            )
        self._check_alive()
        start = self.env.now
        yield from self.link.transfer(nbytes)
        if self.functional and data is not None:
            if payload_nbytes(data) > nbytes:
                data = as_uint8_view(data)[:nbytes]
            buffer.write(data, offset)
        self._account(self.env.now - start, "dma")

    def copy_on_device(self, src: DeviceBuffer, dst: DeviceBuffer,
                       nbytes: int, src_offset: int = 0,
                       dst_offset: int = 0):
        """Process: device-internal copy (``clEnqueueCopyBuffer``).

        Moves data DDR→DDR without crossing PCIe; bandwidth-limited by the
        on-board memory controller.
        """
        if (nbytes < 0 or src_offset < 0 or dst_offset < 0
                or src_offset + nbytes > src.size
                or dst_offset + nbytes > dst.size):
            raise ValueError(
                f"copy of {nbytes} bytes outside buffer bounds "
                f"(src {src.size}, dst {dst.size})"
            )
        self._check_alive()
        start = self.env.now
        yield self.env.timeout(nbytes / self.DDR_COPY_BANDWIDTH)
        if self.functional:
            data = src.read(nbytes, src_offset)
            if src is dst:
                # Same-buffer copies may overlap: snapshot the source view
                # (OpenCL leaves overlapping copies undefined; we keep the
                # pre-zero-copy snapshot semantics).
                data = data.tobytes()
            dst.write(data, dst_offset)
        self._account(self.env.now - start, "dma")

    #: On-board DDR-to-DDR copy bandwidth (read + write on DDR3-capable
    #: SODIMMs), bytes/second.
    DDR_COPY_BANDWIDTH = 10.0e9

    def dma_read(self, buffer: DeviceBuffer, nbytes: int, offset: int = 0):
        """Process: move ``nbytes`` device→host; returns a view.

        Zero-copy: the returned ``memoryview`` is a live view of device
        memory (functional boards) or of the shared zero page (timing-only
        boards).  Callers that keep the data past the next operation on the
        buffer must :func:`~repro.fpga.ddr.materialize` it — the command
        layers do this at the user-facing read boundary.
        """
        if nbytes < 0 or offset < 0 or offset + nbytes > buffer.size:
            raise ValueError(
                f"read of {nbytes}@{offset} outside buffer size {buffer.size}"
            )
        self._check_alive()
        start = self.env.now
        yield from self.link.transfer(nbytes)
        self._account(self.env.now - start, "dma")
        if self.functional:
            return buffer.read(nbytes, offset)
        return zero_view(nbytes)

    # -- execution ----------------------------------------------------------
    def execute(self, kernel_name: str, arg_values: list):
        """Process: run one kernel invocation to completion.

        Resolves and validates arguments against the kernel schema, holds
        the board's compute resource for the kernel's modelled duration and
        (in functional mode) performs the actual computation.  Returns the
        kernel's execution time in seconds.
        """
        self._check_alive()
        slot, kernel = self.kernel_slot(kernel_name)
        args = kernel.resolve_args(arg_values)
        duration = kernel.duration(args)
        with self._slot_locks[slot].request() as grant:
            yield grant
            # A full reprogram may have wiped the slot while we waited.
            current = self.slots[slot]
            if current is None or kernel_name not in current:
                raise BoardError(
                    f"kernel {kernel_name!r} was unloaded from slot {slot} "
                    f"of board {self.name} during a reconfiguration"
                )
            start = self.env.now
            yield self.env.timeout(duration)
            run_index = self.kernel_runs
            self.kernel_runs += 1
            faulted = (
                self.fault_injector is not None
                and self.fault_injector(kernel_name, run_index)
            )
            if not faulted and self.functional:
                kernel.compute(args)
            if faulted == "hang":
                # A wedged kernel never signals completion; the abort only
                # surfaces once the manager's watchdog fires.
                yield self.env.timeout(self.hang_detect_seconds)
                self._account(self.env.now - start, "kernel")
                raise KernelFault(
                    f"kernel {kernel_name!r} run #{run_index} hung on "
                    f"board {self.name}"
                )
            self._account(self.env.now - start, "kernel")
            if faulted:
                raise KernelFault(
                    f"kernel {kernel_name!r} run #{run_index} failed on "
                    f"board {self.name}"
                )
        return duration

    def __repr__(self) -> str:
        configured = self.bitstream.name if self.bitstream else None
        return f"<FPGABoard {self.name} bitstream={configured!r}>"

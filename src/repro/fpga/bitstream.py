"""Bitstreams: compiled accelerator images the boards are programmed with.

A bitstream bundles one or more OpenCL kernels (the ``.aocx`` of the Intel
toolchain).  The Accelerators Registry compares bitstream identifiers when
deciding whether allocating a function to a device requires reconfiguration
(Algorithm 1's *accelerator compatibility*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..kernels.base import AcceleratorKernel


@dataclass(frozen=True)
class Bitstream:
    """An immutable accelerator image."""

    name: str
    vendor: str
    platform: str
    kernels: tuple[AcceleratorKernel, ...]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a bitstream must contain at least one kernel")
        names = [kernel.name for kernel in self.kernels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate kernel names in {self.name}: {names}")

    def kernel(self, name: str) -> AcceleratorKernel:
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise KeyError(
            f"kernel {name!r} not in bitstream {self.name!r} "
            f"(has {[k.name for k in self.kernels]})"
        )

    def kernel_names(self) -> list[str]:
        return [kernel.name for kernel in self.kernels]

    def __contains__(self, kernel_name: str) -> bool:
        return any(kernel.name == kernel_name for kernel in self.kernels)


class BitstreamLibrary:
    """Named collection of available bitstreams (the cluster's image store)."""

    def __init__(self, bitstreams: Iterable[Bitstream] = ()):
        self._bitstreams: Dict[str, Bitstream] = {}
        for bitstream in bitstreams:
            self.add(bitstream)

    def add(self, bitstream: Bitstream) -> Bitstream:
        if bitstream.name in self._bitstreams:
            raise ValueError(f"duplicate bitstream {bitstream.name!r}")
        self._bitstreams[bitstream.name] = bitstream
        return bitstream

    def get(self, name: str) -> Bitstream:
        try:
            return self._bitstreams[name]
        except KeyError:
            raise KeyError(f"unknown bitstream {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._bitstreams

    def names(self) -> list[str]:
        return sorted(self._bitstreams)

    def __len__(self) -> int:
        return len(self._bitstreams)


_VENDOR = "Intel(R) Corporation"
_PLATFORM = "Intel(R) FPGA SDK for OpenCL(TM)"


def standard_library() -> BitstreamLibrary:
    """The three accelerator images used in the paper's evaluation."""
    from ..kernels.mm import MatrixMultiplyKernel
    from ..kernels.pipecnn import pipecnn_kernels
    from ..kernels.sobel import SobelKernel

    return BitstreamLibrary(
        [
            Bitstream("sobel", _VENDOR, _PLATFORM, (SobelKernel(),)),
            Bitstream("mm", _VENDOR, _PLATFORM, (MatrixMultiplyKernel(),)),
            Bitstream(
                "pipecnn_alexnet", _VENDOR, _PLATFORM,
                tuple(pipecnn_kernels()),
            ),
        ]
    )


def extended_library() -> BitstreamLibrary:
    """The standard library plus the extra Spector accelerators (FIR,
    histogram) — the wider image store a production deployment would
    carry."""
    from ..kernels.fir import FIRKernel
    from ..kernels.histogram import HistogramKernel

    library = standard_library()
    library.add(Bitstream("fir", _VENDOR, _PLATFORM, (FIRKernel(),)))
    library.add(Bitstream("histogram", _VENDOR, _PLATFORM,
                          (HistogramKernel(),)))
    return library

"""PCI Express link model.

DMA transfers between host and board memory are serialized through the link
and take ``latency + nbytes/bandwidth`` seconds.  Node A's board sits behind
a gen2 connector, nodes B/C behind gen3 — the asymmetry the paper's Table II
exposes (node A saturates first).
"""

from __future__ import annotations

from ..sim import Environment, Resource
from .hwspec import PCIeSpec, PCIE_GEN3_X8


class PCIeLink:
    """A host↔board PCIe connection shared by all DMA transfers."""

    def __init__(self, env: Environment, spec: PCIeSpec = PCIE_GEN3_X8):
        self.env = env
        self.spec = spec
        self._channel = Resource(env, capacity=1)
        self.bytes_transferred = 0
        self.transfer_count = 0

    def transfer(self, nbytes: int):
        """Process: move ``nbytes`` across the link (either direction)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        with self._channel.request() as grant:
            yield grant
            yield self.env.timeout(self.spec.transfer_time(nbytes))
        self.bytes_transferred += nbytes
        self.transfer_count += 1

    @property
    def busy(self) -> bool:
        return self._channel.count > 0

"""Simulated FPGA hardware substrate.

Models the paper's testbed hardware: Terasic DE5a-Net boards (Intel Arria 10
GX 1150, 8 GB DDR) behind PCIe gen2/gen3 links, with full-device
reconfiguration, a DDR allocator and exclusive kernel execution.  Timing
constants are calibrated to the paper's Figure 4 (see ``EXPERIMENTS.md``).
"""

from .bitstream import (
    Bitstream,
    BitstreamLibrary,
    extended_library,
    standard_library,
)
from .board import BoardError, FPGABoard, KernelFault
from .ddr import DeviceBuffer, MemoryAllocator, OutOfMemoryError
from .hwspec import (
    DE5A_NET,
    ETHERNET_1G,
    GiB,
    HOST_I7_6700,
    HOST_XEON_W3530,
    KiB,
    LOOPBACK,
    MiB,
    BoardSpec,
    HostSpec,
    NetworkSpec,
    NodeSpec,
    PCIeSpec,
    PCIE_GEN2_X8,
    PCIE_GEN3_X8,
    paper_testbed,
)
from .pcie import PCIeLink

__all__ = [
    "Bitstream",
    "BitstreamLibrary",
    "BoardError",
    "BoardSpec",
    "DE5A_NET",
    "DeviceBuffer",
    "ETHERNET_1G",
    "extended_library",
    "FPGABoard",
    "GiB",
    "HOST_I7_6700",
    "HOST_XEON_W3530",
    "HostSpec",
    "KernelFault",
    "KiB",
    "LOOPBACK",
    "MemoryAllocator",
    "MiB",
    "NetworkSpec",
    "NodeSpec",
    "OutOfMemoryError",
    "PCIE_GEN2_X8",
    "PCIE_GEN3_X8",
    "PCIeLink",
    "PCIeSpec",
    "paper_testbed",
    "standard_library",
]

"""On-board DDR memory model: a first-fit allocator plus buffer objects.

The DE5a-Net carries 8 GB of DDR across two SODIMMs.  OpenCL buffers created
by clients are allocated here; the allocator enforces capacity (raising
:class:`OutOfMemoryError` like ``CL_MEM_OBJECT_ALLOCATION_FAILURE``) and the
buffers optionally hold real bytes so kernels can compute functionally.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Optional

import numpy as np


class OutOfMemoryError(MemoryError):
    """Device memory exhausted (maps to CL_MEM_OBJECT_ALLOCATION_FAILURE)."""


class DeviceBuffer:
    """A region of device DDR.

    ``data`` is materialised lazily and only when the owning allocator runs
    in *functional* mode; in timing-only simulations buffers carry sizes but
    no bytes, which keeps multi-hour load tests cheap.
    """

    def __init__(self, buffer_id: int, size: int, offset: int,
                 functional: bool):
        self.id = buffer_id
        self.size = size
        self.offset = offset
        self._functional = functional
        self._data: Optional[np.ndarray] = None
        self.freed = False

    @property
    def data(self) -> np.ndarray:
        """Backing bytes (functional mode only)."""
        if not self._functional:
            raise RuntimeError(
                "buffer has no backing data (allocator is timing-only)"
            )
        if self._data is None:
            self._data = np.zeros(self.size, dtype=np.uint8)
        return self._data

    def write(self, payload: bytes | np.ndarray, offset: int = 0) -> None:
        """Copy host bytes into the buffer at ``offset``."""
        view = np.frombuffer(
            payload.tobytes() if isinstance(payload, np.ndarray) else payload,
            dtype=np.uint8,
        )
        self._check_range(offset, len(view))
        if self._functional:
            self.data[offset:offset + len(view)] = view

    def read(self, size: Optional[int] = None, offset: int = 0) -> bytes:
        """Copy ``size`` bytes out of the buffer starting at ``offset``."""
        if size is None:
            size = self.size - offset
        self._check_range(offset, size)
        if self._functional:
            return self.data[offset:offset + size].tobytes()
        return bytes(size)

    def as_array(self, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        """View the buffer contents as a typed array (functional mode)."""
        wanted = int(np.prod(shape)) * np.dtype(dtype).itemsize
        self._check_range(0, wanted)
        return self.data[:wanted].view(dtype).reshape(shape)

    def _check_range(self, offset: int, size: int) -> None:
        if self.freed:
            raise RuntimeError(f"buffer {self.id} already freed")
        if offset < 0 or size < 0 or offset + size > self.size:
            raise ValueError(
                f"access [{offset}, {offset + size}) outside buffer of "
                f"size {self.size}"
            )

    def __repr__(self) -> str:
        return f"<DeviceBuffer id={self.id} size={self.size}>"


class MemoryAllocator:
    """First-fit allocator over a fixed-size device memory."""

    def __init__(self, capacity: int, functional: bool = True):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.functional = functional
        self._buffers: Dict[int, DeviceBuffer] = {}
        self._ids = count(1)
        self._used = 0

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def allocate(self, size: int) -> DeviceBuffer:
        """Allocate ``size`` bytes; raises :class:`OutOfMemoryError`."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if size > self.free:
            raise OutOfMemoryError(
                f"requested {size} bytes, only {self.free} free of "
                f"{self.capacity}"
            )
        offset = self._find_offset(size)
        buffer = DeviceBuffer(next(self._ids), size, offset, self.functional)
        self._buffers[buffer.id] = buffer
        self._used += size
        return buffer

    def get(self, buffer_id: int) -> DeviceBuffer:
        try:
            return self._buffers[buffer_id]
        except KeyError:
            raise KeyError(f"unknown buffer id {buffer_id}") from None

    def release(self, buffer: DeviceBuffer | int) -> None:
        """Free a buffer (idempotent on already-freed ids is an error)."""
        buffer_id = buffer.id if isinstance(buffer, DeviceBuffer) else buffer
        found = self._buffers.pop(buffer_id, None)
        if found is None:
            raise KeyError(f"unknown buffer id {buffer_id}")
        found.freed = True
        self._used -= found.size

    def release_all(self) -> int:
        """Free every buffer (used when a client disconnects); returns count."""
        n = len(self._buffers)
        for buffer in self._buffers.values():
            buffer.freed = True
        self._buffers.clear()
        self._used = 0
        return n

    def __len__(self) -> int:
        return len(self._buffers)

    def _find_offset(self, size: int) -> int:
        """First-fit search over the gaps between live allocations."""
        allocations = sorted(
            (b.offset, b.size) for b in self._buffers.values()
        )
        cursor = 0
        for offset, allocated in allocations:
            if offset - cursor >= size:
                return cursor
            cursor = max(cursor, offset + allocated)
        if cursor + size > self.capacity:
            # Fragmented: total free is sufficient but no contiguous hole.
            raise OutOfMemoryError(
                f"no contiguous hole of {size} bytes (fragmentation)"
            )
        return cursor

"""On-board DDR memory model: a first-fit allocator plus buffer objects.

The DE5a-Net carries 8 GB of DDR across two SODIMMs.  OpenCL buffers created
by clients are allocated here; the allocator enforces capacity (raising
:class:`OutOfMemoryError` like ``CL_MEM_OBJECT_ALLOCATION_FAILURE``) and the
buffers optionally hold real bytes so kernels can compute functionally.

Zero-copy data plane
--------------------
Buffer reads and writes traffic in *views* (``memoryview``/numpy views), not
``bytes``:

* :meth:`DeviceBuffer.read` returns a ``memoryview`` — a live view of device
  memory in functional mode, a view of the shared zero page in timing-only
  mode.  No host copy is performed.
* :meth:`DeviceBuffer.write` accepts any bytes-like object or numpy array
  and copies it into device memory exactly once (functional mode) or not at
  all (timing-only mode).
* :func:`materialize` is the single explicit materialization point: it
  snapshots a live device view into immutable ``bytes`` (one real copy) and
  passes zero-page views and already-materialized data through untouched.

Callers holding a view of device memory must either consume it before the
next operation that writes the buffer or :func:`materialize` it; the command
layers do this at the user-facing read boundary (see docs/simulation.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class OutOfMemoryError(MemoryError):
    """Device memory exhausted (maps to CL_MEM_OBJECT_ALLOCATION_FAILURE)."""


# -- zero page ---------------------------------------------------------------
#
# Timing-only buffers carry sizes but no bytes.  Reads against them used to
# allocate a fresh zeroed ``bytes(n)`` per call — a real 8 MB host memcpy per
# simulated DMA in the load tests.  Instead every timing-only read returns a
# view of one shared, grow-only zero page.

_zero_pages: List[bytes] = [bytes(1 << 16)]


def zero_view(nbytes: int) -> memoryview:
    """A read-only all-zeros view of ``nbytes`` bytes (no allocation)."""
    page = _zero_pages[-1]
    if nbytes > len(page):
        size = len(page)
        while size < nbytes:
            size *= 2
        page = bytes(size)
        _zero_pages.append(page)
    return memoryview(page)[:nbytes]


def is_zero_view(data) -> bool:
    """True if ``data`` is a view of the shared zero page."""
    if not isinstance(data, memoryview):
        return False
    obj = data.obj
    return any(obj is page for page in _zero_pages)


def materialize(data):
    """Snapshot a live device view into immutable ``bytes``.

    The one explicit copy of the zero-copy data plane.  ``None``, ``bytes``
    and zero-page views (timing-only reads) pass through without copying.
    """
    if isinstance(data, memoryview) and not is_zero_view(data):
        return data.tobytes()
    return data


def payload_nbytes(payload) -> int:
    """Byte length of a host payload without converting or copying it."""
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:  # numpy arrays and memoryviews
        return nbytes
    return len(payload)


def as_uint8_view(payload) -> np.ndarray:
    """A flat ``uint8`` view over any bytes-like or numpy payload.

    Zero-copy for bytes, bytearray, C-contiguous memoryviews and
    C-contiguous arrays; only non-contiguous inputs pay a compaction copy.
    """
    if isinstance(payload, np.ndarray):
        if not payload.flags["C_CONTIGUOUS"]:
            payload = np.ascontiguousarray(payload)
        return payload.reshape(-1).view(np.uint8)
    try:
        return np.frombuffer(payload, dtype=np.uint8)
    except ValueError:
        # Non-contiguous memoryview: materialize, then wrap.
        return np.frombuffer(bytes(payload), dtype=np.uint8)


class DeviceBuffer:
    """A region of device DDR.

    ``data`` is materialised lazily and only when the owning allocator runs
    in *functional* mode; in timing-only simulations buffers carry sizes but
    no bytes, which keeps multi-hour load tests cheap.
    """

    __slots__ = ("id", "size", "offset", "_functional", "_data", "freed")

    def __init__(self, buffer_id: int, size: int, offset: int,
                 functional: bool):
        self.id = buffer_id
        self.size = size
        self.offset = offset
        self._functional = functional
        self._data: Optional[np.ndarray] = None
        self.freed = False

    @property
    def data(self) -> np.ndarray:
        """Backing bytes (functional mode only)."""
        if not self._functional:
            raise RuntimeError(
                "buffer has no backing data (allocator is timing-only)"
            )
        if self._data is None:
            self._data = np.zeros(self.size, dtype=np.uint8)
        return self._data

    def write(self, payload, offset: int = 0) -> None:
        """Copy host data into the buffer at ``offset``.

        Accepts bytes-like objects, memoryviews and numpy arrays.  In
        functional mode this is the single host→device copy; in timing-only
        mode only the bounds are validated and no bytes are touched.
        """
        nbytes = payload_nbytes(payload)
        self._check_range(offset, nbytes)
        if self._functional and nbytes:
            self.data[offset:offset + nbytes] = as_uint8_view(payload)

    def read(self, size: Optional[int] = None, offset: int = 0) -> memoryview:
        """View ``size`` bytes of the buffer starting at ``offset``.

        Returns a ``memoryview`` — a live view of device memory (functional
        mode) or of the shared zero page (timing-only mode).  No copy is
        made; use :func:`materialize` to snapshot the contents.
        """
        if size is None:
            size = self.size - offset
        self._check_range(offset, size)
        if self._functional:
            return self.data[offset:offset + size].data
        return zero_view(size)

    def as_array(self, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
        """View the buffer contents as a typed array (functional mode)."""
        wanted = int(np.prod(shape)) * np.dtype(dtype).itemsize
        self._check_range(0, wanted)
        return self.data[:wanted].view(dtype).reshape(shape)

    def _check_range(self, offset: int, size: int) -> None:
        if self.freed:
            raise RuntimeError(f"buffer {self.id} already freed")
        if offset < 0 or size < 0 or offset + size > self.size:
            raise ValueError(
                f"access [{offset}, {offset + size}) outside buffer of "
                f"size {self.size}"
            )

    def __repr__(self) -> str:
        return f"<DeviceBuffer id={self.id} size={self.size}>"


class MemoryAllocator:
    """First-fit allocator over a fixed-size device memory."""

    def __init__(self, capacity: int, functional: bool = True):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.functional = functional
        self._buffers: Dict[int, DeviceBuffer] = {}
        #: Live allocations ordered by offset, maintained incrementally so
        #: first-fit search is one linear walk (no per-allocate sort).
        self._ordered: List[DeviceBuffer] = []
        self._next_id = 1
        self._used = 0

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def allocate(self, size: int) -> DeviceBuffer:
        """Allocate ``size`` bytes; raises :class:`OutOfMemoryError`."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if size > self.free:
            raise OutOfMemoryError(
                f"requested {size} bytes, only {self.free} free of "
                f"{self.capacity}"
            )
        offset, index = self._find_offset(size)
        buffer = DeviceBuffer(self._next_id, size, offset, self.functional)
        self._next_id += 1
        self._buffers[buffer.id] = buffer
        self._ordered.insert(index, buffer)
        self._used += size
        return buffer

    def allocate_at(self, size: int, offset: int,
                    buffer_id: Optional[int] = None) -> DeviceBuffer:
        """Allocate ``size`` bytes at an exact ``offset`` (checkpoint restore).

        Restoring a :class:`~repro.live.BoardCheckpoint` onto a fresh board
        must reproduce the source layout bit-identically, so the restore
        path places segments explicitly instead of first-fit.  ``buffer_id``
        pins the id as well; ids at or below it are reserved afterwards so
        later first-fit allocations can never collide.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if offset < 0 or offset + size > self.capacity:
            raise ValueError(
                f"segment [{offset}, {offset + size}) outside device "
                f"memory of {self.capacity} bytes"
            )
        index = 0
        for index, live in enumerate(self._ordered):  # noqa: B007
            if live.offset + live.size <= offset:
                index += 1
                continue
            if live.offset < offset + size:
                raise OutOfMemoryError(
                    f"segment [{offset}, {offset + size}) overlaps live "
                    f"buffer {live.id} at [{live.offset}, "
                    f"{live.offset + live.size})"
                )
            break
        if buffer_id is None:
            buffer_id = self._next_id
        elif buffer_id in self._buffers:
            raise ValueError(f"buffer id {buffer_id} already live")
        buffer = DeviceBuffer(buffer_id, size, offset, self.functional)
        self._next_id = max(self._next_id, buffer_id) + 1
        self._buffers[buffer.id] = buffer
        self._ordered.insert(index, buffer)
        self._used += size
        return buffer

    def reserve_ids(self, beyond: int) -> None:
        """Never hand out ids at or below ``beyond`` from now on.

        After a migration restores a session whose client still refers to
        source-side buffer ids, the target allocator must not mint those
        ids again for new allocations.
        """
        self._next_id = max(self._next_id, beyond + 1)

    def get(self, buffer_id: int) -> DeviceBuffer:
        try:
            return self._buffers[buffer_id]
        except KeyError:
            raise KeyError(f"unknown buffer id {buffer_id}") from None

    def release(self, buffer: DeviceBuffer | int) -> None:
        """Free a buffer (idempotent on already-freed ids is an error)."""
        buffer_id = buffer.id if isinstance(buffer, DeviceBuffer) else buffer
        found = self._buffers.pop(buffer_id, None)
        if found is None:
            raise KeyError(f"unknown buffer id {buffer_id}")
        found.freed = True
        self._ordered.remove(found)
        self._used -= found.size

    def release_all(self) -> int:
        """Free every buffer (used when a client disconnects); returns count."""
        n = len(self._buffers)
        for buffer in self._buffers.values():
            buffer.freed = True
        self._buffers.clear()
        self._ordered.clear()
        self._used = 0
        return n

    def __len__(self) -> int:
        return len(self._buffers)

    def _find_offset(self, size: int) -> tuple[int, int]:
        """First-fit over the gaps; returns (offset, insertion index)."""
        cursor = 0
        for index, live in enumerate(self._ordered):
            if live.offset - cursor >= size:
                return cursor, index
            end = live.offset + live.size
            if end > cursor:
                cursor = end
        if cursor + size > self.capacity:
            # Fragmented: total free is sufficient but no contiguous hole.
            raise OutOfMemoryError(
                f"no contiguous hole of {size} bytes (fragmentation)"
            )
        return cursor, len(self._ordered)

"""Hardware specifications and calibrated timing constants.

The constants here encode the paper's testbed:

* three nodes — one master (node A: Xeon W3530, DDR3, PCIe **gen2** x8) and
  two workers (nodes B, C: i7-6700, DDR4, PCIe **gen3** x8);
* one Terasic DE5a-Net board per node (Intel Arria 10 GX 1150, 8 GB DDR);
* 1 Gb/s Ethernet between nodes.

Bandwidth/latency values are calibrated against Figure 4 of the paper (see
``EXPERIMENTS.md``): e.g. the single extra memcpy of the shared-memory path
costs ~155 ms for 2 GB, which pins the host memcpy bandwidth near 13 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GiB = 1024 ** 3
MiB = 1024 ** 2
KiB = 1024


@dataclass(frozen=True)
class PCIeSpec:
    """Effective characteristics of one PCIe connection."""

    generation: int
    lanes: int
    bandwidth: float  # effective bytes/second (after protocol overhead)
    latency: float    # per-DMA-transaction setup latency, seconds

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across the link (one DMA transaction)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.latency + nbytes / self.bandwidth


#: PCIe gen3 x8 — worker nodes B and C (effective ~6.8 GB/s).
PCIE_GEN3_X8 = PCIeSpec(generation=3, lanes=8, bandwidth=6.8e9, latency=10e-6)

#: PCIe gen2 x8 — master node A (effective ~3.4 GB/s).
PCIE_GEN2_X8 = PCIeSpec(generation=2, lanes=8, bandwidth=3.4e9, latency=15e-6)


@dataclass(frozen=True)
class HostSpec:
    """Host CPU/memory characteristics relevant to the data path."""

    name: str
    cores: int
    frequency_ghz: float
    memcpy_bandwidth: float     # bytes/second for a single-thread memcpy
    protobuf_bandwidth: float   # bytes/second for protobuf encode+decode
    #: Multiplier on fixed host-side software overheads (1.0 = worker node).
    speed_factor: float = 1.0


#: Worker node CPU (i7-6700, DDR4).
HOST_I7_6700 = HostSpec(
    name="Intel Core i7-6700 @ 3.40GHz",
    cores=4,
    frequency_ghz=3.4,
    memcpy_bandwidth=13.9e9,
    protobuf_bandwidth=4.6e9,
    speed_factor=1.0,
)

#: Master node CPU (Xeon W3530, DDR3) — measurably slower host path.
HOST_XEON_W3530 = HostSpec(
    name="Intel Xeon W3530 @ 2.80GHz",
    cores=4,
    frequency_ghz=2.8,
    memcpy_bandwidth=8.5e9,
    protobuf_bandwidth=3.0e9,
    speed_factor=1.35,
)


@dataclass(frozen=True)
class BoardSpec:
    """An FPGA accelerator board."""

    name: str
    fpga: str
    logic_elements: int
    memory_bytes: int
    #: Full-device reconfiguration time (bitstream programming), seconds.
    reconfiguration_time: float
    #: Partial-reconfiguration slots (the paper's future-work
    #: space-sharing; 1 = classic time-sharing-only board).
    pr_slots: int = 1
    #: Partial reconfiguration of one slot, seconds.
    partial_reconfiguration_time: float = 0.4

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("board memory must be positive")
        if self.pr_slots < 1:
            raise ValueError("a board needs at least one slot")


#: Terasic DE5a-Net: Intel Arria 10 GX 1150, 8 GB DDR over 2 SODIMMs.
DE5A_NET = BoardSpec(
    name="Terasic DE5a-Net",
    fpga="Intel Arria 10 GX 1150",
    logic_elements=1_150_000,
    memory_bytes=8 * GiB,
    reconfiguration_time=2.5,
)


@dataclass(frozen=True)
class NetworkSpec:
    """Characteristics of a network path between two endpoints."""

    bandwidth: float      # bytes/second
    latency: float        # one-way propagation + stack latency, seconds

    def transfer_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.latency + nbytes / self.bandwidth


#: 1 Gb/s Ethernet between nodes (~117 MB/s effective).
ETHERNET_1G = NetworkSpec(bandwidth=117e6, latency=150e-6)

#: Local virtual network stack (loopback / docker bridge on the same node).
LOOPBACK = NetworkSpec(bandwidth=4.0e9, latency=25e-6)


@dataclass(frozen=True)
class NodeSpec:
    """A cluster node: host CPU + PCIe connection + attached board."""

    name: str
    host: HostSpec
    pcie: PCIeSpec
    board: BoardSpec = DE5A_NET
    memory_bytes: int = 24 * GiB
    is_master: bool = False


def paper_testbed() -> list[NodeSpec]:
    """The three-node testbed of Section IV.

    Node A is the master (Xeon W3530, 24 GB DDR3, PCIe gen2); nodes B and C
    are workers (i7-6700, 32 GB DDR4, PCIe gen3).  Each node carries one
    DE5a-Net board.
    """
    return [
        NodeSpec(
            name="A",
            host=HOST_XEON_W3530,
            pcie=PCIE_GEN2_X8,
            memory_bytes=24 * GiB,
            is_master=True,
        ),
        NodeSpec(name="B", host=HOST_I7_6700, pcie=PCIE_GEN3_X8,
                 memory_bytes=32 * GiB),
        NodeSpec(name="C", host=HOST_I7_6700, pcie=PCIE_GEN3_X8,
                 memory_bytes=32 * GiB),
    ]

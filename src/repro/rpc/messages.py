"""Control-plane messaging: endpoints, messages, unary calls.

The components of BlastFunction talk gRPC for control.  Here a *message* is
delivered into the destination endpoint's inbox after the transport's
control latency; unary request/response is built from two one-way messages.
The convention mirrors gRPC's asynchronous completion-queue API, which is
exactly what the paper's Remote OpenCL Library builds its event state
machines on (a *tag* identifying the waiting operation travels with each
request and returns with its response).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Optional

from ..sim import Environment, Event, Store
from .transport import Transport

_message_ids = count(1)


class RpcError(RuntimeError):
    """A failed remote call (the server answered with an error).

    ``code`` optionally carries a structured (OpenCL) error code so client
    layers can surface the server's failure as the matching ``CLError``
    rather than a generic one.
    """

    def __init__(self, message: str, code: Optional[int] = None):
        super().__init__(message)
        self.code = code


def new_request_id() -> int:
    """Fresh request id for an idempotent unary call.

    Retries of the same logical request reuse one id, letting the server
    dedupe re-executions and replay the cached reply.
    """
    return next(_message_ids)


@dataclass(slots=True)
class Message:
    """One control message.

    Bulk data payloads (``payload["data"]``) are bytes-like and may be
    *views* (``memoryview``/numpy) rather than ``bytes``: delivery never
    copies them.  The data plane charges their transfer cost separately
    (see :mod:`repro.rpc.transport`); materialization to immutable bytes
    happens only at the read-completion boundary.
    """

    method: str
    payload: Dict[str, Any] = field(default_factory=dict)
    sender: str = ""
    #: Completion-queue tag: opaque client-side identity (e.g. a pointer to
    #: the Remote Library event driving this call).
    tag: Any = None
    #: For unary calls: the simulation event the reply will trigger.
    reply_to: Optional[Event] = None
    id: int = field(default_factory=lambda: next(_message_ids))


class RpcEndpoint:
    """A named service endpoint with an inbox of delivered messages."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.inbox: Store = Store(env)
        self.delivered = 0

    def deliver(self, message: Message) -> None:
        """Place a message in the inbox (after transport delay)."""
        self.inbox.put(message)
        self.delivered += 1

    def __repr__(self) -> str:
        return f"<RpcEndpoint {self.name}>"


def send_to_server(transport: Transport, endpoint: RpcEndpoint,
                   message: Message):
    """Process: deliver a client→server control message."""
    yield from transport.deliver_to_server(endpoint, message)


def send_to_client(transport: Transport, endpoint: RpcEndpoint,
                   message: Message):
    """Process: deliver a server→client control message."""
    yield from transport.deliver_to_client(endpoint, message)


class RpcTimeout(RpcError):
    """A unary call was not answered within its deadline."""


def unary_call(
    transport: Transport,
    endpoint: RpcEndpoint,
    method: str,
    payload: Optional[Dict[str, Any]] = None,
    sender: str = "",
    timeout: Optional[float] = None,
    request_id: Optional[int] = None,
):
    """Process: synchronous request/response against a server endpoint.

    The server is expected to answer via :func:`reply`.  Raises
    :class:`RpcError` if the server replies with an error and
    :class:`RpcTimeout` if no reply arrives within ``timeout`` seconds
    (gRPC deadline semantics; ``None`` waits forever).

    ``request_id`` pins the message id so a retry is recognizably the
    same logical request (the Device Manager dedupes on it and replays
    its cached reply instead of re-executing).
    """
    env = transport.env
    response = env.event()
    message = Message(
        method=method, payload=dict(payload or {}), sender=sender,
        reply_to=response,
    )
    if request_id is not None:
        message.id = request_id
    yield from transport.deliver_to_server(endpoint, message)
    if timeout is None:
        result = yield response
        return result
    deadline = env.timeout(timeout)
    from ..sim import AnyOf

    yield AnyOf(env, [response, deadline])
    if not response.triggered:
        # Late replies (including late errors) must not crash the
        # abandoned caller.
        response.defused = True
        raise RpcTimeout(f"{method} deadline of {timeout}s exceeded")
    faults = transport.network.faults
    if faults is not None:
        # Reply loss is decided client-side: the server's handler DID run
        # (and cached its reply for retries), but the answer crossing the
        # same lossy fabric may drop or straggle, surfacing to the caller
        # as a deadline expiry.  Only modeled under a deadline — without
        # one a lost reply would hang the caller forever.
        verdict = faults.message_action(transport.server.name,
                                        transport.client.name)
        if verdict.drop:
            response.defused = True
            if not deadline.processed:
                yield deadline
            raise RpcTimeout(f"{method} reply lost; deadline of "
                             f"{timeout}s exceeded")
        if verdict.delay:
            extra = env.timeout(verdict.delay)
            yield AnyOf(env, [extra, deadline])
            if not extra.processed:
                response.defused = True
                raise RpcTimeout(f"{method} deadline of {timeout}s exceeded")
    if not response.ok:
        raise response.value
    return response.value


def reply(transport: Transport, message: Message, value: Any = None):
    """Process: answer a unary call (server side)."""
    if message.reply_to is None:
        raise ValueError(f"message {message.method!r} expects no reply")
    yield from transport.control_to_client()
    message.reply_to.succeed(value)


def reply_error(transport: Transport, message: Message,
                error: Exception):
    """Process: answer a unary call with a failure."""
    if message.reply_to is None:
        raise ValueError(f"message {message.method!r} expects no reply")
    yield from transport.control_to_client()
    if not isinstance(error, RpcError):
        # Preserve a structured OpenCL code when the server error has one.
        error = RpcError(str(error), code=getattr(error, "cl_code", None))
    message.reply_to.fail(error)

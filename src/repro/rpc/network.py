"""Network fabric: hosts, links and raw byte movement.

Two path classes, as in the paper's testbed: the *local virtual network
stack* within a node (container-to-container over the bridge/loopback,
memcpy-class bandwidth) and 1 Gb/s Ethernet between nodes.  Cross-node
traffic serializes on the sending host's NIC.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..fpga.hwspec import ETHERNET_1G, HOST_I7_6700, HostSpec, NetworkSpec
from ..sim import Environment, Resource

#: Local (same-node) virtual network stack: memcpy-class byte movement.
LOCAL_STACK = NetworkSpec(bandwidth=13.9e9, latency=25e-6)


class NetworkHost:
    """A network identity: one node's stack and NIC."""

    def __init__(self, env: Environment, name: str,
                 host: HostSpec = HOST_I7_6700):
        self.env = env
        self.name = name
        self.host = host
        self.nic = Resource(env, capacity=1)
        self.bytes_sent = 0

    def __repr__(self) -> str:
        return f"<NetworkHost {self.name}>"


class Network:
    """Moves raw bytes between hosts with the appropriate path model."""

    def __init__(
        self,
        env: Environment,
        local: NetworkSpec = LOCAL_STACK,
        remote: NetworkSpec = ETHERNET_1G,
    ):
        self.env = env
        self.local = local
        self.remote = remote
        self._hosts: Dict[str, NetworkHost] = {}
        #: Optional :class:`~repro.faults.NetworkFaultPlane`.  ``None`` (the
        #: default) keeps every delivery on the exact pre-fault-injection
        #: code path — goldens stay bit-identical.
        self.faults = None

    def host(self, name: str, host_spec: HostSpec = HOST_I7_6700) -> NetworkHost:
        """Get (creating if needed) the network identity for a node."""
        found = self._hosts.get(name)
        if found is None:
            found = NetworkHost(self.env, name, host_spec)
            self._hosts[name] = found
        return found

    def spec_between(self, src: NetworkHost, dst: NetworkHost) -> NetworkSpec:
        return self.local if src.name == dst.name else self.remote

    def is_local(self, src: NetworkHost, dst: NetworkHost) -> bool:
        return src.name == dst.name

    def transfer(self, src: NetworkHost, dst: NetworkHost, nbytes: int):
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Same-node traffic flows through the local stack without NIC
        contention; cross-node traffic serializes on the sender's NIC.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        spec = self.spec_between(src, dst)
        if self.is_local(src, dst):
            yield self.env.timeout(spec.transfer_time(nbytes))
        else:
            with src.nic.request() as grant:
                yield grant
                yield self.env.timeout(spec.transfer_time(nbytes))
        src.bytes_sent += nbytes

"""Data-plane transports between the Remote OpenCL Library and a Device
Manager.

Two mechanisms, as in Section III-B of the paper:

* :class:`GrpcTransport` — protobuf serialization plus multiple data copies.
  The paper measures ~4× native latency for large transfers and attributes
  it to "protobuf overheads and 3 copies of the data buffers".
* :class:`ShmTransport` — POSIX shared memory between containers on the
  same node: exactly **one** copy ("from four to one"), the single copy
  retained to keep full OpenCL compatibility.  Control signalling still
  rides gRPC.

Every copy is counted in :class:`CopyStats` so the 4-vs-1 claim is a tested
invariant, not prose.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..sim import Environment
from .network import Network, NetworkHost

#: Size of a control message on the wire (call metadata, acks), bytes.
CONTROL_MESSAGE_BYTES = 256

#: Host-side handling of one control message (encode, dispatch, handler).
#: Calibrated so the minimum BlastFunction RTT (one blocking write + read)
#: lands near the ~2 ms of control signalling the paper reports in Fig. 4.
CONTROL_HANDLING_OVERHEAD = 225e-6


@dataclass
class CopyStats:
    """Accounting of host data copies along a transport's data path."""

    copies: int = 0
    bytes_copied: int = 0

    def record(self, count: int, nbytes: int) -> None:
        self.copies += count
        self.bytes_copied += count * nbytes


class Transport(abc.ABC):
    """One client↔server connection's data plane."""

    #: Host data copies performed per bulk payload moved.
    data_copies: int = 0

    def __init__(
        self,
        env: Environment,
        network: Network,
        client: NetworkHost,
        server: NetworkHost,
        stats: CopyStats | None = None,
    ):
        self.env = env
        self.network = network
        self.client = client
        self.server = server
        self.stats = stats if stats is not None else CopyStats()

    # -- control plane -----------------------------------------------------
    def send_control(self, src: NetworkHost, dst: NetworkHost):
        """Process: one-way control message (gRPC in both transports)."""
        overhead = CONTROL_HANDLING_OVERHEAD * max(
            src.host.speed_factor, dst.host.speed_factor
        )
        yield self.env.timeout(overhead)
        yield from self.network.transfer(src, dst, CONTROL_MESSAGE_BYTES)

    def control_to_server(self):
        yield from self.send_control(self.client, self.server)

    def control_to_client(self):
        yield from self.send_control(self.server, self.client)

    # -- control plane with delivery (fault-injection point) ----------------
    def deliver_to_server(self, endpoint, message):
        """Process: send one control message and deliver it client→server.

        This is where the network fault plane bites: with
        ``network.faults`` installed the message may be dropped, delayed
        or duplicated.  Disabled, the path is identical (same generator
        depth, same event sequence) to ``control_to_server`` + deliver.
        """
        faults = self.network.faults
        if faults is not None:
            yield from self._deliver_faulty(
                faults, self.client, self.server, endpoint, message)
            return
        yield from self.send_control(self.client, self.server)
        endpoint.deliver(message)

    def deliver_to_client(self, endpoint, message):
        """Process: send one control message and deliver it server→client."""
        faults = self.network.faults
        if faults is not None:
            yield from self._deliver_faulty(
                faults, self.server, self.client, endpoint, message)
            return
        yield from self.send_control(self.server, self.client)
        endpoint.deliver(message)

    def _deliver_faulty(self, faults, src, dst, endpoint, message):
        # The sender always pays the send cost — it cannot know the fabric
        # ate the message.
        verdict = faults.message_action(src.name, dst.name)
        yield from self.send_control(src, dst)
        if verdict.drop:
            return
        if verdict.delay:
            yield self.env.timeout(verdict.delay)
        endpoint.deliver(message)
        if verdict.duplicate:
            endpoint.deliver(message)

    # -- data plane -----------------------------------------------------------
    @abc.abstractmethod
    def send_data(self, src: NetworkHost, dst: NetworkHost, nbytes: int):
        """Process: move a bulk payload one way."""

    def data_to_server(self, nbytes: int):
        yield from self.send_data(self.client, self.server, nbytes)

    def data_to_client(self, nbytes: int):
        yield from self.send_data(self.server, self.client, nbytes)

    def _slow_memcpy_bandwidth(self) -> float:
        return min(
            self.client.host.memcpy_bandwidth,
            self.server.host.memcpy_bandwidth,
        )

    def _slow_protobuf_bandwidth(self) -> float:
        return min(
            self.client.host.protobuf_bandwidth,
            self.server.host.protobuf_bandwidth,
        )


class GrpcTransport(Transport):
    """Pure-gRPC data plane ("BlastFunction" curves in Figure 4).

    One payload costs: two explicit buffer copies (into the protobuf arena
    on the sender, out of it on the receiver), protobuf encode+decode, plus
    the wire — which, on the local virtual network stack, is itself a
    memcpy-class traversal, giving the paper's "3 copies" versus native.
    """

    name = "grpc"
    #: Explicit host copies; the local-stack wire traversal adds a third
    #: copy-equivalent, and DMA from the manager's staging buffer is the 4th
    #: copy of the overall BlastFunction path the paper counts.
    data_copies = 2

    def send_data(self, src: NetworkHost, dst: NetworkHost, nbytes: int):
        if nbytes < 0:
            raise ValueError("negative payload size")
        copy_time = self.data_copies * nbytes / self._slow_memcpy_bandwidth()
        proto_time = nbytes / self._slow_protobuf_bandwidth()
        yield self.env.timeout(copy_time + proto_time)
        self.stats.record(self.data_copies, nbytes)
        yield from self.network.transfer(src, dst, nbytes)
        self.stats.record(1, nbytes)  # wire traversal (local stack copy)


class ShmTransport(Transport):
    """Shared-memory data plane ("BlastFunction shm" in Figure 4).

    Requires client and server on the same node.  One memcpy into the
    shared region per payload; control messages still use gRPC.
    """

    name = "shm"
    data_copies = 1

    def __init__(self, env, network, client, server, stats=None):
        if client.name != server.name:
            raise ValueError(
                "shared memory requires colocation on one node "
                f"(client on {client.name}, server on {server.name})"
            )
        super().__init__(env, network, client, server, stats)

    def send_data(self, src: NetworkHost, dst: NetworkHost, nbytes: int):
        if nbytes < 0:
            raise ValueError("negative payload size")
        yield self.env.timeout(nbytes / self._slow_memcpy_bandwidth())
        self.stats.record(self.data_copies, nbytes)


def make_transport(
    env: Environment,
    network: Network,
    client: NetworkHost,
    server: NetworkHost,
    prefer_shm: bool = True,
    stats: CopyStats | None = None,
) -> Transport:
    """Choose the transport the paper's logic would pick.

    Shared memory when client and Device Manager share a node (and shm is
    allowed); gRPC otherwise.
    """
    if prefer_shm and network.is_local(client, server):
        return ShmTransport(env, network, client, server, stats)
    return GrpcTransport(env, network, client, server, stats)

"""RPC substrate: the network, gRPC-model and shared-memory transports, and
control-plane messaging used by every BlastFunction component."""

from .messages import (
    Message,
    RpcEndpoint,
    RpcError,
    RpcTimeout,
    new_request_id,
    reply,
    reply_error,
    send_to_client,
    send_to_server,
    unary_call,
)
from .network import LOCAL_STACK, Network, NetworkHost
from .transport import (
    CONTROL_HANDLING_OVERHEAD,
    CONTROL_MESSAGE_BYTES,
    CopyStats,
    GrpcTransport,
    ShmTransport,
    Transport,
    make_transport,
)

__all__ = [
    "CONTROL_HANDLING_OVERHEAD",
    "CONTROL_MESSAGE_BYTES",
    "CopyStats",
    "GrpcTransport",
    "LOCAL_STACK",
    "Message",
    "Network",
    "NetworkHost",
    "RpcEndpoint",
    "RpcError",
    "RpcTimeout",
    "ShmTransport",
    "Transport",
    "make_transport",
    "new_request_id",
    "reply",
    "reply_error",
    "send_to_client",
    "send_to_server",
    "unary_call",
]

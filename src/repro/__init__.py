"""BlastFunction (DATE 2020) — a full reproduction on a simulated testbed.

An FPGA-as-a-Service system for accelerated serverless computing:
time-shares FPGA boards among serverless functions through a transparent
remote OpenCL runtime, with a cluster-wide registry allocating devices via
runtime metrics.

Package tour
------------
``repro.sim``
    Deterministic discrete-event simulation kernel (the substrate).
``repro.fpga`` / ``repro.kernels``
    Board models (Arria 10, PCIe, DDR, bitstreams) and the accelerators
    (Sobel, MM, PipeCNN/AlexNet, FIR, histogram) with functional NumPy
    models plus latency models calibrated to the paper's Figure 4.
``repro.ocl``
    The OpenCL host object model and the native (vendor) driver.
``repro.core``
    The paper's contribution: Remote OpenCL Library, Device Manager,
    Accelerators Registry.
``repro.cluster`` / ``repro.serverless`` / ``repro.metrics`` /
``repro.loadgen``
    Kubernetes-, OpenFaaS-, Prometheus- and hey-model substrates.
``repro.experiments``
    One harness per table/figure of the paper (`python -m
    repro.experiments all`).
``repro.trace`` / ``repro.analysis``
    Execution tracing (Chrome/Perfetto export), latency breakdowns and
    queueing-theory validation.

Quickstart: see ``examples/quickstart.py`` and ``README.md``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

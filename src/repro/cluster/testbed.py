"""Assembly of the paper's three-node testbed.

Builds the full substrate in one call: network, boards (node A behind PCIe
gen2, B/C behind gen3), Device Managers, cluster nodes and the metrics
scraper — the starting point of every multi-node experiment and example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.device_manager import DeviceManager
from ..fpga.bitstream import BitstreamLibrary, standard_library
from ..fpga.board import FPGABoard
from ..fpga.hwspec import NodeSpec, paper_testbed
from ..metrics import Scraper
from ..rpc import Network
from ..sim import Environment
from .apiserver import Cluster
from .objects import ClusterNode


@dataclass
class Testbed:
    """Everything a multi-node experiment needs, wired together."""

    env: Environment
    network: Network
    library: BitstreamLibrary
    cluster: Cluster
    managers: Dict[str, DeviceManager] = field(default_factory=dict)
    scraper: Optional[Scraper] = None

    #: Kept so late-added nodes (autoscaling) match the fleet's mode.
    functional: bool = False

    def add_node(self, spec: NodeSpec,
                 batching: bool = True) -> DeviceManager:
        """Provision a new node with a board and Device Manager at runtime.

        Used by the F1-style node autoscaler (the paper's future work):
        the caller is responsible for registering the returned manager
        with the Accelerators Registry and the platform routers.
        """
        host = self.network.host(spec.name, spec.host)
        board = FPGABoard(
            self.env, name=f"fpga-{spec.name}", spec=spec.board,
            pcie=spec.pcie, functional=self.functional,
        )
        manager = DeviceManager(
            self.env, f"dm-{spec.name}", board, self.library, self.network,
            host, batching=batching,
        )
        self.managers[manager.name] = manager
        self.cluster.add_node(ClusterNode(spec, host, board))
        if self.scraper is not None:
            self.scraper.add_target(manager.name, manager.metrics,
                                    node=spec.name, device=board.name)
        return manager

    def manager_on(self, node_name: str) -> DeviceManager:
        for manager in self.managers.values():
            if manager.node.name == node_name:
                return manager
        raise KeyError(f"no Device Manager on node {node_name!r}")

    def boards(self) -> List[FPGABoard]:
        return [n.board for n in self.cluster.nodes.values() if n.board]


def build_testbed(
    env: Environment,
    node_specs: Optional[List[NodeSpec]] = None,
    library: Optional[BitstreamLibrary] = None,
    functional: bool = False,
    scrape_interval: float = 1.0,
    with_scraper: bool = True,
    batching: bool = True,
) -> Testbed:
    """Construct the testbed of Section IV (or a custom node list).

    ``functional=False`` runs boards in timing-only mode — the right choice
    for load experiments; turn it on for examples that check results.
    """
    if node_specs is None:
        node_specs = paper_testbed()
    if library is None:
        library = standard_library()

    network = Network(env)
    cluster = Cluster(env)
    testbed = Testbed(env, network, library, cluster, functional=functional)
    scraper = Scraper(env, interval=scrape_interval) if with_scraper else None
    testbed.scraper = scraper

    for spec in node_specs:
        host = network.host(spec.name, spec.host)
        board = FPGABoard(
            env,
            name=f"fpga-{spec.name}",
            spec=spec.board,
            pcie=spec.pcie,
            functional=functional,
        )
        manager = DeviceManager(
            env, f"dm-{spec.name}", board, library, network, host,
            batching=batching,
        )
        testbed.managers[manager.name] = manager
        cluster.add_node(ClusterNode(spec, host, board))
        if scraper is not None:
            scraper.add_target(manager.name, manager.metrics,
                               node=spec.name, device=board.name)

    return testbed

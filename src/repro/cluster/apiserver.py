"""Cluster API server: pod lifecycle, admission hooks, watches.

The Accelerators Registry "integrates with Kubernetes to intercept function
creation and deletion in the cluster.  When the cluster notifies the
creation of a new function, the allocation algorithm patches the notified
operation (e.g. adds environment variables, volumes for shared memory and
forces the host allocation)" — modelled here as a synchronous mutating
admission hook plus watch notifications.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim import Environment, Interrupt
from .objects import (
    ClusterNode,
    Pod,
    PodPhase,
    PodSpec,
    WatchEvent,
    WatchEventType,
)

#: Mutating admission hook: may modify the spec or raise to reject the pod.
AdmissionHook = Callable[[PodSpec], None]

#: Watch callback.
Watcher = Callable[[WatchEvent], None]


class SchedulingError(RuntimeError):
    """No node satisfies a pod's placement constraints."""


class Cluster:
    """The control plane."""

    #: Time from successful scheduling to the container entering RUNNING
    #: (image already pulled; warm start of the function runtime).
    POD_START_DELAY = 0.25

    def __init__(self, env: Environment):
        self.env = env
        self.nodes: Dict[str, ClusterNode] = {}
        self.pods: Dict[str, Pod] = {}
        #: Per-function pod index (insertion-ordered, like a full scan).
        self._pods_by_function: Dict[str, Dict[str, Pod]] = {}
        self._admission_hooks: List[AdmissionHook] = []
        self._watchers: List[Watcher] = []
        self._round_robin = 0

    # -- topology -----------------------------------------------------------
    def add_node(self, node: ClusterNode) -> ClusterNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def node(self, name: str) -> ClusterNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def fail_node(self, name: str) -> List[Pod]:
        """Mark a node NotReady and evict its pods (kubelet gone).

        Returns the evicted pods; each is terminated through the normal
        delete path so watchers (the function controller) observe the
        deletions and can respawn elsewhere.
        """
        node = self.node(name)
        node.ready = False
        evicted = []
        for pod in list(node.pods.values()):
            evicted.append(self.delete_pod(pod.name))
        return evicted

    def recover_node(self, name: str) -> ClusterNode:
        """Bring a failed node back into scheduling rotation."""
        node = self.node(name)
        node.ready = True
        return node

    # -- hooks & watches -------------------------------------------------------
    def add_admission_hook(self, hook: AdmissionHook) -> None:
        self._admission_hooks.append(hook)

    def watch(self, watcher: Watcher) -> None:
        self._watchers.append(watcher)

    def _notify(self, event_type: WatchEventType, pod: Pod) -> None:
        for watcher in list(self._watchers):
            watcher(WatchEvent(event_type, pod))

    # -- pod lifecycle --------------------------------------------------------
    def create_pod(self, spec: PodSpec):
        """Process: admit, schedule and start a pod; returns it RUNNING."""
        if spec.name in self.pods:
            raise ValueError(f"pod {spec.name!r} already exists")
        for hook in self._admission_hooks:
            hook(spec)  # may mutate spec or raise
        pod = Pod(spec)
        pod.created_at = self.env.now
        self.pods[spec.name] = pod
        self._pods_by_function.setdefault(spec.function, {})[spec.name] = pod
        self._schedule(pod)
        self._notify(WatchEventType.ADDED, pod)
        yield self.env.timeout(self.POD_START_DELAY)
        if pod.phase is PodPhase.SCHEDULED:  # not deleted meanwhile
            pod.phase = PodPhase.RUNNING
            pod.started_at = self.env.now
            self._notify(WatchEventType.MODIFIED, pod)
        return pod

    def delete_pod(self, name: str) -> Optional[Pod]:
        """Terminate a pod (interrupting its workload process)."""
        pod = self.pods.pop(name, None)
        if pod is None:
            return None
        of_function = self._pods_by_function.get(pod.spec.function)
        if of_function is not None:
            of_function.pop(name, None)
        if pod.node is not None:
            pod.node.pods.pop(pod.name, None)
        pod.phase = PodPhase.TERMINATED
        if pod.process is not None and pod.process.is_alive:
            pod.process.interrupt("pod deleted")
        self._notify(WatchEventType.DELETED, pod)
        return pod

    def patch_pod(self, name: str, **env_updates: str) -> Pod:
        """Update a pod's environment (the Registry's patch operation)."""
        pod = self.pods[name]
        pod.spec.env.update(env_updates)
        self._notify(WatchEventType.MODIFIED, pod)
        return pod

    def pods_on(self, node_name: str) -> List[Pod]:
        return list(self.node(node_name).pods.values())

    def pods_of_function(self, function: str) -> List[Pod]:
        return list(self._pods_by_function.get(function, {}).values())

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, pod: Pod) -> None:
        if not self.nodes:
            raise SchedulingError("cluster has no nodes")
        if pod.spec.node_name:
            try:
                node = self.node(pod.spec.node_name)
            except KeyError as exc:
                raise SchedulingError(str(exc)) from exc
            if not node.ready:
                raise SchedulingError(f"node {node.name!r} is not ready")
        else:
            # Spread by pod count (kube-scheduler's least-allocated flavour),
            # breaking ties round-robin for determinism.
            ready = [n for n in self.nodes.values() if n.ready]
            if not ready:
                raise SchedulingError("no ready node in the cluster")
            ordered = sorted(ready, key=lambda n: (len(n.pods), n.name))
            node = ordered[0]
        pod.node = node
        node.pods[pod.name] = pod
        pod.phase = PodPhase.SCHEDULED

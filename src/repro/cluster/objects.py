"""Cluster object model: nodes, pods, device queries.

A thin Kubernetes: enough of the pod lifecycle (admission → scheduling →
running → termination), label/env metadata and watch events for the
Accelerators Registry to do what the paper describes — intercept function
creation, patch env/volumes/node binding, and migrate instances by
delete-and-recreate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Optional

from ..fpga.board import FPGABoard
from ..fpga.hwspec import NodeSpec
from ..rpc import NetworkHost

_pod_uids = count(1)


@dataclass(frozen=True)
class DeviceQuery:
    """A function's device requirements (Algorithm 1's ``devicequery``)."""

    vendor: str = ""
    platform: str = ""
    accelerator: str = ""  # bitstream name the function needs

    def matches_vendor(self, vendor: str, platform: str) -> bool:
        vendor_ok = not self.vendor or self.vendor in vendor
        platform_ok = not self.platform or self.platform in platform
        return vendor_ok and platform_ok


class PodPhase(enum.Enum):
    PENDING = "Pending"
    SCHEDULED = "Scheduled"
    RUNNING = "Running"
    TERMINATED = "Terminated"
    FAILED = "Failed"


@dataclass
class PodSpec:
    """Desired state of a pod (one serverless function instance)."""

    name: str
    function: str
    device_query: DeviceQuery = field(default_factory=DeviceQuery)
    labels: Dict[str, str] = field(default_factory=dict)
    env: Dict[str, str] = field(default_factory=dict)
    #: Forced node placement ("" = scheduler decides).
    node_name: str = ""
    #: Mount a shared-memory volume towards the local Device Manager.
    shm_volume: bool = False


class Pod:
    """A live pod."""

    def __init__(self, spec: PodSpec):
        self.uid = next(_pod_uids)
        self.spec = spec
        self.phase = PodPhase.PENDING
        self.node: Optional["ClusterNode"] = None
        #: The workload process attached by the serverless runtime.
        self.process: Any = None
        self.created_at: Optional[float] = None
        self.started_at: Optional[float] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        where = self.node.name if self.node else "unscheduled"
        return f"<Pod {self.name} [{self.phase.value}] on {where}>"


class ClusterNode:
    """One machine of the testbed: host, network identity and FPGA board."""

    def __init__(self, spec: NodeSpec, host: NetworkHost,
                 board: Optional[FPGABoard] = None):
        self.spec = spec
        self.host = host
        self.board = board
        self.pods: Dict[str, Pod] = {}
        #: False while the node is failed; the scheduler skips it.
        self.ready = True

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_master(self) -> bool:
        return self.spec.is_master

    def __repr__(self) -> str:
        return f"<ClusterNode {self.name} pods={len(self.pods)}>"


class WatchEventType(enum.Enum):
    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclass(frozen=True)
class WatchEvent:
    """A cluster watch notification."""

    type: WatchEventType
    pod: Pod

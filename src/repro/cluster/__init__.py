"""Kubernetes-model cluster orchestrator and the paper's 3-node testbed."""

from .apiserver import AdmissionHook, Cluster, SchedulingError, Watcher
from .autoscaler import AutoscalerPolicy, NodeAutoscaler
from .objects import (
    ClusterNode,
    DeviceQuery,
    Pod,
    PodPhase,
    PodSpec,
    WatchEvent,
    WatchEventType,
)
from .testbed import Testbed, build_testbed

__all__ = [
    "AdmissionHook",
    "AutoscalerPolicy",
    "NodeAutoscaler",
    "Cluster",
    "ClusterNode",
    "DeviceQuery",
    "Pod",
    "PodPhase",
    "PodSpec",
    "SchedulingError",
    "Testbed",
    "WatchEvent",
    "WatchEventType",
    "Watcher",
    "build_testbed",
]

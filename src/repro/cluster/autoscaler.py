"""F1-style node autoscaling (the paper's stated future work).

"Future work will address the integration with AWS F1 for nodes
autoscaling" — this module provides that integration against the simulated
cloud: a :class:`NodeAutoscaler` watches the fleet's FPGA time utilization
and provisions (or retires) FPGA instances, wiring each new node's board
and Device Manager into the cluster, the Accelerators Registry and the
Remote OpenCL Library's router so subsequently created function instances
can land on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..fpga.hwspec import HOST_I7_6700, NodeSpec, PCIE_GEN3_X8
from ..sim import Environment, Interrupt
from .testbed import Testbed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster ↔ core)
    from ..core.registry.registry import AcceleratorsRegistry
    from ..core.remote_lib.router import PlatformRouter


@dataclass(frozen=True)
class AutoscalerPolicy:
    """When and how to scale the FPGA node pool."""

    #: Scale out when mean fleet utilization exceeds this fraction.
    scale_out_threshold: float = 0.70
    #: Scale in when it drops below this fraction (added nodes only).
    scale_in_threshold: float = 0.15
    #: Utilization averaging window, seconds.
    window: float = 10.0
    #: Evaluation period, seconds.
    interval: float = 5.0
    #: Minimum time between scaling actions, seconds.
    cooldown: float = 30.0
    #: F1 instance provisioning time (request → board usable), seconds.
    boot_delay: float = 45.0
    #: Hard cap on total nodes.
    max_nodes: int = 8


class NodeAutoscaler:
    """Grows/shrinks the FPGA node pool based on fleet utilization."""

    def __init__(
        self,
        env: Environment,
        testbed: Testbed,
        registry: "AcceleratorsRegistry",
        router: "Optional[PlatformRouter]" = None,
        policy: AutoscalerPolicy = AutoscalerPolicy(),
        node_template: Optional[NodeSpec] = None,
    ):
        self.env = env
        self.testbed = testbed
        self.registry = registry
        self.router = router
        self.policy = policy
        self.node_template = node_template
        self.scale_outs = 0
        self.scale_ins = 0
        self.added_nodes: List[str] = []
        self._last_action = -policy.cooldown
        self._next_index = 1
        self._process = env.process(self._run())

    # -- observation -----------------------------------------------------------
    def fleet_utilization(self) -> float:
        """Mean per-device FPGA time utilization over the policy window."""
        gatherer = self.registry.gatherer
        if gatherer is None:
            return 0.0
        devices = self.registry.devices.all()
        if not devices:
            return 0.0
        total = sum(gatherer.utilization(d.name) for d in devices)
        return total / len(devices)

    # -- actions -----------------------------------------------------------------
    def scale_out(self):
        """Process: provision one F1 node and wire it into the system."""
        spec = self._new_node_spec()
        yield self.env.timeout(self.policy.boot_delay)
        manager = self.testbed.add_node(spec)
        self.registry.register_manager(manager)
        if self.router is not None:
            from ..core.remote_lib.router import ManagerAddress

            self.router.add_manager(ManagerAddress.of(manager))
        self.added_nodes.append(spec.name)
        self.scale_outs += 1
        return manager

    def scale_in(self, node_name: str) -> bool:
        """Retire an autoscaled node if no instance is allocated to it."""
        manager_name = f"dm-{node_name}"
        try:
            record = self.registry.devices.get(manager_name)
        except KeyError:
            return False
        if record.instances:
            return False
        if self.testbed.cluster.pods_on(node_name):
            return False
        if not self.registry.deregister_manager(manager_name):
            return False
        manager = self.testbed.managers.pop(manager_name, None)
        if manager is not None:
            manager.stop()
        if self.testbed.scraper is not None:
            self.testbed.scraper.remove_target(manager_name)
        if self.router is not None:
            self.router.remove_manager(manager_name)
        self.testbed.cluster.nodes.pop(node_name, None)
        self.added_nodes.remove(node_name)
        self.scale_ins += 1
        return True

    def stop(self) -> None:
        if self._process.is_alive:
            self._process.interrupt("autoscaler stopped")

    # -- control loop ---------------------------------------------------------
    def _run(self):
        try:
            while True:
                yield self.env.timeout(self.policy.interval)
                utilization = self.fleet_utilization()
                now = self.env.now
                if now - self._last_action < self.policy.cooldown:
                    continue
                node_count = len(self.testbed.cluster.nodes)
                if (utilization > self.policy.scale_out_threshold
                        and node_count < self.policy.max_nodes):
                    self._last_action = now
                    yield from self.scale_out()
                elif (utilization < self.policy.scale_in_threshold
                        and self.added_nodes):
                    if self.scale_in(self.added_nodes[-1]):
                        self._last_action = now
        except Interrupt:
            return

    def _new_node_spec(self) -> NodeSpec:
        while True:
            name = f"F1-{self._next_index}"
            self._next_index += 1
            if name not in self.testbed.cluster.nodes:
                break
        if self.node_template is not None:
            from dataclasses import replace

            return replace(self.node_template, name=name)
        return NodeSpec(name=name, host=HOST_I7_6700, pcie=PCIE_GEN3_X8)

"""Matrix-multiply kernel from the Spector benchmark suite.

The paper uses the best Spector MM design point: one compute unit, 8 work
items per unit, a fully unrolled 16×16 block.  The timing model is
calibrated against Figure 4(c): native RTT 0.45 ms at 16×16 rising to
3.571 s at 4096×4096.  Subtracting the PCIe transfer time of the three
matrices leaves a compute rate of ≈ 19.4 GMAC/s.

Matrices are float32 and may be rectangular (``C[M,N] = A[M,K] @ B[K,N]``);
the paper sweeps square sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .base import AcceleratorKernel, Direction, buffer_arg, scalar_arg

#: float32 elements.
BYTES_PER_ELEMENT = 4

#: Calibrated multiply-accumulate rate (MAC/s), from Fig. 4(c).
MM_MAC_RATE = 19.4e9

#: Fixed kernel launch/drain latency, seconds.
MM_LAUNCH_OVERHEAD = 40e-6


@dataclass(frozen=True)
class SpectorMMConfig:
    """Design-space point used for synthesis (Section IV of the paper)."""

    compute_units: int = 1
    work_items: int = 8
    block: tuple[int, int] = (16, 16)
    unrolled: bool = True


class MatrixMultiplyKernel(AcceleratorKernel):
    """``mm(a, b, c, m, n, k)`` — C[M,N] = A[M,K] · B[K,N] in float32."""

    name = "mm"
    args = (
        buffer_arg("a", Direction.IN),
        buffer_arg("b", Direction.IN),
        buffer_arg("c", Direction.OUT),
        scalar_arg("m"),
        scalar_arg("n"),
        scalar_arg("k"),
    )
    config = SpectorMMConfig()

    def duration(self, args: Mapping[str, object]) -> float:
        m, n, k = (int(args[key]) for key in ("m", "n", "k"))  # type: ignore[arg-type]
        if min(m, n, k) <= 0:
            raise ValueError("matrix dimensions must be positive")
        return MM_LAUNCH_OVERHEAD + (m * n * k) / MM_MAC_RATE

    def compute(self, args: Mapping[str, object]) -> None:
        m, n, k = (int(args[key]) for key in ("m", "n", "k"))  # type: ignore[arg-type]
        a = args["a"].as_array(np.float32, (m, k))  # type: ignore[union-attr]
        b = args["b"].as_array(np.float32, (k, n))  # type: ignore[union-attr]
        c = args["c"].as_array(np.float32, (m, n))  # type: ignore[union-attr]
        c[:, :] = a @ b

    @staticmethod
    def matrix_bytes(rows: int, cols: int) -> int:
        return rows * cols * BYTES_PER_ELEMENT

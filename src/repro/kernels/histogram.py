"""Histogram kernel (Spector benchmark suite).

Bins 32-bit values into ``bins`` buckets (values are taken modulo the bin
count, as in the Spector host which pre-scales its inputs).  The design
processes two samples per cycle with banked on-chip counters.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .base import AcceleratorKernel, Direction, buffer_arg, scalar_arg

#: Samples per second (2 samples/cycle @ 200 MHz).
HISTOGRAM_SAMPLE_RATE = 400e6

#: Fixed launch/drain latency plus the final counter flush, seconds.
HISTOGRAM_LAUNCH_OVERHEAD = 40e-6

#: Maximum bins the banked-counter design supports.
HISTOGRAM_MAX_BINS = 4096


class HistogramKernel(AcceleratorKernel):
    """``hist(values, counts, n, bins)`` — uint32 histogram."""

    name = "hist"
    args = (
        buffer_arg("values", Direction.IN),
        buffer_arg("counts", Direction.OUT),
        scalar_arg("n"),
        scalar_arg("bins"),
    )

    def duration(self, args: Mapping[str, object]) -> float:
        n = int(args["n"])  # type: ignore[arg-type]
        bins = int(args["bins"])  # type: ignore[arg-type]
        if n <= 0:
            raise ValueError("sample count must be positive")
        if not 1 <= bins <= HISTOGRAM_MAX_BINS:
            raise ValueError(f"bins must be in [1, {HISTOGRAM_MAX_BINS}]")
        return HISTOGRAM_LAUNCH_OVERHEAD + n / HISTOGRAM_SAMPLE_RATE

    def compute(self, args: Mapping[str, object]) -> None:
        n = int(args["n"])  # type: ignore[arg-type]
        bins = int(args["bins"])  # type: ignore[arg-type]
        values = args["values"].as_array(np.uint32, (n,))  # type: ignore[union-attr]
        counts = args["counts"].as_array(np.uint32, (bins,))  # type: ignore[union-attr]
        counts[:] = histogram_reference(values, bins)


def histogram_reference(values: np.ndarray, bins: int) -> np.ndarray:
    """Golden model: counts of ``values % bins``."""
    reduced = (values.astype(np.uint64) % bins).astype(np.int64)
    return np.bincount(reduced, minlength=bins).astype(np.uint32)

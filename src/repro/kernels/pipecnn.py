"""PipeCNN kernels: an OpenCL CNN accelerator executed layer by layer.

PipeCNN [18] organises inference as a pipeline of OpenCL kernels —
``mem_rd`` (fetch/reorder), ``conv`` (convolution / fully-connected with
ReLU), ``pool``, ``lrn`` and ``mem_wr`` — which the host enqueues once per
layer, waiting for each layer before launching the next.  This many-kernel,
many-queue structure is exactly why the paper observes a *higher* relative
overhead for PipeCNN under BlastFunction (Table IV): every layer boundary
costs one control round trip.

Timing model calibration: the aggregate AlexNet inference time lands at
≈ 85 ms of device time, consistent with Table IV (Native ≈ 94 ms end-to-end
latency at ≈ 96% utilization for 11.91 rq/s over three boards).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .base import AcceleratorKernel, Direction, buffer_arg, scalar_arg

#: Convolution engine MAC rate (MAC/s).
CONV_MAC_RATE = 12.0e9

#: Fully-connected (memory-bound) MAC rate (MAC/s).
FC_MAC_RATE = 2.2e9

#: Pooling/LRN element-operation rate (ops/s).
POOL_OP_RATE = 2.0e9
LRN_OP_RATE = 2.0e9

#: On-chip reorder bandwidth for mem_rd/mem_wr (bytes/s).
MEM_REORDER_BANDWIDTH = 20.0e9

#: Per-kernel launch overhead (seconds).
PIPECNN_LAUNCH_OVERHEAD = 50e-6

BYTES_PER_VALUE = 4  # float32 activations and weights


class MemReadKernel(AcceleratorKernel):
    """``mem_rd(src, dst, nbytes)`` — fetch/reorder activations."""

    name = "mem_rd"
    args = (
        buffer_arg("src", Direction.IN),
        buffer_arg("dst", Direction.OUT),
        scalar_arg("nbytes"),
    )

    def duration(self, args: Mapping[str, object]) -> float:
        nbytes = int(args["nbytes"])  # type: ignore[arg-type]
        if nbytes < 0:
            raise ValueError("negative size")
        return PIPECNN_LAUNCH_OVERHEAD + nbytes / MEM_REORDER_BANDWIDTH

    def compute(self, args: Mapping[str, object]) -> None:
        nbytes = int(args["nbytes"])  # type: ignore[arg-type]
        src, dst = args["src"], args["dst"]
        dst.write(src.read(nbytes), 0)  # type: ignore[union-attr]


class MemWriteKernel(MemReadKernel):
    """``mem_wr(src, dst, nbytes)`` — write back/reorder results."""

    name = "mem_wr"


class ConvKernel(AcceleratorKernel):
    """``conv(...)`` — grouped 2-D convolution (+bias, +optional ReLU).

    Fully-connected layers run on the same engine as 1×1-output
    convolutions; they hit the memory-bound :data:`FC_MAC_RATE`.
    """

    name = "conv"
    args = (
        buffer_arg("input", Direction.IN),
        buffer_arg("weights", Direction.IN),
        buffer_arg("bias", Direction.IN),
        buffer_arg("output", Direction.OUT),
        scalar_arg("in_channels"),
        scalar_arg("in_size"),
        scalar_arg("out_channels"),
        scalar_arg("out_size"),
        scalar_arg("kernel"),
        scalar_arg("stride"),
        scalar_arg("pad"),
        scalar_arg("groups"),
        scalar_arg("relu"),
    )

    @staticmethod
    def _geometry(args: Mapping[str, object]):
        keys = ("in_channels", "in_size", "out_channels", "out_size",
                "kernel", "stride", "pad", "groups", "relu")
        return tuple(int(args[key]) for key in keys)  # type: ignore[arg-type]

    def duration(self, args: Mapping[str, object]) -> float:
        (in_c, _in_s, out_c, out_s, k, _s, _p, groups, _relu) = \
            self._geometry(args)
        macs = out_s * out_s * out_c * k * k * (in_c // groups)
        rate = FC_MAC_RATE if out_s == 1 else CONV_MAC_RATE
        return PIPECNN_LAUNCH_OVERHEAD + macs / rate

    def compute(self, args: Mapping[str, object]) -> None:
        (in_c, in_s, out_c, out_s, k, stride, pad, groups, relu) = \
            self._geometry(args)
        x = args["input"].as_array(np.float32, (in_c, in_s, in_s))  # type: ignore[union-attr]
        w = args["weights"].as_array(  # type: ignore[union-attr]
            np.float32, (out_c, in_c // groups, k, k)
        )
        b = args["bias"].as_array(np.float32, (out_c,))  # type: ignore[union-attr]
        out = args["output"].as_array(np.float32, (out_c, out_s, out_s))  # type: ignore[union-attr]
        out[:, :, :] = conv2d_reference(
            x, w, b, stride=stride, pad=pad, groups=groups, relu=bool(relu)
        )


class PoolKernel(AcceleratorKernel):
    """``pool(input, output, channels, in_size, out_size, kernel, stride)``."""

    name = "pool"
    args = (
        buffer_arg("input", Direction.IN),
        buffer_arg("output", Direction.OUT),
        scalar_arg("channels"),
        scalar_arg("in_size"),
        scalar_arg("out_size"),
        scalar_arg("kernel"),
        scalar_arg("stride"),
    )

    def duration(self, args: Mapping[str, object]) -> float:
        channels = int(args["channels"])  # type: ignore[arg-type]
        out_size = int(args["out_size"])  # type: ignore[arg-type]
        kernel = int(args["kernel"])  # type: ignore[arg-type]
        ops = channels * out_size * out_size * kernel * kernel
        return PIPECNN_LAUNCH_OVERHEAD + ops / POOL_OP_RATE

    def compute(self, args: Mapping[str, object]) -> None:
        channels = int(args["channels"])  # type: ignore[arg-type]
        in_size = int(args["in_size"])  # type: ignore[arg-type]
        out_size = int(args["out_size"])  # type: ignore[arg-type]
        kernel = int(args["kernel"])  # type: ignore[arg-type]
        stride = int(args["stride"])  # type: ignore[arg-type]
        x = args["input"].as_array(np.float32, (channels, in_size, in_size))  # type: ignore[union-attr]
        out = args["output"].as_array(  # type: ignore[union-attr]
            np.float32, (channels, out_size, out_size)
        )
        out[:, :, :] = maxpool_reference(x, kernel, stride)


class LRNKernel(AcceleratorKernel):
    """``lrn(input, output, channels, size, local_size, alpha, beta, k)``."""

    name = "lrn"
    args = (
        buffer_arg("input", Direction.IN),
        buffer_arg("output", Direction.OUT),
        scalar_arg("channels"),
        scalar_arg("size"),
        scalar_arg("local_size"),
        scalar_arg("alpha"),
        scalar_arg("beta"),
        scalar_arg("k"),
    )

    def duration(self, args: Mapping[str, object]) -> float:
        channels = int(args["channels"])  # type: ignore[arg-type]
        size = int(args["size"])  # type: ignore[arg-type]
        local_size = int(args["local_size"])  # type: ignore[arg-type]
        ops = channels * size * size * local_size
        return PIPECNN_LAUNCH_OVERHEAD + ops / LRN_OP_RATE

    def compute(self, args: Mapping[str, object]) -> None:
        channels = int(args["channels"])  # type: ignore[arg-type]
        size = int(args["size"])  # type: ignore[arg-type]
        local_size = int(args["local_size"])  # type: ignore[arg-type]
        alpha = float(args["alpha"])  # type: ignore[arg-type]
        beta = float(args["beta"])  # type: ignore[arg-type]
        k = float(args["k"])  # type: ignore[arg-type]
        x = args["input"].as_array(np.float32, (channels, size, size))  # type: ignore[union-attr]
        out = args["output"].as_array(np.float32, (channels, size, size))  # type: ignore[union-attr]
        out[:, :, :] = lrn_reference(x, local_size, alpha, beta, k)


# ---------------------------------------------------------------------------
# Golden reference implementations (shared with the test suite)
# ---------------------------------------------------------------------------

def conv2d_reference(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray,
    stride: int,
    pad: int,
    groups: int = 1,
    relu: bool = True,
) -> np.ndarray:
    """Grouped 2-D convolution via im2col; float32 in, float32 out."""
    in_c, in_h, in_w = x.shape
    out_c, in_c_per_group, k, _ = w.shape
    if in_c % groups or out_c % groups:
        raise ValueError("channels must divide evenly into groups")
    if in_c // groups != in_c_per_group:
        raise ValueError("weight shape inconsistent with groups")

    padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    out_h = (in_h + 2 * pad - k) // stride + 1
    out_w = (in_w + 2 * pad - k) // stride + 1
    out = np.empty((out_c, out_h, out_w), dtype=np.float32)

    out_c_per_group = out_c // groups
    for g in range(groups):
        xg = padded[g * in_c_per_group:(g + 1) * in_c_per_group]
        # im2col: (in_c_per_group*k*k, out_h*out_w)
        cols = np.empty((in_c_per_group * k * k, out_h * out_w),
                        dtype=np.float32)
        idx = 0
        for c in range(in_c_per_group):
            for dy in range(k):
                for dx in range(k):
                    patch = xg[
                        c,
                        dy:dy + out_h * stride:stride,
                        dx:dx + out_w * stride:stride,
                    ]
                    cols[idx] = patch.reshape(-1)
                    idx += 1
        wg = w[g * out_c_per_group:(g + 1) * out_c_per_group].reshape(
            out_c_per_group, -1
        )
        og = wg @ cols + b[
            g * out_c_per_group:(g + 1) * out_c_per_group, None
        ]
        out[g * out_c_per_group:(g + 1) * out_c_per_group] = og.reshape(
            out_c_per_group, out_h, out_w
        )
    if relu:
        np.maximum(out, 0.0, out=out)
    return out


def maxpool_reference(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Max pooling over square windows (valid padding)."""
    channels, in_h, in_w = x.shape
    out_h = (in_h - kernel) // stride + 1
    out_w = (in_w - kernel) // stride + 1
    out = np.full((channels, out_h, out_w), -np.inf, dtype=np.float32)
    for dy in range(kernel):
        for dx in range(kernel):
            window = x[
                :,
                dy:dy + out_h * stride:stride,
                dx:dx + out_w * stride:stride,
            ]
            np.maximum(out, window, out=out)
    return out


def lrn_reference(
    x: np.ndarray, local_size: int, alpha: float, beta: float, k: float
) -> np.ndarray:
    """AlexNet cross-channel local response normalisation."""
    channels = x.shape[0]
    squared = x.astype(np.float64) ** 2
    half = local_size // 2
    scale = np.full_like(squared, k)
    for c in range(channels):
        lo = max(0, c - half)
        hi = min(channels, c + half + 1)
        scale[c] += (alpha / local_size) * squared[lo:hi].sum(axis=0)
    return (x / scale ** beta).astype(np.float32)


def pipecnn_kernels() -> list[AcceleratorKernel]:
    """The full PipeCNN kernel set, as packaged in its bitstream."""
    return [
        MemReadKernel(),
        ConvKernel(),
        PoolKernel(),
        LRNKernel(),
        MemWriteKernel(),
    ]

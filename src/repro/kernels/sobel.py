"""Sobel edge detector from the Spector benchmark suite.

The paper synthesizes the Spector Sobel operator with the configuration that
gives the best latency: 32×8 blocks, 4×1 window, no SIMD, a single compute
unit.  The timing model is calibrated against Figure 4(b): the native RTT is
0.27 ms for a 10×10 image and 14.53 ms for 1920×1080 (≈ 8 MB written and
read), implying a streaming throughput of ≈ 175 Mpixel/s for the kernel
portion once the PCIe transfer time is subtracted.

Pixels are 32-bit (as in Spector), so a W×H image moves ``4·W·H`` bytes in
each direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .base import AcceleratorKernel, Direction, buffer_arg, scalar_arg

#: Bytes per pixel on the wire and in device memory.
BYTES_PER_PIXEL = 4

#: Calibrated kernel throughput (pixels/second), from Fig. 4(b).
SOBEL_THROUGHPUT = 175.4e6

#: Fixed kernel launch/drain latency, seconds.
SOBEL_LAUNCH_OVERHEAD = 30e-6

#: Saturation ceiling of the 32-bit magnitude output.
_MAX_MAGNITUDE = np.uint32(0xFFFFFFFF)

_GX = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.int64)
_GY = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.int64)


@dataclass(frozen=True)
class SpectorSobelConfig:
    """Design-space point used for synthesis (Section IV of the paper)."""

    block: tuple[int, int] = (32, 8)
    window: tuple[int, int] = (4, 1)
    simd: int = 1
    compute_units: int = 1


class SobelKernel(AcceleratorKernel):
    """``sobel(in_img, out_img, width, height)`` — 3×3 gradient magnitude."""

    name = "sobel"
    args = (
        buffer_arg("in_img", Direction.IN),
        buffer_arg("out_img", Direction.OUT),
        scalar_arg("width"),
        scalar_arg("height"),
    )
    config = SpectorSobelConfig()

    def duration(self, args: Mapping[str, object]) -> float:
        width = int(args["width"])  # type: ignore[arg-type]
        height = int(args["height"])  # type: ignore[arg-type]
        if width <= 0 or height <= 0:
            raise ValueError("image dimensions must be positive")
        return SOBEL_LAUNCH_OVERHEAD + (width * height) / SOBEL_THROUGHPUT

    def compute(self, args: Mapping[str, object]) -> None:
        width = int(args["width"])  # type: ignore[arg-type]
        height = int(args["height"])  # type: ignore[arg-type]
        in_buf = args["in_img"]
        out_buf = args["out_img"]
        image = in_buf.as_array(np.uint32, (height, width)).astype(np.int64)  # type: ignore[union-attr]
        magnitude = sobel_reference(image)
        out = out_buf.as_array(np.uint32, (height, width))  # type: ignore[union-attr]
        out[:, :] = magnitude

    @staticmethod
    def image_bytes(width: int, height: int) -> int:
        """Size of one image transfer (one direction)."""
        return width * height * BYTES_PER_PIXEL


def sobel_reference(image: np.ndarray) -> np.ndarray:
    """Golden-model Sobel: |gx| + |gy| with zero borders, saturating.

    Matches the Spector kernel semantics: interior pixels get the L1
    gradient magnitude; the one-pixel border is zero.
    """
    if image.ndim != 2:
        raise ValueError("expected a 2-D grayscale image")
    image = image.astype(np.int64)
    height, width = image.shape
    result = np.zeros((height, width), dtype=np.int64)
    if height >= 3 and width >= 3:
        gx = np.zeros((height - 2, width - 2), dtype=np.int64)
        gy = np.zeros((height - 2, width - 2), dtype=np.int64)
        for dy in range(3):
            for dx in range(3):
                window = image[dy:dy + height - 2, dx:dx + width - 2]
                gx += _GX[dy, dx] * window
                gy += _GY[dy, dx] * window
        result[1:-1, 1:-1] = np.abs(gx) + np.abs(gy)
    return np.minimum(result, int(_MAX_MAGNITUDE)).astype(np.uint32)

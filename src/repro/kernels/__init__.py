"""Accelerated cloud functions used in the paper's evaluation.

Three accelerators, as in Section IV:

* :class:`SobelKernel` — Spector Sobel edge detector (32×8 blocks, 4×1
  window, no SIMD, 1 compute unit);
* :class:`MatrixMultiplyKernel` — Spector MM (1 CU, 8 work items, fully
  unrolled 16×16 block);
* PipeCNN (``mem_rd``/``conv``/``pool``/``lrn``/``mem_wr``) configured for
  AlexNet.

Each kernel couples a functional NumPy model (testable against golden
references) with a latency model calibrated to Figure 4 of the paper.
"""

from .alexnet import (
    INPUT_CHANNELS,
    INPUT_SIZE,
    NUM_CLASSES,
    ConvSpec,
    LayerSpec,
    LRNSpec,
    PoolSpec,
    alexnet_layers,
    total_macs,
)
from .fir import FIRKernel, fir_reference
from .histogram import HistogramKernel, histogram_reference
from .base import (
    AcceleratorKernel,
    ArgKind,
    Direction,
    KernelArgSpec,
    KernelArgumentError,
    buffer_arg,
    scalar_arg,
)
from .mm import MatrixMultiplyKernel, SpectorMMConfig
from .pipecnn import (
    ConvKernel,
    LRNKernel,
    MemReadKernel,
    MemWriteKernel,
    PoolKernel,
    conv2d_reference,
    lrn_reference,
    maxpool_reference,
    pipecnn_kernels,
)
from .sobel import SobelKernel, SpectorSobelConfig, sobel_reference

__all__ = [
    "INPUT_CHANNELS",
    "INPUT_SIZE",
    "NUM_CLASSES",
    "AcceleratorKernel",
    "ArgKind",
    "ConvKernel",
    "ConvSpec",
    "Direction",
    "FIRKernel",
    "HistogramKernel",
    "fir_reference",
    "histogram_reference",
    "KernelArgSpec",
    "KernelArgumentError",
    "LRNKernel",
    "LRNSpec",
    "LayerSpec",
    "MatrixMultiplyKernel",
    "MemReadKernel",
    "MemWriteKernel",
    "PoolKernel",
    "PoolSpec",
    "SobelKernel",
    "SpectorMMConfig",
    "SpectorSobelConfig",
    "alexnet_layers",
    "buffer_arg",
    "conv2d_reference",
    "lrn_reference",
    "maxpool_reference",
    "pipecnn_kernels",
    "scalar_arg",
    "sobel_reference",
    "total_macs",
]

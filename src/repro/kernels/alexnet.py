"""AlexNet network description for the PipeCNN accelerator.

PipeCNN executes CNNs layer by layer: for each layer the host enqueues the
``mem_rd`` (fetch/reorder), ``conv`` (convolution or fully-connected),
optionally ``pool``/``lrn``, and ``mem_wr`` kernels, then waits for the
layer to finish before launching the next one.  This module describes the
AlexNet topology the paper synthesized ("we synthesized PipeCNN with AlexNet
as in [18]") in a form both the functional model and the serverless
application can consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ConvSpec:
    """A convolution (or FC-as-convolution) stage."""

    in_channels: int
    in_size: int           # square spatial input (after padding applied below)
    out_channels: int
    out_size: int          # square spatial output
    kernel: int
    stride: int
    pad: int
    groups: int = 1
    relu: bool = True

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference of this stage."""
        return (
            self.out_size * self.out_size * self.out_channels
            * self.kernel * self.kernel * (self.in_channels // self.groups)
        )

    @property
    def is_fully_connected(self) -> bool:
        return self.out_size == 1

    @property
    def weight_count(self) -> int:
        return (
            self.out_channels * (self.in_channels // self.groups)
            * self.kernel * self.kernel
        )

    def __post_init__(self) -> None:
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError("channels must divide evenly into groups")
        expected = (self.in_size + 2 * self.pad - self.kernel) // self.stride + 1
        if expected != self.out_size:
            raise ValueError(
                f"inconsistent geometry: expected out_size {expected}, "
                f"declared {self.out_size}"
            )


@dataclass(frozen=True)
class PoolSpec:
    """A max-pooling stage."""

    channels: int
    in_size: int
    out_size: int
    kernel: int
    stride: int

    @property
    def ops(self) -> int:
        return self.out_size * self.out_size * self.channels * self.kernel ** 2

    def __post_init__(self) -> None:
        expected = (self.in_size - self.kernel) // self.stride + 1
        if expected != self.out_size:
            raise ValueError(
                f"inconsistent pooling geometry: expected {expected}, "
                f"declared {self.out_size}"
            )


@dataclass(frozen=True)
class LRNSpec:
    """Local response normalisation across channels."""

    channels: int
    size: int              # square spatial size
    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 1.0

    @property
    def ops(self) -> int:
        return self.size * self.size * self.channels * self.local_size


@dataclass(frozen=True)
class LayerSpec:
    """One PipeCNN *layer invocation*: conv plus optional pool/lrn."""

    name: str
    conv: ConvSpec
    pool: Optional[PoolSpec] = None
    lrn: Optional[LRNSpec] = None

    @property
    def output_channels(self) -> int:
        return self.conv.out_channels

    @property
    def output_size(self) -> int:
        if self.pool is not None:
            return self.pool.out_size
        return self.conv.out_size

    @property
    def output_count(self) -> int:
        return self.output_channels * self.output_size ** 2


def alexnet_layers() -> List[LayerSpec]:
    """The 8 AlexNet layer invocations as configured in PipeCNN."""
    return [
        LayerSpec(
            "conv1",
            ConvSpec(3, 227, 96, 55, kernel=11, stride=4, pad=0),
            pool=PoolSpec(96, 55, 27, kernel=3, stride=2),
            lrn=LRNSpec(96, 27),
        ),
        LayerSpec(
            "conv2",
            ConvSpec(96, 27, 256, 27, kernel=5, stride=1, pad=2, groups=2),
            pool=PoolSpec(256, 27, 13, kernel=3, stride=2),
            lrn=LRNSpec(256, 13),
        ),
        LayerSpec(
            "conv3",
            ConvSpec(256, 13, 384, 13, kernel=3, stride=1, pad=1),
        ),
        LayerSpec(
            "conv4",
            ConvSpec(384, 13, 384, 13, kernel=3, stride=1, pad=1, groups=2),
        ),
        LayerSpec(
            "conv5",
            ConvSpec(384, 13, 256, 13, kernel=3, stride=1, pad=1, groups=2),
            pool=PoolSpec(256, 13, 6, kernel=3, stride=2),
        ),
        LayerSpec(
            "fc6",
            ConvSpec(256, 6, 4096, 1, kernel=6, stride=1, pad=0),
        ),
        LayerSpec(
            "fc7",
            ConvSpec(4096, 1, 4096, 1, kernel=1, stride=1, pad=0),
        ),
        LayerSpec(
            "fc8",
            ConvSpec(4096, 1, 1000, 1, kernel=1, stride=1, pad=0, relu=False),
        ),
    ]


def total_macs(layers: Optional[List[LayerSpec]] = None) -> int:
    """Total multiply-accumulates for one inference."""
    if layers is None:
        layers = alexnet_layers()
    return sum(layer.conv.macs for layer in layers)


#: Input image geometry expected by AlexNet.
INPUT_CHANNELS = 3
INPUT_SIZE = 227
NUM_CLASSES = 1000

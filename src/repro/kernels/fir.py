"""FIR filter kernel (Spector benchmark suite).

A causal single-rate FIR: ``y[i] = Σ_j c[j]·x[i-j]`` with zero history
before the first sample.  The synthesized design streams one sample per
cycle with the tap loop fully unrolled, so device time is dominated by the
sample count, not the tap count (up to the design's maximum taps).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .base import AcceleratorKernel, Direction, buffer_arg, scalar_arg

#: Samples per second the pipeline sustains (1 sample/cycle @ 200 MHz).
FIR_SAMPLE_RATE = 200e6

#: Fixed launch/drain latency, seconds.
FIR_LAUNCH_OVERHEAD = 30e-6

#: Maximum taps the unrolled design supports.
FIR_MAX_TAPS = 128


class FIRKernel(AcceleratorKernel):
    """``fir(signal, coeffs, output, n, taps)`` — float32 causal FIR."""

    name = "fir"
    args = (
        buffer_arg("signal", Direction.IN),
        buffer_arg("coeffs", Direction.IN),
        buffer_arg("output", Direction.OUT),
        scalar_arg("n"),
        scalar_arg("taps"),
    )

    def duration(self, args: Mapping[str, object]) -> float:
        n = int(args["n"])  # type: ignore[arg-type]
        taps = int(args["taps"])  # type: ignore[arg-type]
        if n <= 0:
            raise ValueError("sample count must be positive")
        if not 1 <= taps <= FIR_MAX_TAPS:
            raise ValueError(f"taps must be in [1, {FIR_MAX_TAPS}]")
        return FIR_LAUNCH_OVERHEAD + n / FIR_SAMPLE_RATE

    def compute(self, args: Mapping[str, object]) -> None:
        n = int(args["n"])  # type: ignore[arg-type]
        taps = int(args["taps"])  # type: ignore[arg-type]
        signal = args["signal"].as_array(np.float32, (n,))  # type: ignore[union-attr]
        coeffs = args["coeffs"].as_array(np.float32, (taps,))  # type: ignore[union-attr]
        out = args["output"].as_array(np.float32, (n,))  # type: ignore[union-attr]
        out[:] = fir_reference(signal, coeffs)


def fir_reference(signal: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """Golden model: causal FIR with zero initial history."""
    full = np.convolve(signal.astype(np.float64),
                       coeffs.astype(np.float64))
    return full[: len(signal)].astype(np.float32)

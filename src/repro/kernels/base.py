"""Accelerator kernel abstraction.

A *kernel* in this reproduction is the pair the paper's bitstreams provide:

* a **latency model** — how long the synthesized accelerator takes on the
  FPGA for given argument sizes (calibrated against Figure 4 of the paper);
* a **functional model** — the actual computation, in NumPy, operating on
  device buffers, so correctness is testable against golden references.

Kernels are packaged into :class:`~repro.fpga.bitstream.Bitstream` objects
and executed by :class:`~repro.fpga.board.FPGABoard`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fpga ↔ kernels)
    from ..fpga.ddr import DeviceBuffer


class ArgKind(enum.Enum):
    """How an argument is passed to the kernel."""

    GLOBAL_BUFFER = "global_buffer"
    SCALAR = "scalar"


class Direction(enum.Enum):
    """Data-flow direction of a buffer argument."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


@dataclass(frozen=True)
class KernelArgSpec:
    """Declaration of one kernel argument (mirrors the .cl signature)."""

    name: str
    kind: ArgKind
    direction: Direction = Direction.IN

    def __post_init__(self) -> None:
        if self.kind is ArgKind.SCALAR and self.direction is not Direction.IN:
            raise ValueError("scalar arguments are input-only")


class KernelArgumentError(ValueError):
    """Bad kernel arguments (maps to CL_INVALID_KERNEL_ARGS)."""


class AcceleratorKernel(abc.ABC):
    """Base class for all synthesized accelerators.

    Subclasses declare ``name`` and ``args`` and implement
    :meth:`duration` (timing model) and :meth:`compute` (functional model).
    """

    #: OpenCL kernel name as it appears in the bitstream.
    name: str = ""
    #: Argument schema, in clSetKernelArg index order.
    args: Tuple[KernelArgSpec, ...] = ()

    def resolve_args(self, values: Sequence[Any]) -> Dict[str, Any]:
        """Validate positional argument ``values`` against the schema.

        Returns a name→value mapping.  Buffer arguments must be
        :class:`DeviceBuffer`, scalars must be numbers.
        """
        from ..fpga.ddr import DeviceBuffer  # deferred: breaks import cycle

        if len(values) != len(self.args):
            raise KernelArgumentError(
                f"{self.name} expects {len(self.args)} args, got {len(values)}"
            )
        resolved: Dict[str, Any] = {}
        for spec, value in zip(self.args, values):
            if spec.kind is ArgKind.GLOBAL_BUFFER:
                if not isinstance(value, DeviceBuffer):
                    raise KernelArgumentError(
                        f"arg {spec.name!r} of {self.name} must be a device "
                        f"buffer, got {type(value).__name__}"
                    )
            else:
                if not isinstance(value, (int, float)):
                    raise KernelArgumentError(
                        f"arg {spec.name!r} of {self.name} must be a scalar, "
                        f"got {type(value).__name__}"
                    )
            resolved[spec.name] = value
        return resolved

    @abc.abstractmethod
    def duration(self, args: Mapping[str, Any]) -> float:
        """Execution time on the FPGA, in seconds, for resolved ``args``."""

    @abc.abstractmethod
    def compute(self, args: Mapping[str, Any]) -> None:
        """Run the computation, writing results into the output buffers."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def buffer_arg(name: str, direction: Direction = Direction.IN) -> KernelArgSpec:
    """Shorthand for a global-memory buffer argument."""
    return KernelArgSpec(name, ArgKind.GLOBAL_BUFFER, direction)


def scalar_arg(name: str) -> KernelArgSpec:
    """Shorthand for a scalar argument."""
    return KernelArgSpec(name, ArgKind.SCALAR)

"""Tracer adapters: hook a Tracer into live components.

Each ``attach_*`` function subscribes to a component's existing listener
hooks; no component logic changes.  Attach before the workload runs.
"""

from __future__ import annotations

from ..core.device_manager.manager import DeviceManager
from ..core.device_manager.tasks import Operation, Task
from ..fpga.board import FPGABoard
from ..serverless.gateway import Gateway
from .tracer import Tracer


def attach_board(tracer: Tracer, board: FPGABoard) -> None:
    """Trace every busy interval of a board (dma/kernel/reconfigure)."""

    def on_busy(seconds: float, activity: str) -> None:
        now = tracer.env.now
        tracer.span(activity, activity, board.name, now - seconds, now)

    board.add_busy_listener(on_busy)


def attach_manager(tracer: Tracer, manager: DeviceManager) -> None:
    """Trace a Device Manager's operations and tasks."""

    def on_op(operation: Operation) -> None:
        if operation.started_at is None or operation.finished_at is None:
            return
        tracer.span(
            f"op:{operation.type.value}",
            f"{operation.type.value}#{operation.tag}",
            manager.name,
            operation.started_at,
            operation.finished_at,
            client=operation.client,
            nbytes=operation.nbytes,
        )

    def on_task(task: Task) -> None:
        if task.started_at is None or task.finished_at is None:
            return
        tracer.span(
            "task", f"task#{task.id}", manager.name,
            task.started_at, task.finished_at,
            client=task.client, ops=len(task.operations),
            queued=(task.started_at - task.submitted_at
                    if task.submitted_at is not None else 0.0),
        )

    manager.op_listeners.append(on_op)
    manager.task_listeners.append(on_task)


def attach_gateway(tracer: Tracer, gateway: Gateway) -> None:
    """Trace request lifecycles through the gateway.

    Wraps :meth:`Gateway.invoke`, so attach before handing the gateway to
    load generators.
    """
    original_invoke = gateway.invoke

    def traced_invoke(function_name, payload=None):
        start = tracer.env.now
        try:
            latency, result = yield from original_invoke(
                function_name, payload
            )
        except Exception:
            tracer.instant("request-error", function_name, "gateway")
            raise
        tracer.span("request", function_name, "gateway", start,
                    latency=latency)
        return latency, result

    gateway.invoke = traced_invoke


def attach_testbed(tracer: Tracer, testbed) -> None:
    """Trace every board and Device Manager of a testbed."""
    for node in testbed.cluster.nodes.values():
        if node.board is not None:
            attach_board(tracer, node.board)
    for manager in testbed.managers.values():
        attach_manager(tracer, manager)

"""Execution tracing and Chrome/Perfetto export for simulation runs."""

from .attach import (
    attach_board,
    attach_gateway,
    attach_manager,
    attach_testbed,
)
from .chrome import to_chrome_events, to_chrome_json, write_chrome_trace
from .tracer import Instant, Span, Tracer

__all__ = [
    "Instant",
    "Span",
    "Tracer",
    "attach_board",
    "attach_gateway",
    "attach_manager",
    "attach_testbed",
    "to_chrome_events",
    "to_chrome_json",
    "write_chrome_trace",
]

"""Chrome/Perfetto trace export.

Converts a :class:`~repro.trace.tracer.Tracer`'s spans and instants into
the Trace Event JSON format, loadable in ``chrome://tracing`` or
https://ui.perfetto.dev — one process row per actor, one thread row per
category.
"""

from __future__ import annotations

import json
from typing import Dict

from .tracer import Tracer

#: Simulated seconds → trace microseconds.
_US = 1e6


def to_chrome_events(tracer: Tracer) -> list:
    """Build the ``traceEvents`` list."""
    actor_pids: Dict[str, int] = {}
    category_tids: Dict[tuple, int] = {}

    def pid_of(actor: str) -> int:
        return actor_pids.setdefault(actor, len(actor_pids) + 1)

    def tid_of(actor: str, category: str) -> int:
        key = (actor, category)
        return category_tids.setdefault(key, len(category_tids) + 1)

    events = []
    for actor in sorted({s.actor for s in tracer.spans}
                        | {i.actor for i in tracer.instants}):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid_of(actor),
            "args": {"name": actor},
        })
    for span in tracer.spans:
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "pid": pid_of(span.actor),
            "tid": tid_of(span.actor, span.category),
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "args": dict(span.args),
        })
    for instant in tracer.instants:
        events.append({
            "ph": "i",
            "name": instant.name,
            "cat": instant.category,
            "pid": pid_of(instant.actor),
            "tid": tid_of(instant.actor, instant.category),
            "ts": instant.time * _US,
            "s": "t",
            "args": dict(instant.args),
        })
    return events


def to_chrome_json(tracer: Tracer, indent: int | None = None) -> str:
    """Serialize the full trace document."""
    return json.dumps({"traceEvents": to_chrome_events(tracer),
                       "displayTimeUnit": "ms"}, indent=indent)


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write the trace to ``path`` (open in chrome://tracing / Perfetto)."""
    with open(path, "w") as f:
        f.write(to_chrome_json(tracer))

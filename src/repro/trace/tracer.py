"""Execution tracing: spans, counters and analysis over a simulation run.

A :class:`Tracer` collects *spans* (named intervals attributed to an actor,
e.g. ``fpga-B / kernel`` or ``dm-A / task``) and *instants*.  Adapters in
:mod:`repro.trace.attach` hook the tracer into boards, Device Managers and
gateways without touching their logic; :mod:`repro.trace.chrome` exports
everything to the Chrome ``about://tracing`` / Perfetto JSON format.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim import Environment


@dataclass(frozen=True)
class Span:
    """One traced interval."""

    category: str        # e.g. "kernel", "dma", "task", "request"
    name: str            # e.g. "sobel", "task#42", "sobel-1"
    actor: str           # resource/track, e.g. "fpga-B", "dm-A"
    start: float
    end: float
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def arg(self, key: str, default: Any = None) -> Any:
        for k, v in self.args:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class Instant:
    """One traced point event."""

    category: str
    name: str
    actor: str
    time: float
    args: Tuple[Tuple[str, Any], ...] = ()


class Tracer:
    """Collects spans and instants during a simulation."""

    def __init__(self, env: Environment):
        self.env = env
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.enabled = True

    # -- recording ---------------------------------------------------------
    def span(self, category: str, name: str, actor: str, start: float,
             end: Optional[float] = None, **args: Any) -> None:
        """Record a completed interval (``end`` defaults to *now*)."""
        if not self.enabled:
            return
        if end is None:
            end = self.env.now
        if end < start:
            raise ValueError(f"span ends before it starts ({start}→{end})")
        self.spans.append(Span(category, name, actor, start, end,
                               tuple(sorted(args.items()))))

    def instant(self, category: str, name: str, actor: str,
                time: Optional[float] = None, **args: Any) -> None:
        """Record a point event (``time`` defaults to *now*)."""
        if not self.enabled:
            return
        if time is None:
            time = self.env.now
        self.instants.append(Instant(category, name, actor, time,
                                     tuple(sorted(args.items()))))

    # -- queries ---------------------------------------------------------------
    def by_category(self, category: str) -> List[Span]:
        return [span for span in self.spans if span.category == category]

    def by_actor(self, actor: str) -> List[Span]:
        return [span for span in self.spans if span.actor == actor]

    def actors(self) -> List[str]:
        return sorted({span.actor for span in self.spans}
                      | {inst.actor for inst in self.instants})

    def total_time(self, category: str, actor: Optional[str] = None) -> float:
        """Sum of span durations in a category (optionally one actor)."""
        return sum(
            span.duration
            for span in self.spans
            if span.category == category
            and (actor is None or span.actor == actor)
        )

    def busy_fraction(self, actor: str, start: float, end: float,
                      categories: Iterable[str] = ("kernel", "dma")) -> float:
        """Fraction of [start, end) the actor spent in the categories.

        Overlapping spans are merged, so the result is a true occupancy
        in [0, 1] even when bookkeeping double-counts.
        """
        if end <= start:
            raise ValueError("empty window")
        wanted = set(categories)
        intervals = sorted(
            (max(span.start, start), min(span.end, end))
            for span in self.spans
            if span.actor == actor and span.category in wanted
            and span.end > start and span.start < end
        )
        busy = 0.0
        cursor = start
        for s, e in intervals:
            if e <= cursor:
                continue
            busy += e - max(s, cursor)
            cursor = max(cursor, e)
        return busy / (end - start)

    def timeline(self, actor: str, resolution: float,
                 categories: Iterable[str] = ("kernel", "dma"),
                 start: float = 0.0,
                 end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Busy fraction per time bucket: [(bucket_start, fraction), ...]."""
        if end is None:
            end = self.env.now
        buckets = []
        cursor = start
        while cursor < end:
            upper = min(cursor + resolution, end)
            buckets.append(
                (cursor, self.busy_fraction(actor, cursor, upper,
                                            categories))
            )
            cursor = upper
        return buckets

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

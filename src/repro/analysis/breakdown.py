"""Request latency decomposition from a trace.

Splits each function's mean end-to-end latency into the stages the system
architecture defines:

* **queue wait** — time tasks sat in the Device Manager's central queue;
* **device time** — FPGA occupancy (transfers + kernels) of the tasks;
* **overhead** — everything else: gateway, host code, control round trips
  and data-plane copies.

Works from the spans recorded by :mod:`repro.trace.attach`
(``attach_gateway`` + ``attach_manager``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..trace.tracer import Tracer

#: Default pod-name → function-name mapping ("sobel-1-i2" → "sobel-1").
_INSTANCE_SUFFIX = re.compile(r"-i\d+$")


def default_pod_to_function(pod_name: str) -> str:
    return _INSTANCE_SUFFIX.sub("", pod_name)


@dataclass(frozen=True)
class FunctionBreakdown:
    """Mean per-request latency decomposition of one function."""

    function: str
    requests: int
    mean_latency: float
    mean_queue_wait: float
    mean_device_time: float

    @property
    def mean_overhead(self) -> float:
        """Latency not explained by queueing or device occupancy."""
        return max(
            0.0,
            self.mean_latency - self.mean_queue_wait - self.mean_device_time,
        )

    def as_row(self) -> List:
        return [
            self.function, self.requests,
            self.mean_latency * 1e3,
            self.mean_queue_wait * 1e3,
            self.mean_device_time * 1e3,
            self.mean_overhead * 1e3,
        ]


def request_breakdown(
    tracer: Tracer,
    pod_to_function: Callable[[str], str] = default_pod_to_function,
) -> Dict[str, FunctionBreakdown]:
    """Aggregate request/task spans into per-function breakdowns."""
    request_spans = tracer.by_category("request")
    task_spans = tracer.by_category("task")

    latencies: Dict[str, List[float]] = {}
    for span in request_spans:
        latencies.setdefault(span.name, []).append(
            span.arg("latency", span.duration)
        )

    queue_waits: Dict[str, List[float]] = {}
    device_times: Dict[str, List[float]] = {}
    for span in task_spans:
        client = span.arg("client", "")
        function = pod_to_function(client)
        queue_waits.setdefault(function, []).append(span.arg("queued", 0.0))
        device_times.setdefault(function, []).append(span.duration)

    breakdowns: Dict[str, FunctionBreakdown] = {}
    for function, values in latencies.items():
        n_requests = len(values)
        waits = queue_waits.get(function, [])
        devices = device_times.get(function, [])
        # Tasks-per-request may exceed 1 (e.g. AlexNet layers): scale the
        # per-task means by tasks/request so the stages sum per request.
        tasks_per_request = (
            len(devices) / n_requests if n_requests and devices else 0.0
        )
        breakdowns[function] = FunctionBreakdown(
            function=function,
            requests=n_requests,
            mean_latency=sum(values) / n_requests,
            mean_queue_wait=(
                sum(waits) / len(waits) * tasks_per_request if waits else 0.0
            ),
            mean_device_time=(
                sum(devices) / len(devices) * tasks_per_request
                if devices else 0.0
            ),
        )
    return breakdowns


def render_breakdown(breakdowns: Dict[str, FunctionBreakdown]) -> str:
    """Plain-text table of a breakdown (ms)."""
    from ..experiments.report import render_table

    rows = [breakdowns[name].as_row() for name in sorted(breakdowns)]
    return render_table(
        ["Function", "Requests", "Latency ms", "Queue ms", "Device ms",
         "Overhead ms"],
        rows,
        title="Per-request latency breakdown",
    )

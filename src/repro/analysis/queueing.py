"""Queueing-theory reference models.

Used to sanity-check the simulator: a single FPGA board served FIFO with
deterministic service times and Poisson arrivals is an M/D/1 queue, so the
simulated mean waits must match Pollaczek–Khinchine.  The test suite runs
that comparison (see ``tests/analysis/test_queueing_validation.py``), which
guards the whole timing machinery against systemic bias.
"""

from __future__ import annotations

import math


def utilization(arrival_rate: float, service_time: float) -> float:
    """Offered load ρ = λ·E[S]."""
    if arrival_rate < 0 or service_time < 0:
        raise ValueError("rates and times must be non-negative")
    return arrival_rate * service_time


def mm1_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean time in queue (excluding service) for M/M/1."""
    if service_rate <= arrival_rate:
        return math.inf
    rho = arrival_rate / service_rate
    return rho / (service_rate - arrival_rate)


def mm1_response(arrival_rate: float, service_rate: float) -> float:
    """Mean response time (wait + service) for M/M/1."""
    if service_rate <= arrival_rate:
        return math.inf
    return 1.0 / (service_rate - arrival_rate)


def md1_wait(arrival_rate: float, service_time: float) -> float:
    """Mean time in queue for M/D/1 (Pollaczek–Khinchine, zero variance).

    W_q = ρ·E[S] / (2·(1-ρ))
    """
    rho = utilization(arrival_rate, service_time)
    if rho >= 1.0:
        return math.inf
    return rho * service_time / (2.0 * (1.0 - rho))


def md1_response(arrival_rate: float, service_time: float) -> float:
    """Mean response time for M/D/1."""
    wait = md1_wait(arrival_rate, service_time)
    return wait + service_time if math.isfinite(wait) else math.inf


def mg1_wait(arrival_rate: float, mean_service: float,
             service_variance: float) -> float:
    """Mean time in queue for M/G/1 (general Pollaczek–Khinchine)."""
    rho = utilization(arrival_rate, mean_service)
    if rho >= 1.0:
        return math.inf
    second_moment = service_variance + mean_service ** 2
    return arrival_rate * second_moment / (2.0 * (1.0 - rho))

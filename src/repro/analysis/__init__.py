"""Analysis utilities: queueing-theory references and trace breakdowns."""

from .breakdown import (
    FunctionBreakdown,
    default_pod_to_function,
    render_breakdown,
    request_breakdown,
)
from .queueing import (
    md1_response,
    md1_wait,
    mg1_wait,
    mm1_response,
    mm1_wait,
    utilization,
)

__all__ = [
    "FunctionBreakdown",
    "default_pod_to_function",
    "md1_response",
    "md1_wait",
    "mg1_wait",
    "mm1_response",
    "mm1_wait",
    "render_breakdown",
    "request_breakdown",
    "utilization",
]

"""C-style OpenCL API: ``cl*``-named functions over the object model.

The paper's transparency claim is about host code written against the
OpenCL *C API*; this module offers that exact vocabulary so ported host
code reads like the original:

    context = clCreateContext(devices)
    queue = clCreateCommandQueue(context)
    yield from clBuildProgram(program)
    clSetKernelArg(kernel, 0, in_buf)
    yield from clEnqueueWriteBuffer(queue, buf, True, 0, n, data)
    event = clEnqueueNDRangeKernel(queue, kernel)
    yield clWaitForEvents([event])

Conventions: calls with ``blocking=True`` (and ``clBuildProgram`` /
``clFinish``) are simulation processes — drive them with ``yield from``.
Non-blocking enqueues return :class:`CLEvent` immediately.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .errors import CLError, CL_INVALID_VALUE
from .objects import (
    CLEvent,
    CommandQueue,
    Context,
    Device,
    Kernel,
    MemBuffer,
    Platform,
    Program,
    wait_for_events,
)
from .types import (
    DeviceInfo,
    DeviceType,
    MemFlags,
    PlatformInfo,
    ProfilingInfo,
    QueueProperties,
)

__all__ = [
    "clBuildProgram",
    "clCreateBuffer",
    "clCreateCommandQueue",
    "clCreateContext",
    "clCreateKernel",
    "clCreateProgramWithBinary",
    "clEnqueueBarrier",
    "clEnqueueCopyBuffer",
    "clEnqueueMarker",
    "clEnqueueNDRangeKernel",
    "clEnqueueReadBuffer",
    "clEnqueueTask",
    "clEnqueueWriteBuffer",
    "clFinish",
    "clFlush",
    "clGetDeviceIDs",
    "clGetDeviceInfo",
    "clGetEventInfo",
    "clGetEventProfilingInfo",
    "clGetPlatformInfo",
    "clReleaseCommandQueue",
    "clReleaseContext",
    "clReleaseMemObject",
    "clSetKernelArg",
    "clWaitForEvents",
]


# -- discovery ---------------------------------------------------------------

def clGetDeviceIDs(platform: Platform,
                   device_type: DeviceType = DeviceType.ALL) -> list[Device]:
    return platform.get_devices(device_type)


def clGetPlatformInfo(platform: Platform, param: PlatformInfo) -> str:
    return platform.get_info(param)


def clGetDeviceInfo(device: Device, param: DeviceInfo):
    return device.get_info(param)


# -- context & resources ------------------------------------------------------

def clCreateContext(devices: Sequence[Device]) -> Context:
    return Context(devices)


def clCreateCommandQueue(
    context: Context,
    device: Optional[Device] = None,
    properties: QueueProperties = QueueProperties.PROFILING_ENABLE,
) -> CommandQueue:
    return context.create_queue(device, properties)


def clCreateBuffer(context: Context, flags: MemFlags, size: int,
                   host_ptr: Optional[bytes] = None) -> MemBuffer:
    return context.create_buffer(size, flags, host_ptr)


def clCreateProgramWithBinary(context: Context, binary_name: str) -> Program:
    return context.create_program(binary_name)


def clBuildProgram(program: Program):
    """Process: build (may reconfigure the board)."""
    yield from program.build()
    return program


def clCreateKernel(program: Program, name: str) -> Kernel:
    return program.create_kernel(name)


def clSetKernelArg(kernel: Kernel, index: int, value: Any) -> None:
    kernel.set_arg(index, value)


# -- command queue ------------------------------------------------------------

def clEnqueueWriteBuffer(queue: CommandQueue, buffer: MemBuffer,
                         blocking: bool, offset: int, size: int,
                         ptr, wait_for: Sequence[CLEvent] = ()):
    """Non-blocking: returns the event.  Blocking: a process to drive."""
    if not blocking:
        return queue.enqueue_write_buffer(buffer, ptr, size, offset,
                                          wait_for)
    return queue.write_buffer(buffer, ptr, size, offset)


def clEnqueueReadBuffer(queue: CommandQueue, buffer: MemBuffer,
                        blocking: bool, offset: int, size: int,
                        wait_for: Sequence[CLEvent] = ()):
    """Non-blocking: returns the event (value = bytes).  Blocking: process
    returning the bytes."""
    if not blocking:
        return queue.enqueue_read_buffer(buffer, size, offset, wait_for)
    return queue.read_buffer(buffer, size, offset)


def clEnqueueCopyBuffer(queue: CommandQueue, src: MemBuffer, dst: MemBuffer,
                        src_offset: int = 0, dst_offset: int = 0,
                        size: Optional[int] = None,
                        wait_for: Sequence[CLEvent] = ()) -> CLEvent:
    return queue.enqueue_copy_buffer(src, dst, size, src_offset, dst_offset,
                                     wait_for)


def clEnqueueNDRangeKernel(queue: CommandQueue, kernel: Kernel,
                           global_size: Optional[tuple] = (1,),
                           wait_for: Sequence[CLEvent] = ()) -> CLEvent:
    return queue.enqueue_kernel(kernel, global_size, wait_for)


def clEnqueueTask(queue: CommandQueue, kernel: Kernel,
                  wait_for: Sequence[CLEvent] = ()) -> CLEvent:
    return queue.enqueue_kernel(kernel, None, wait_for)


def clEnqueueMarker(queue: CommandQueue) -> CLEvent:
    return queue.enqueue_marker()


def clEnqueueBarrier(queue: CommandQueue) -> CLEvent:
    return queue.enqueue_barrier()


def clFlush(queue: CommandQueue) -> None:
    queue.flush()


def clFinish(queue: CommandQueue):
    """Process: drain the queue."""
    yield from queue.finish()


# -- events --------------------------------------------------------------------

def clWaitForEvents(events: Sequence[CLEvent]):
    """Simulation event to yield on (all listed events complete)."""
    return wait_for_events(events)


def clGetEventInfo(event: CLEvent) -> int:
    """CL_EVENT_COMMAND_EXECUTION_STATUS."""
    return event.status


def clGetEventProfilingInfo(event: CLEvent, param: ProfilingInfo) -> float:
    return event.get_profiling_info(param)


# -- release -------------------------------------------------------------------

def clReleaseMemObject(buffer: MemBuffer) -> None:
    buffer.release()


def clReleaseCommandQueue(queue: CommandQueue) -> None:
    queue.release()


def clReleaseContext(context: Context) -> None:
    context.release()

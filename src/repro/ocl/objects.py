"""The OpenCL host object model.

This is the API surface the paper calls *transparent*: application host code
is written once against these objects and runs unchanged on either

* the **native** driver (:mod:`repro.ocl.native`) — direct access to a local
  :class:`~repro.fpga.board.FPGABoard`, modelling the vendor runtime; or
* the **remote** driver (:mod:`repro.core.remote_lib`) — BlastFunction's
  Remote OpenCL Library, which forwards every call to a Device Manager.

Blocking semantics in the discrete-event world: any method documented as a
*process* must be driven with ``yield from`` inside a simulation process;
methods returning a :class:`CLEvent` are asynchronous and the caller may
``yield event.wait()`` later, exactly mirroring the blocking/non-blocking
split of the OpenCL specification.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..fpga.ddr import materialize
from ..sim import AllOf, Environment, Event
from .errors import (
    CLError,
    CL_INVALID_ARG_INDEX,
    CL_INVALID_CONTEXT,
    CL_INVALID_COMMAND_QUEUE,
    CL_INVALID_EVENT_WAIT_LIST,
    CL_INVALID_KERNEL_ARGS,
    CL_INVALID_MEM_OBJECT,
    CL_INVALID_PROGRAM_EXECUTABLE,
    CL_INVALID_VALUE,
    check,
)
from .types import (
    CommandType,
    DeviceInfo,
    DeviceType,
    ExecutionStatus,
    MemFlags,
    PlatformInfo,
    ProfilingInfo,
    QueueProperties,
)

_ids = count(1)


class CLEvent:
    """An OpenCL event: status, profiling timestamps, completion waiting.

    Wraps one simulation event (:attr:`completion`) that triggers when the
    command reaches ``COMPLETE`` (value = the command's result, e.g. the
    bytes of a read) or fails (value = :class:`CLError`).  Supports
    ``clSetEventCallback``-style status callbacks and
    ``clGetEventProfilingInfo``-style timestamps.
    """

    def __init__(self, env: Environment, command_type: CommandType):
        self.id = next(_ids)
        self.env = env
        self.command_type = command_type
        self._status = ExecutionStatus.QUEUED
        self._error: Optional[CLError] = None
        self.profiling: Dict[ProfilingInfo, float] = {
            ProfilingInfo.QUEUED: env.now
        }
        self.completion: Event = env.event()
        self.value: Any = None
        self._callbacks: List[Callable[["CLEvent", int], None]] = []

    # -- status ------------------------------------------------------------
    @property
    def status(self) -> int:
        """Current execution status (negative = error code)."""
        if self._error is not None:
            return self._error.code
        return int(self._status)

    @property
    def is_complete(self) -> bool:
        return self._status is ExecutionStatus.COMPLETE or self._error is not None

    def on_status_change(
        self, callback: Callable[["CLEvent", int], None]
    ) -> None:
        """Register a ``clSetEventCallback``-style callback."""
        self._callbacks.append(callback)

    def _fire_callbacks(self) -> None:
        for callback in list(self._callbacks):
            callback(self, self.status)

    def set_status(self, status: ExecutionStatus) -> None:
        """Advance the event's status (stamps profiling timestamps)."""
        if self.is_complete:
            raise CLError(CL_INVALID_VALUE, "event already finished")
        if status >= self._status:
            raise CLError(
                CL_INVALID_VALUE,
                f"status may only advance ({self._status} -> {status})",
            )
        self._status = status
        stamp = {
            ExecutionStatus.SUBMITTED: ProfilingInfo.SUBMIT,
            ExecutionStatus.RUNNING: ProfilingInfo.START,
            ExecutionStatus.COMPLETE: ProfilingInfo.END,
        }.get(status)
        if stamp is not None:
            self.profiling[stamp] = self.env.now
        if status is ExecutionStatus.COMPLETE:
            self.completion.succeed(self.value)
        self._fire_callbacks()

    def complete(self, value: Any = None) -> None:
        """Mark the command complete with an optional result value.

        A read's live device view is materialized here — the user-facing
        boundary of the zero-copy data plane, and the single real copy of
        a functional read's round trip.  Zero-page views (timing-only
        reads) pass through uncopied.
        """
        self.value = materialize(value)
        self.set_status(ExecutionStatus.COMPLETE)

    def fail(self, error: CLError) -> None:
        """Mark the command failed; waiters receive the error."""
        if self.is_complete:
            return
        self._error = error
        self.profiling[ProfilingInfo.END] = self.env.now
        self.completion.fail(error)
        # Nobody is obliged to wait on a failed event; don't crash the sim.
        self.completion.defused = True
        self._fire_callbacks()

    # -- waiting -------------------------------------------------------------
    def wait(self) -> Event:
        """Simulation event to ``yield`` on until completion."""
        return self.completion

    def get_profiling_info(self, param: ProfilingInfo) -> float:
        """``clGetEventProfilingInfo`` (seconds, not nanoseconds)."""
        try:
            return self.profiling[param]
        except KeyError:
            from .errors import CL_PROFILING_INFO_NOT_AVAILABLE

            raise CLError(
                CL_PROFILING_INFO_NOT_AVAILABLE,
                f"{param.name} not stamped yet for {self!r}",
            ) from None

    def duration(self) -> float:
        """Execution time (START→END), per clGetEventProfilingInfo."""
        try:
            return (
                self.profiling[ProfilingInfo.END]
                - self.profiling[ProfilingInfo.START]
            )
        except KeyError:
            raise CLError(
                CL_INVALID_VALUE, "profiling info not yet available"
            ) from None

    def __repr__(self) -> str:
        return (
            f"<CLEvent #{self.id} {self.command_type.name} "
            f"status={self.status}>"
        )


def wait_for_events(events: Sequence[CLEvent]) -> Event:
    """``clWaitForEvents``: a simulation event for *all* of ``events``."""
    if not events:
        raise CLError(CL_INVALID_EVENT_WAIT_LIST, "empty wait list")
    env = events[0].env
    return AllOf(env, [event.completion for event in events])


@dataclass
class Command:
    """One command-queue entry, as handed to a driver."""

    type: CommandType
    event: CLEvent
    buffer: Optional["MemBuffer"] = None
    dst_buffer: Optional["MemBuffer"] = None   # copy-buffer destination
    data: Optional[bytes] = None
    nbytes: int = 0
    offset: int = 0
    dst_offset: int = 0
    kernel: Optional["Kernel"] = None
    kernel_args: Optional[List[Any]] = None
    global_size: Optional[tuple] = None
    wait_for: tuple = ()


class Driver(abc.ABC):
    """Backend interface platforms delegate to (vendor runtime or remote)."""

    env: Environment

    # -- info --------------------------------------------------------------
    @abc.abstractmethod
    def platform_info(self) -> Dict[str, str]:
        """CL_PLATFORM_* fields."""

    @abc.abstractmethod
    def device_info(self) -> Dict[str, Any]:
        """CL_DEVICE_* fields for the (single) device behind this driver."""

    # -- control plane (synchronous; zero simulated time) ---------------------
    @abc.abstractmethod
    def create_buffer(self, buffer: "MemBuffer") -> None:
        """Allocate device memory and bind ``buffer.handle``."""

    @abc.abstractmethod
    def release_buffer(self, buffer: "MemBuffer") -> None:
        """Free device memory."""

    @abc.abstractmethod
    def kernel_arg_count(self, kernel: "Kernel") -> int:
        """Arity of a kernel (validates the kernel name)."""

    # -- programming (process: may reconfigure the board) -----------------------
    @abc.abstractmethod
    def build_program(self, program: "Program"):
        """Process: make ``program.binary_name`` executable on the device."""

    # -- command plane -------------------------------------------------------
    @abc.abstractmethod
    def create_queue(self, queue: "CommandQueue") -> None:
        """Set up driver-side state for a new command queue."""

    @abc.abstractmethod
    def release_queue(self, queue: "CommandQueue") -> None:
        """Tear down driver-side state for a queue."""

    @abc.abstractmethod
    def enqueue(self, queue: "CommandQueue", command: Command) -> None:
        """Accept a command for in-order execution."""

    @abc.abstractmethod
    def flush(self, queue: "CommandQueue") -> None:
        """``clFlush``: guarantee eventual submission of enqueued work."""

    def host_sync_delay(self) -> float:
        """Host-side overhead of returning from a blocking wait."""
        return 0.0

    def close(self) -> None:
        """Release driver-wide resources (connections, workers)."""


class Platform:
    """An OpenCL platform (one per runtime: native vendor or BlastFunction)."""

    def __init__(self, driver: Driver):
        self.id = next(_ids)
        self.driver = driver
        info = driver.platform_info()
        self.name = info.get("name", "Unknown platform")
        self.vendor = info.get("vendor", "Unknown vendor")
        self.version = info.get("version", "OpenCL 1.2")
        self.devices = [Device(self, driver)]

    def get_devices(
        self, device_type: DeviceType = DeviceType.ALL
    ) -> List["Device"]:
        """``clGetDeviceIDs``."""
        return [
            device
            for device in self.devices
            if device_type is DeviceType.ALL or device.type & device_type
        ]

    def get_info(self, param: PlatformInfo) -> str:
        """``clGetPlatformInfo``."""
        values = {
            PlatformInfo.PROFILE: "EMBEDDED_PROFILE",
            PlatformInfo.VERSION: self.version,
            PlatformInfo.NAME: self.name,
            PlatformInfo.VENDOR: self.vendor,
            PlatformInfo.EXTENSIONS: "",
        }
        try:
            return values[param]
        except KeyError:
            raise CLError(CL_INVALID_VALUE,
                          f"unknown platform info {param!r}") from None

    def __repr__(self) -> str:
        return f"<Platform {self.name!r}>"


class Device:
    """An OpenCL device (an FPGA accelerator board)."""

    def __init__(self, platform: Platform, driver: Driver):
        self.id = next(_ids)
        self.platform = platform
        self.driver = driver
        info = driver.device_info()
        self.name = info.get("name", "Unknown device")
        self.type = info.get("type", DeviceType.ACCELERATOR)
        self.global_mem_size = info.get("global_mem_size", 0)
        self.vendor = info.get("vendor", platform.vendor)

    def get_info(self, param: DeviceInfo):
        """``clGetDeviceInfo``."""
        values = {
            DeviceInfo.TYPE: self.type,
            DeviceInfo.NAME: self.name,
            DeviceInfo.VENDOR: self.vendor,
            DeviceInfo.GLOBAL_MEM_SIZE: self.global_mem_size,
            DeviceInfo.AVAILABLE: True,
            DeviceInfo.PLATFORM: self.platform,
        }
        try:
            return values[param]
        except KeyError:
            raise CLError(CL_INVALID_VALUE,
                          f"unknown device info {param!r}") from None

    def __repr__(self) -> str:
        return f"<Device {self.name!r}>"


class Context:
    """``clCreateContext``: owns buffers, programs and queues."""

    def __init__(self, devices: Sequence[Device]):
        check(bool(devices), CL_INVALID_VALUE, "context needs devices")
        platforms = {device.platform for device in devices}
        check(len(platforms) == 1, CL_INVALID_CONTEXT,
              "devices span multiple platforms")
        self.id = next(_ids)
        self.devices = list(devices)
        self.driver = devices[0].driver
        self.env = self.driver.env
        self.buffers: List[MemBuffer] = []
        self.queues: List[CommandQueue] = []
        self.released = False

    def create_buffer(
        self,
        size: int,
        flags: MemFlags = MemFlags.READ_WRITE,
        hostbuf: Optional[bytes] = None,
    ) -> "MemBuffer":
        """``clCreateBuffer``."""
        self._check_live()
        buffer = MemBuffer(self, size, flags, hostbuf)
        self.buffers.append(buffer)
        return buffer

    def create_queue(
        self,
        device: Optional[Device] = None,
        properties: QueueProperties = QueueProperties.PROFILING_ENABLE,
    ) -> "CommandQueue":
        """``clCreateCommandQueue``."""
        self._check_live()
        queue = CommandQueue(self, device or self.devices[0], properties)
        self.queues.append(queue)
        return queue

    def create_program(self, binary_name: str) -> "Program":
        """``clCreateProgramWithBinary`` (binary = bitstream name)."""
        self._check_live()
        return Program(self, binary_name)

    def release(self) -> None:
        """``clReleaseContext``: frees all owned resources."""
        if self.released:
            return
        for queue in self.queues:
            queue.release()
        for buffer in self.buffers:
            if not buffer.released:
                buffer.release()
        self.released = True

    def _check_live(self) -> None:
        check(not self.released, CL_INVALID_CONTEXT, "context released")


class MemBuffer:
    """``cl_mem``: a device-memory buffer."""

    def __init__(
        self,
        context: Context,
        size: int,
        flags: MemFlags = MemFlags.READ_WRITE,
        hostbuf: Optional[bytes] = None,
    ):
        check(size > 0, CL_INVALID_VALUE, "buffer size must be positive")
        if flags & MemFlags.COPY_HOST_PTR:
            check(hostbuf is not None, CL_INVALID_VALUE,
                  "COPY_HOST_PTR requires host data")
        self.id = next(_ids)
        self.context = context
        self.size = size
        self.flags = flags
        self.handle: Any = None   # driver-side identity
        self.released = False
        if hostbuf is not None and flags & MemFlags.COPY_HOST_PTR:
            # Initialisation copy, applied by the driver at allocation.
            # It is a setup-path convenience modelled at zero simulated
            # time; benchmarked code paths always use explicit enqueued
            # writes (see DESIGN.md).
            self._init_data: Optional[bytes] = bytes(
                _as_payload(hostbuf)[:size]
            )
        else:
            self._init_data = None
        context.driver.create_buffer(self)

    def release(self) -> None:
        """``clReleaseMemObject``."""
        if not self.released:
            self.context.driver.release_buffer(self)
            self.released = True

    def _check_live(self) -> None:
        check(not self.released, CL_INVALID_MEM_OBJECT, "buffer released")

    def __repr__(self) -> str:
        return f"<MemBuffer #{self.id} size={self.size}>"


class Program:
    """``cl_program``: a bitstream handle; building may reconfigure."""

    def __init__(self, context: Context, binary_name: str):
        self.id = next(_ids)
        self.context = context
        self.binary_name = binary_name
        self.built = False

    def build(self):
        """Process (``clBuildProgram``): program the board if necessary."""
        yield from self.context.driver.build_program(self)
        self.built = True
        return self

    def create_kernel(self, name: str) -> "Kernel":
        """``clCreateKernel``."""
        check(self.built, CL_INVALID_PROGRAM_EXECUTABLE,
              f"program {self.binary_name!r} not built")
        return Kernel(self, name)


class Kernel:
    """``cl_kernel``: a kernel with positional arguments."""

    def __init__(self, program: Program, name: str):
        self.id = next(_ids)
        self.program = program
        self.name = name
        self.context = program.context
        self._arg_count = self.context.driver.kernel_arg_count(self)
        self._args: List[Any] = [_UNSET] * self._arg_count

    @property
    def arg_count(self) -> int:
        return self._arg_count

    def set_arg(self, index: int, value: Any) -> None:
        """``clSetKernelArg``."""
        check(0 <= index < self._arg_count, CL_INVALID_ARG_INDEX,
              f"arg {index} of {self.name} (arity {self._arg_count})")
        if isinstance(value, MemBuffer):
            value._check_live()
            check(value.context is self.context, CL_INVALID_CONTEXT,
                  "buffer belongs to another context")
        self._args[index] = value

    def set_args(self, *values: Any) -> None:
        """Set all arguments positionally."""
        check(len(values) == self._arg_count, CL_INVALID_KERNEL_ARGS,
              f"{self.name} expects {self._arg_count} args")
        for index, value in enumerate(values):
            self.set_arg(index, value)

    def snapshot_args(self) -> List[Any]:
        """Copy current args (captured at enqueue time)."""
        if any(value is _UNSET for value in self._args):
            missing = [i for i, v in enumerate(self._args) if v is _UNSET]
            raise CLError(
                CL_INVALID_KERNEL_ARGS,
                f"unset args {missing} for kernel {self.name}",
            )
        return list(self._args)

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r}>"


class _Unset:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()


class CommandQueue:
    """``cl_command_queue``: an in-order stream of device commands.

    ``OUT_OF_ORDER_EXEC_MODE`` is accepted but executed in-order (the Intel
    FPGA runtime of the paper behaves the same way); use multiple queues for
    parallelism, as PipeCNN does.
    """

    def __init__(
        self,
        context: Context,
        device: Device,
        properties: QueueProperties = QueueProperties.PROFILING_ENABLE,
    ):
        check(device in context.devices, CL_INVALID_VALUE,
              "device not in context")
        self.id = next(_ids)
        self.context = context
        self.device = device
        self.properties = properties
        self.env = context.env
        self.driver = context.driver
        self.released = False
        self.driver.create_queue(self)

    # -- enqueue (asynchronous) -------------------------------------------
    def enqueue_write_buffer(
        self,
        buffer: MemBuffer,
        data: Optional[bytes | "np.ndarray"] = None,
        nbytes: Optional[int] = None,
        offset: int = 0,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """``clEnqueueWriteBuffer`` (non-blocking)."""
        self._check_live()
        buffer._check_live()
        check(buffer.context is self.context, CL_INVALID_CONTEXT,
              "buffer belongs to another context")
        payload = _as_payload(data)
        if nbytes is None:
            nbytes = len(payload) if payload is not None else buffer.size
        check(0 <= offset and offset + nbytes <= buffer.size,
              CL_INVALID_VALUE, "write outside buffer bounds")
        event = CLEvent(self.env, CommandType.WRITE_BUFFER)
        command = Command(
            CommandType.WRITE_BUFFER, event, buffer=buffer, data=payload,
            nbytes=nbytes, offset=offset, wait_for=tuple(wait_for),
        )
        self.driver.enqueue(self, command)
        return event

    def enqueue_read_buffer(
        self,
        buffer: MemBuffer,
        nbytes: Optional[int] = None,
        offset: int = 0,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """``clEnqueueReadBuffer`` (non-blocking); event value = bytes."""
        self._check_live()
        buffer._check_live()
        check(buffer.context is self.context, CL_INVALID_CONTEXT,
              "buffer belongs to another context")
        if nbytes is None:
            nbytes = buffer.size - offset
        check(0 <= offset and offset + nbytes <= buffer.size,
              CL_INVALID_VALUE, "read outside buffer bounds")
        event = CLEvent(self.env, CommandType.READ_BUFFER)
        command = Command(
            CommandType.READ_BUFFER, event, buffer=buffer, nbytes=nbytes,
            offset=offset, wait_for=tuple(wait_for),
        )
        self.driver.enqueue(self, command)
        return event

    def enqueue_copy_buffer(
        self,
        src: MemBuffer,
        dst: MemBuffer,
        nbytes: Optional[int] = None,
        src_offset: int = 0,
        dst_offset: int = 0,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """``clEnqueueCopyBuffer`` (non-blocking, device-internal)."""
        self._check_live()
        src._check_live()
        dst._check_live()
        check(src.context is self.context and dst.context is self.context,
              CL_INVALID_CONTEXT, "buffer belongs to another context")
        if nbytes is None:
            nbytes = min(src.size - src_offset, dst.size - dst_offset)
        check(
            0 <= src_offset and src_offset + nbytes <= src.size
            and 0 <= dst_offset and dst_offset + nbytes <= dst.size,
            CL_INVALID_VALUE, "copy outside buffer bounds",
        )
        event = CLEvent(self.env, CommandType.COPY_BUFFER)
        command = Command(
            CommandType.COPY_BUFFER, event, buffer=src, dst_buffer=dst,
            nbytes=nbytes, offset=src_offset, dst_offset=dst_offset,
            wait_for=tuple(wait_for),
        )
        self.driver.enqueue(self, command)
        return event

    def enqueue_kernel(
        self,
        kernel: Kernel,
        global_size: Optional[tuple] = None,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """``clEnqueueNDRangeKernel`` / ``clEnqueueTask``."""
        self._check_live()
        check(kernel.context is self.context, CL_INVALID_CONTEXT,
              "kernel belongs to another context")
        args = kernel.snapshot_args()
        command_type = (
            CommandType.TASK if global_size is None
            else CommandType.NDRANGE_KERNEL
        )
        event = CLEvent(self.env, command_type)
        command = Command(
            command_type, event, kernel=kernel, kernel_args=args,
            global_size=global_size, wait_for=tuple(wait_for),
        )
        self.driver.enqueue(self, command)
        return event

    def enqueue_marker(self) -> CLEvent:
        """``clEnqueueMarker``: completes when all prior commands complete."""
        self._check_live()
        event = CLEvent(self.env, CommandType.MARKER)
        self.driver.enqueue(self, Command(CommandType.MARKER, event))
        return event

    def enqueue_barrier(self) -> CLEvent:
        """``clEnqueueBarrier`` (same as a marker for an in-order queue).

        Like ``clFinish``/``clFlush``, a barrier causes BlastFunction's
        Device Manager to close and submit the current task.
        """
        self._check_live()
        event = CLEvent(self.env, CommandType.BARRIER)
        command = Command(CommandType.BARRIER, event)
        self.driver.enqueue(self, command)
        self.driver.flush(self)
        return event

    # -- flush / finish -------------------------------------------------------
    def flush(self) -> None:
        """``clFlush``."""
        self._check_live()
        self.driver.flush(self)

    def finish(self):
        """Process (``clFinish``): wait until every enqueued command ran."""
        self._check_live()
        marker = self.enqueue_marker()
        self.driver.flush(self)
        yield marker.wait()
        delay = self.driver.host_sync_delay()
        if delay > 0:
            yield self.env.timeout(delay)

    # -- blocking conveniences (each is a process) ---------------------------
    def write_buffer(self, buffer: MemBuffer, data=None, nbytes=None,
                     offset: int = 0):
        """Process: blocking ``clEnqueueWriteBuffer``."""
        event = self.enqueue_write_buffer(buffer, data, nbytes, offset)
        self.driver.flush(self)
        yield event.wait()
        delay = self.driver.host_sync_delay()
        if delay > 0:
            yield self.env.timeout(delay)
        return event

    def read_buffer(self, buffer: MemBuffer, nbytes=None, offset: int = 0):
        """Process: blocking ``clEnqueueReadBuffer``; returns the bytes."""
        event = self.enqueue_read_buffer(buffer, nbytes, offset)
        self.driver.flush(self)
        yield event.wait()
        delay = self.driver.host_sync_delay()
        if delay > 0:
            yield self.env.timeout(delay)
        return event.value

    def run_kernel(self, kernel: Kernel, global_size=None):
        """Process: enqueue a kernel and wait for it."""
        event = self.enqueue_kernel(kernel, global_size)
        self.driver.flush(self)
        yield event.wait()
        delay = self.driver.host_sync_delay()
        if delay > 0:
            yield self.env.timeout(delay)
        return event

    def release(self) -> None:
        """``clReleaseCommandQueue``."""
        if not self.released:
            self.driver.release_queue(self)
            self.released = True

    def _check_live(self) -> None:
        check(not self.released, CL_INVALID_COMMAND_QUEUE, "queue released")

    def __repr__(self) -> str:
        return f"<CommandQueue #{self.id} on {self.device.name!r}>"


def _as_payload(data):
    """Zero-copy adapter: normalize host data to a flat byte-oriented view.

    Accepts bytes-like objects, memoryviews and numpy arrays (anything
    exposing the buffer protocol).  ``bytes`` pass through as-is; everything
    else becomes a ``memoryview`` cast to unsigned bytes — *no copy is
    made*, mirroring real OpenCL where a non-blocking write captures the
    host pointer and requires the memory to stay unchanged until the
    command completes.  Only non-contiguous inputs pay a compaction copy.
    """
    if data is None or isinstance(data, bytes):
        return data
    try:
        view = memoryview(data)
    except TypeError:
        tobytes = getattr(data, "tobytes", None)
        if tobytes is not None:
            return tobytes()
        raise CLError(CL_INVALID_VALUE,
                      f"unsupported host data {type(data)}") from None
    if view.ndim != 1 or view.format != "B":
        try:
            view = view.cast("B")
        except TypeError:
            return view.tobytes()  # non-contiguous: copy is unavoidable
    return view

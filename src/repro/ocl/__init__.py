"""OpenCL host library (object model + native driver).

The *transparent layer* of the paper: applications written against this API
run unchanged on the native vendor runtime
(:func:`~repro.ocl.native.native_platform`) or on BlastFunction's Remote
OpenCL Library (:func:`repro.core.remote_lib.remote_platform`).
"""

from . import errors
from .errors import CLError, check, error_name
from .native import NativeDriver, NativeDriverProfile, native_platform
from .objects import (
    CLEvent,
    Command,
    CommandQueue,
    Context,
    Device,
    Driver,
    Kernel,
    MemBuffer,
    Platform,
    Program,
    wait_for_events,
)
from .types import (
    CommandType,
    DeviceInfo,
    DeviceType,
    ExecutionStatus,
    MemFlags,
    PlatformInfo,
    ProfilingInfo,
    QueueProperties,
)

__all__ = [
    "CLError",
    "CLEvent",
    "Command",
    "CommandQueue",
    "CommandType",
    "Context",
    "Device",
    "DeviceInfo",
    "DeviceType",
    "PlatformInfo",
    "Driver",
    "ExecutionStatus",
    "Kernel",
    "MemBuffer",
    "MemFlags",
    "NativeDriver",
    "NativeDriverProfile",
    "Platform",
    "ProfilingInfo",
    "Program",
    "QueueProperties",
    "check",
    "error_name",
    "errors",
    "native_platform",
    "wait_for_events",
]

"""OpenCL enumerations: command types, execution statuses, flags.

Numeric values follow the OpenCL 1.2 headers where one exists.
"""

from __future__ import annotations

import enum


class CommandType(enum.Enum):
    """What a command queue entry does (cl_command_type)."""

    READ_BUFFER = 0x11F3
    WRITE_BUFFER = 0x11F2
    COPY_BUFFER = 0x11F5
    NDRANGE_KERNEL = 0x11F0
    TASK = 0x11F1
    MARKER = 0x11F4
    BARRIER = 0x1205


class ExecutionStatus(enum.IntEnum):
    """Event execution status (cl_int command execution status).

    Ordered so that a *lower* value means *further along*: QUEUED(3) →
    SUBMITTED(2) → RUNNING(1) → COMPLETE(0); negative values are errors.
    """

    QUEUED = 3
    SUBMITTED = 2
    RUNNING = 1
    COMPLETE = 0


class MemFlags(enum.IntFlag):
    """Buffer creation flags (cl_mem_flags)."""

    READ_WRITE = 1 << 0
    WRITE_ONLY = 1 << 1
    READ_ONLY = 1 << 2
    COPY_HOST_PTR = 1 << 5


class QueueProperties(enum.IntFlag):
    """Command-queue properties (cl_command_queue_properties)."""

    NONE = 0
    OUT_OF_ORDER_EXEC_MODE = 1 << 0
    PROFILING_ENABLE = 1 << 1


class DeviceType(enum.IntFlag):
    """Device classification (cl_device_type)."""

    DEFAULT = 1 << 0
    CPU = 1 << 1
    GPU = 1 << 2
    ACCELERATOR = 1 << 3
    ALL = 0xFFFFFFFF


class ProfilingInfo(enum.Enum):
    """Event profiling counters (cl_profiling_info)."""

    QUEUED = 0x1280
    SUBMIT = 0x1281
    START = 0x1282
    END = 0x1283


class PlatformInfo(enum.Enum):
    """clGetPlatformInfo parameter names (cl_platform_info)."""

    PROFILE = 0x0900
    VERSION = 0x0901
    NAME = 0x0902
    VENDOR = 0x0903
    EXTENSIONS = 0x0904


class DeviceInfo(enum.Enum):
    """clGetDeviceInfo parameter names (cl_device_info subset)."""

    TYPE = 0x1000
    NAME = 0x102B
    VENDOR = 0x102C
    GLOBAL_MEM_SIZE = 0x101F
    AVAILABLE = 0x1027
    PLATFORM = 0x1031

"""OpenCL error codes and the exception type that carries them.

A small but faithful subset of ``CL/cl.h``: the numeric values match the
specification so host code (and tests) can assert on them exactly as they
would against a vendor runtime.
"""

from __future__ import annotations

CL_SUCCESS = 0
CL_DEVICE_NOT_FOUND = -1
CL_DEVICE_NOT_AVAILABLE = -2
CL_MEM_OBJECT_ALLOCATION_FAILURE = -4
CL_OUT_OF_RESOURCES = -5
CL_OUT_OF_HOST_MEMORY = -6
CL_PROFILING_INFO_NOT_AVAILABLE = -7
CL_BUILD_PROGRAM_FAILURE = -11
CL_INVALID_VALUE = -30
CL_INVALID_DEVICE_TYPE = -31
CL_INVALID_PLATFORM = -32
CL_INVALID_DEVICE = -33
CL_INVALID_CONTEXT = -34
CL_INVALID_QUEUE_PROPERTIES = -35
CL_INVALID_COMMAND_QUEUE = -36
CL_INVALID_MEM_OBJECT = -38
CL_INVALID_BINARY = -42
CL_INVALID_PROGRAM = -44
CL_INVALID_PROGRAM_EXECUTABLE = -45
CL_INVALID_KERNEL_NAME = -46
CL_INVALID_KERNEL = -48
CL_INVALID_ARG_INDEX = -49
CL_INVALID_ARG_VALUE = -50
CL_INVALID_KERNEL_ARGS = -52
CL_INVALID_EVENT_WAIT_LIST = -57
CL_INVALID_EVENT = -58
CL_INVALID_BUFFER_SIZE = -61
CL_INVALID_OPERATION = -59

#: Extension code (beyond cl.h): the device is live-migrating and the
#: request must be replayed against the rebound endpoint.  Chosen from the
#: vendor-extension range so it can never collide with a spec value.
CL_DEVICE_MIGRATING = -1120

#: Extension code: the Accelerators Registry is down (control-plane
#: blackout) — retryable, the gateway/controller retry budgets absorb it.
CL_REGISTRY_UNAVAILABLE = -1121

#: Extension code: a control command carried a fencing epoch older than
#: the Device Manager's — a zombie registry instance was fenced off.
CL_STALE_REGISTRY_EPOCH = -1122

_ERROR_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("CL_") and isinstance(value, int)
}


def error_name(code: int) -> str:
    """Symbolic name for an error code (e.g. ``CL_INVALID_VALUE``)."""
    return _ERROR_NAMES.get(code, f"UNKNOWN_CL_ERROR({code})")


class CLError(Exception):
    """An OpenCL error, carrying its numeric status code."""

    def __init__(self, code: int, message: str = ""):
        self.code = code
        detail = f": {message}" if message else ""
        super().__init__(f"{error_name(code)}{detail}")


def check(condition: bool, code: int, message: str = "") -> None:
    """Raise :class:`CLError` with ``code`` unless ``condition`` holds."""
    if not condition:
        raise CLError(code, message)

"""Native driver: the vendor OpenCL runtime against a local board.

This models the paper's "Native" baseline: the application links the Intel
FPGA OpenCL runtime and talks to the board over PCIe with no intermediaries.
Each command queue gets a driver worker process that executes commands
in order directly on the :class:`~repro.fpga.board.FPGABoard`.

Two overhead knobs reproduce the paper's measurement conditions:

* ``launch_overhead`` — per-command driver processing (tens of µs);
* ``sync_overhead`` — host-side cost of returning from a *blocking* call.
  In the quiescent single-client microbenchmarks of Fig. 4 (200 ms between
  calls) this is tens of µs; under the containerized serverless load of
  Tables II–IV the vendor runtime's polling/completion path contends with
  the HTTP stack on the 4-core nodes and the per-blocking-call cost rises to
  milliseconds.  The experiment harnesses toggle :attr:`NativeDriver.loaded`
  accordingly (see EXPERIMENTS.md for the calibration discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..fpga.bitstream import Bitstream, BitstreamLibrary
from ..fpga.board import FPGABoard
from ..fpga.ddr import OutOfMemoryError
from ..fpga.hwspec import HOST_I7_6700, HostSpec
from ..sim import Environment, Interrupt, Store
from .errors import (
    CLError,
    CL_INVALID_BINARY,
    CL_INVALID_KERNEL_ARGS,
    CL_INVALID_KERNEL_NAME,
    CL_INVALID_PROGRAM_EXECUTABLE,
    CL_INVALID_VALUE,
    CL_MEM_OBJECT_ALLOCATION_FAILURE,
)
from .objects import Command, CommandQueue, Driver, MemBuffer, Platform
from .types import CommandType, DeviceType, ExecutionStatus


@dataclass(frozen=True)
class NativeDriverProfile:
    """Timing profile of the vendor runtime's host paths.

    ``*_idle`` values hold in the quiescent single-client conditions of the
    Fig. 4 microbenchmarks (the paper waits 200 ms between calls).
    ``*_loaded`` values hold under the containerized serverless load of
    Tables II–IV, where the runtime's command submission and its
    blocking-call completion path (polling thread + mutex handoff) contend
    with the HTTP stack on the 4-core nodes.  ``sync_overhead_loaded`` is
    the one fitted constant of this reproduction (see EXPERIMENTS.md);
    everything else follows from Fig. 4.
    """

    launch_overhead: float = 30e-6
    launch_overhead_loaded: float = 0.15e-3
    sync_overhead_idle: float = 60e-6
    sync_overhead_loaded: float = 4.8e-3


class NativeDriver(Driver):
    """Direct vendor-runtime access to one local FPGA board."""

    def __init__(
        self,
        env: Environment,
        board: FPGABoard,
        library: BitstreamLibrary,
        profile: NativeDriverProfile = NativeDriverProfile(),
        host: HostSpec = HOST_I7_6700,
    ):
        self.env = env
        self.board = board
        self.library = library
        self.profile = profile
        self.host = host
        #: True while the node is under serverless load (see module docs).
        self.loaded = False
        self._queues: Dict[int, tuple] = {}

    # -- info ---------------------------------------------------------------
    def platform_info(self) -> Dict[str, str]:
        return {
            "name": "Intel(R) FPGA SDK for OpenCL(TM)",
            "vendor": "Intel(R) Corporation",
            "version": "OpenCL 1.2",
        }

    def device_info(self) -> Dict[str, object]:
        return {
            "name": f"{self.board.spec.name} ({self.board.spec.fpga})",
            "type": DeviceType.ACCELERATOR,
            "global_mem_size": self.board.spec.memory_bytes,
            "vendor": "Intel(R) Corporation",
        }

    def host_sync_delay(self) -> float:
        base = (
            self.profile.sync_overhead_loaded
            if self.loaded
            else self.profile.sync_overhead_idle
        )
        return base * self.host.speed_factor

    def launch_delay(self) -> float:
        base = (
            self.profile.launch_overhead_loaded
            if self.loaded
            else self.profile.launch_overhead
        )
        return base * self.host.speed_factor

    # -- control plane -----------------------------------------------------
    def create_buffer(self, buffer: MemBuffer) -> None:
        try:
            buffer.handle = self.board.allocate(buffer.size)
        except OutOfMemoryError as exc:
            raise CLError(CL_MEM_OBJECT_ALLOCATION_FAILURE, str(exc)) from exc
        if buffer._init_data is not None and self.board.functional:
            buffer.handle.write(buffer._init_data)

    def release_buffer(self, buffer: MemBuffer) -> None:
        if buffer.handle is not None and not buffer.handle.freed:
            self.board.free(buffer.handle)

    def kernel_arg_count(self, kernel) -> int:
        bitstream = self._bitstream(kernel.program.binary_name)
        try:
            return len(bitstream.kernel(kernel.name).args)
        except KeyError as exc:
            raise CLError(CL_INVALID_KERNEL_NAME, str(exc)) from exc

    def _bitstream(self, name: str) -> Bitstream:
        try:
            return self.library.get(name)
        except KeyError as exc:
            raise CLError(CL_INVALID_BINARY, str(exc)) from exc

    # -- programming ----------------------------------------------------------
    def build_program(self, program):
        """Process: reconfigure the board unless already configured."""
        bitstream = self._bitstream(program.binary_name)
        if self.board.bitstream is not bitstream:
            yield from self.board.program(bitstream)
        return program

    # -- command plane ----------------------------------------------------------
    def create_queue(self, queue: CommandQueue) -> None:
        store: Store = Store(self.env)
        worker = self.env.process(self._worker(store))
        self._queues[queue.id] = (store, worker)

    def release_queue(self, queue: CommandQueue) -> None:
        entry = self._queues.pop(queue.id, None)
        if entry is not None:
            _store, worker = entry
            if worker.is_alive:
                worker.interrupt("queue released")

    def enqueue(self, queue: CommandQueue, command: Command) -> None:
        store, _worker = self._queues[queue.id]
        store.put(command)

    def flush(self, queue: CommandQueue) -> None:
        # The native worker drains continuously; flush is a no-op.
        queue._check_live()

    def close(self) -> None:
        for _store, worker in self._queues.values():
            if worker.is_alive:
                worker.interrupt("driver closed")
        self._queues.clear()

    # -- worker --------------------------------------------------------------
    def _worker(self, store: Store):
        """In-order executor for one command queue."""
        try:
            while True:
                command: Command = yield store.get()
                event = command.event
                event.set_status(ExecutionStatus.SUBMITTED)
                try:
                    for dependency in command.wait_for:
                        yield dependency.completion
                except CLError as exc:
                    event.fail(exc)
                    continue
                if command.type in (CommandType.MARKER, CommandType.BARRIER):
                    # In-order queue: reaching the marker means all prior
                    # commands completed.
                    event.set_status(ExecutionStatus.RUNNING)
                    event.complete()
                    continue
                yield self.env.timeout(self.launch_delay())
                event.set_status(ExecutionStatus.RUNNING)
                try:
                    result = yield from self._execute(command)
                except CLError as exc:
                    event.fail(exc)
                except (ValueError, KeyError, RuntimeError) as exc:
                    event.fail(CLError(CL_INVALID_VALUE, str(exc)))
                else:
                    event.complete(result)
        except Interrupt:
            return

    def _execute(self, command: Command):
        """Process: run one command on the board; returns its result."""
        if command.type is CommandType.WRITE_BUFFER:
            assert command.buffer is not None
            yield from self.board.dma_write(
                command.buffer.handle, command.nbytes, command.data,
                command.offset,
            )
            return None
        if command.type is CommandType.READ_BUFFER:
            assert command.buffer is not None
            data = yield from self.board.dma_read(
                command.buffer.handle, command.nbytes, command.offset
            )
            return data
        if command.type is CommandType.COPY_BUFFER:
            assert command.buffer is not None
            assert command.dst_buffer is not None
            yield from self.board.copy_on_device(
                command.buffer.handle, command.dst_buffer.handle,
                command.nbytes, command.offset, command.dst_offset,
            )
            return None
        if command.type in (CommandType.NDRANGE_KERNEL, CommandType.TASK):
            assert command.kernel is not None
            if not command.kernel.program.built:
                raise CLError(CL_INVALID_PROGRAM_EXECUTABLE,
                              "program not built")
            args = [
                value.handle if isinstance(value, MemBuffer) else value
                for value in (command.kernel_args or [])
            ]
            try:
                duration = yield from self.board.execute(
                    command.kernel.name, args
                )
            except (ValueError, KeyError) as exc:
                raise CLError(CL_INVALID_KERNEL_ARGS, str(exc)) from exc
            return duration
        raise CLError(CL_INVALID_VALUE, f"unsupported command {command.type}")


def native_platform(
    env: Environment,
    board: FPGABoard,
    library: BitstreamLibrary,
    profile: NativeDriverProfile = NativeDriverProfile(),
    host: HostSpec = HOST_I7_6700,
) -> Platform:
    """Build the native platform for a local board (the paper's baseline)."""
    return Platform(NativeDriver(env, board, library, profile, host))

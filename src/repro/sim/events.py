"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularised by
SimPy): simulation *processes* are Python generators that ``yield`` events,
and the :class:`~repro.sim.core.Environment` resumes them when those events
trigger.  This module defines the event types; the scheduler lives in
:mod:`repro.sim.core`.

Every component of the BlastFunction reproduction — the FPGA boards, the
gRPC/shared-memory transports, the Device Manager worker, the load
generators — is a process exchanging these events, which is what makes the
whole distributed system deterministic and fast to simulate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .core import Environment, Process

#: Scheduling priorities (lower sorts first at equal timestamps).
URGENT = 0
NORMAL = 1


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The Accelerators Registry uses interrupts to model Kubernetes killing a
    function instance during migration.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` schedules it, and *processed* after its callbacks ran.
    Processes wait for an event by yielding it.
    """

    #: Events are the unit currency of the simulation — hundreds of
    #: thousands are allocated per load test, so they carry no __dict__.
    #: Subclasses outside this package may omit __slots__ and regain one.
    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: Set when a failure was anticipated by someone (prevents the
        #: "unhandled failure" crash when nobody waits on the event).
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception).  Valid once triggered."""
        if self._ok is None:
            raise SimError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._ok is not None:
            raise SimError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, 0.0, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception`` as its value."""
        if self._ok is not None:
            raise SimError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, 0.0, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event.

        Used as a callback to chain events together.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay, NORMAL)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Immediate event used internally to start a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env.schedule(self, 0.0, URGENT)


class ConditionValue:
    """Ordered mapping of the events that triggered inside a condition."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict[Event, Any]:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event evaluating a predicate over child events.

    Use :class:`AllOf` / :class:`AnyOf` (or ``&`` / ``|``) rather than
    instantiating this directly.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

        # An empty condition is trivially satisfied.
        if not self._events and self._ok is None:
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                # Processed (actually occurred) — not merely scheduled, which
                # matters for Timeouts whose occurrence lies in the future.
                value.events.append(event)

    def _collect_value(self) -> ConditionValue:
        value = ConditionValue()
        self._populate_value(value)
        return value

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_value())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Predicate: every child event triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Predicate: at least one child event triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Event that triggers once all of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Event that triggers once any of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)

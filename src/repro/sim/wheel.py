"""Shared periodic timer wheel: one DES timer multiplexing many callbacks.

At fleet scale the naive pattern — one :class:`~repro.sim.events.Timeout`
per board per heartbeat/lease/scrape interval — floods the event queue
with thousands of identical periodic events.  A :class:`TimerWheel` keeps
**one** repeating timeout and fans out to any number of subscribers on
each tick, so the DES event volume of all periodic control-plane work is
O(1) per interval instead of O(boards).

Subscribers register a plain callback with a period expressed in ticks
(multiples of the wheel's base tick), so heartbeats, lease checks and
metric scrapes with different intervals can share one wheel as long as
their intervals are multiples of the base tick.

Invariants:

* callbacks run synchronously inside the wheel's process, in subscription
  order — they must not ``yield`` (spawn a process for anything that has
  to wait on simulated time);
* a callback sees ``env.now`` equal to the tick time; ticks never skew or
  drift (the wheel re-arms exactly ``tick`` seconds ahead each round);
* subscribing or cancelling from inside a callback takes effect on the
  next tick.
"""

from __future__ import annotations

from typing import Callable, List

from .core import Environment
from .events import Interrupt


class WheelSubscription:
    """Handle returned by :meth:`TimerWheel.every`; cancel via the wheel."""

    __slots__ = ("period_ticks", "callback", "active")

    def __init__(self, period_ticks: int, callback: Callable[[], None]):
        self.period_ticks = period_ticks
        self.callback = callback
        self.active = True


class TimerWheel:
    """One shared periodic timer for many control-plane subscribers."""

    def __init__(self, env: Environment, tick: float):
        if tick <= 0:
            raise ValueError("wheel tick must be > 0")
        self.env = env
        self.tick = tick
        #: Number of ticks fired so far.
        self.ticks = 0
        self._subs: List[WheelSubscription] = []
        self._proc = env.process(self._run())

    def every(self, period_ticks: int,
              callback: Callable[[], None]) -> WheelSubscription:
        """Invoke ``callback`` every ``period_ticks`` ticks."""
        if period_ticks < 1:
            raise ValueError("period must be at least one tick")
        sub = WheelSubscription(int(period_ticks), callback)
        self._subs.append(sub)
        return sub

    def ticks_for(self, interval: float) -> int:
        """Ticks closest to ``interval``; the interval must be a multiple
        of the base tick (within float tolerance)."""
        ticks = max(1, round(interval / self.tick))
        if abs(ticks * self.tick - interval) > 1e-9 * max(1.0, interval):
            raise ValueError(
                f"interval {interval} is not a multiple of tick {self.tick}"
            )
        return ticks

    def cancel(self, sub: WheelSubscription) -> None:
        sub.active = False
        try:
            self._subs.remove(sub)
        except ValueError:
            pass

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("timer wheel stopped")

    # -- process ---------------------------------------------------------
    def _run(self):
        try:
            while True:
                yield self.env.timeout(self.tick)
                self.ticks += 1
                ticks = self.ticks
                # Snapshot so same-tick (un)subscriptions defer one round.
                for sub in list(self._subs):
                    if sub.active and ticks % sub.period_ticks == 0:
                        sub.callback()
        except Interrupt:
            return

"""Deterministic discrete-event simulation kernel.

This is the substrate every other subsystem of the BlastFunction
reproduction runs on: FPGA boards, PCIe links, gRPC channels, the Device
Manager worker, Kubernetes, the serverless gateway and the load generators
are all processes inside one :class:`Environment`.

The kernel follows the SimPy process-interaction model (generators yielding
events) but is self-contained, dependency-free and tuned for the workloads
in this repository.
"""

from .core import EmptySchedule, Environment, Process
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Initialize,
    Interrupt,
    SimError,
    Timeout,
)
from .watchdog import WatchdogError, pending_summary, run_guarded
from .wheel import TimerWheel, WheelSubscription
from .resources import (
    Container,
    FilterStore,
    PriorityItem,
    PriorityResource,
    PriorityStore,
    Request,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "Initialize",
    "Interrupt",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "SimError",
    "Store",
    "Timeout",
    "TimerWheel",
    "WatchdogError",
    "WheelSubscription",
    "pending_summary",
    "run_guarded",
]

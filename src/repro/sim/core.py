"""Scheduler and process machinery of the discrete-event simulation kernel.

The :class:`Environment` owns the virtual clock and the event queue.
:class:`Process` wraps a generator and resumes it whenever the event it
yielded triggers.  Time is a ``float`` in **seconds**; all latency constants
elsewhere in the package (PCIe transfers, gRPC round trips, kernel execution
times) are expressed in seconds as well.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Optional

from .events import (
    NORMAL,
    URGENT,
    Event,
    Initialize,
    Interrupt,
    SimError,
    Timeout,
)

ProcessGenerator = Generator[Event, Any, Any]


class EmptySchedule(SimError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment with a virtual clock.

    Example
    -------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(1.5)
    ...     return "done"
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> env.now
    1.5
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_proc")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Monotonic event id breaking ties at equal (time, priority); a
        #: plain int (not itertools.count) — ``schedule`` is the hottest
        #: call in the kernel and the sequence must stay 0, 1, 2, ... for
        #: bit-identical event ordering.
        self._eid = 0
        self._active_proc: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories --------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> "Process":
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> Event:
        from .events import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        from .events import AnyOf

        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Enqueue ``event`` to be processed after ``delay`` seconds."""
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue, (self._now + delay, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock."""
        try:
            when, _prio, _eid, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event.defused:
            # Nobody handled this failure: surface it to the caller of run().
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run up to that time), or an :class:`Event` (run until it triggers,
        returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not be before now ({self._now})"
                )

        stopped = False
        result: Any = None

        if stop_event is not None:

            def _stop(event: Event) -> None:
                nonlocal stopped, result
                stopped = True
                result = event._value
                if not event._ok:
                    event.defused = True

            stop_event.callbacks.append(_stop)

        # The event loop below is :meth:`peek` + :meth:`step` inlined —
        # these dominate multi-hour load tests (hundreds of thousands of
        # iterations), so the queue and heappop are bound locally and no
        # method dispatch happens per event.
        queue = self._queue
        pop = heappop
        while True:
            if stopped:
                if stop_event is not None and not stop_event.ok:
                    raise result
                return result
            if not queue:
                if stop_event is not None:
                    raise SimError("simulation ended before the awaited event")
                return None
            if stop_time is not None and queue[0][0] > stop_time:
                self._now = stop_time
                return None
            when, _prio, _eid, event = pop(queue)
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event.defused:
                # Nobody handled this failure: surface it to run()'s caller.
                raise event._value


class Process(Event):
    """A running simulation process.

    A process *is* an event: it triggers when the wrapped generator returns
    (with the return value) or raises (as a failure).  Other processes can
    therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: Environment, generator: ProcessGenerator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously (as an urgent event) so the
        interrupting process keeps running first.
        """
        if not self.is_alive:
            raise SimError("cannot interrupt a finished process")
        if self is self.env.active_process:
            raise SimError("a process cannot interrupt itself")

        import inspect

        if inspect.getgeneratorstate(self._generator) == inspect.GEN_CREATED:
            # The generator never ran: a throw() would raise at its first
            # line, *before* any try block, so no handler inside the
            # process can catch it.  Close the generator instead — the
            # pending Initialize resume then sees StopIteration and the
            # process completes normally.
            self._generator.close()
            return

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, 0.0, URGENT)

        # Detach from the event we were waiting on so a later trigger of that
        # event does not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            # Withdraw cancellable waits (store gets, resource requests) so
            # a dead waiter never swallows an item or holds a queue slot.
            cancel = getattr(self._target, "cancel", None)
            if callable(cancel) and not self._target.triggered:
                cancel()
        self._target = None

    def _resume(self, event: Event) -> None:
        """Resume the generator with the value (or failure) of ``event``."""
        env = self.env
        env._active_proc = self
        self._target = None
        # Bound methods are resolved once per resume, not once per yield —
        # this callback runs for every step of every process.
        send = self._generator.send
        throw = self._generator.throw
        schedule = env.schedule
        try:
            while True:
                try:
                    if event._ok:
                        next_event = send(event._value)
                    else:
                        event.defused = True
                        next_event = throw(event._value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    schedule(self, 0.0, NORMAL)
                    break
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    schedule(self, 0.0, NORMAL)
                    break

                if not isinstance(next_event, Event):
                    exc = RuntimeError(
                        f"process yielded a non-event: {next_event!r}"
                    )
                    self._ok = False
                    self._value = exc
                    schedule(self, 0.0, NORMAL)
                    break

                if next_event.callbacks is not None:
                    # Not yet processed: wait for it.
                    next_event.callbacks.append(self._resume)
                    self._target = next_event
                    break
                # Already processed: loop and resume immediately with it.
                event = next_event
        finally:
            env._active_proc = None

"""Shared resources for simulation processes.

Three families:

* :class:`Resource` / :class:`PriorityResource` — limited-capacity resources
  with FIFO (or priority) wait queues.  The FPGA board's execution lock and
  the PCIe link are resources.
* :class:`Store` / :class:`FilterStore` / :class:`PriorityStore` — unbounded
  or bounded FIFO object queues.  The Device Manager's central task queue and
  every message channel are stores.
* :class:`Container` — a continuous quantity (used for accounting tests).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional

from .core import Environment
from .events import Event


class Request(Event):
    """Request event for acquiring a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A :class:`Request` with a priority (lower value is served first)."""

    __slots__ = ("priority", "time")

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.time = resource.env.now
        super().__init__(resource)


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Request a slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a held slot (or cancel a queued request)."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
        self._trigger_waiters()

    def _request(self, request: Request) -> None:
        self.queue.append(request)
        self._trigger_waiters()

    def _grant_order(self) -> list[Request]:
        return self.queue

    def _trigger_waiters(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            request = self._grant_order()[0]
            self.queue.remove(request)
            self.users.append(request)
            request.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is served by priority."""

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _grant_order(self) -> list[Request]:
        return sorted(
            self.queue,
            key=lambda r: (getattr(r, "priority", 0), getattr(r, "time", 0.0)),
        )


class StorePut(Event):
    """Event for putting an item into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    """Event for taking an item out of a :class:`Store`."""

    #: ``filter`` is set only by :meth:`FilterStore.get`; plain-store gets
    #: leave the slot unset and ``getattr(..., default)`` handles both.
    __slots__ = ("_store", "filter")

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self._store = store
        store._get_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw an unfulfilled get from the store's wait queue.

        Called automatically when the waiting process is interrupted, so a
        dead consumer never swallows an item.
        """
        if not self.triggered:
            try:
                self._store._get_queue.remove(self)
            except ValueError:
                pass


class Store:
    """FIFO object store with optionally bounded capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Put ``item``; the event triggers once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Take the oldest item; the event triggers once one is available."""
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _dispatch(self) -> None:
        # Alternate puts and gets until neither side can make progress.
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and self._do_put(self._put_queue[0]):
                self._put_queue.pop(0)
                progressed = True
            while self._get_queue and self._do_get(self._get_queue[0]):
                self._get_queue.pop(0)
                progressed = True


class FilterStore(Store):
    """A :class:`Store` whose gets may specify a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> StoreGet:  # type: ignore[override]
        event = StoreGet(self)
        event.filter = filter  # type: ignore[attr-defined]
        self._dispatch()
        return event

    def _do_get(self, event: StoreGet) -> bool:
        predicate = getattr(event, "filter", lambda item: True)
        for index, item in enumerate(self.items):
            if predicate(item):
                self.items.pop(index)
                event.succeed(item)
                return True
        return False

    def _dispatch(self) -> None:
        # Unlike the FIFO store, one blocked get must not block later gets
        # whose predicate may match.
        while self._put_queue and self._do_put(self._put_queue[0]):
            self._put_queue.pop(0)
        for event in list(self._get_queue):
            if event.triggered or self._do_get(event):
                self._get_queue.remove(event)


class PriorityItem:
    """Wrapper ordering store items by ``priority`` then insertion order."""

    _counter = count()

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item
        self._order = next(PriorityItem._counter)

    def __lt__(self, other: "PriorityItem") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)

    def __repr__(self) -> str:
        return f"PriorityItem(priority={self.priority!r}, item={self.item!r})"


class PriorityStore(Store):
    """A :class:`Store` that yields items in priority order."""

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            heapq.heappush(self.items, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(heapq.heappop(self.items))
            return True
        return False


class Container:
    """A continuous quantity with blocking put/get."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_queue: list[tuple[Event, float]] = []
        self._get_queue: list[tuple[Event, float]] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        event = Event(self.env)
        self._put_queue.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        event = Event(self.env)
        self._get_queue.append((event, amount))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                event, amount = self._put_queue[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    event.succeed()
                    self._put_queue.pop(0)
                    progressed = True
            if self._get_queue:
                event, amount = self._get_queue[0]
                if self._level >= amount:
                    self._level -= amount
                    event.succeed(amount)
                    self._get_queue.pop(0)
                    progressed = True

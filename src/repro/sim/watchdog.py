"""Deadlock watchdog for simulation runs.

Fault-injection tests create exactly the situations where a buggy recovery
path deadlocks: a client waits on a reply that was dropped, the schedule
drains, and a plain ``env.run(until=event)`` returns with the event still
untriggered — or ``env.run()`` simply never reaches the state the test
asserts on.  :func:`run_guarded` makes these failures loud and diagnosable
instead of silent or hanging.
"""

from __future__ import annotations

from typing import Any, Optional

from .core import Environment
from .events import Event


class WatchdogError(AssertionError):
    """The simulation deadlocked or overran its virtual-time budget."""


def pending_summary(env: Environment, limit: int = 10) -> str:
    """Describe the events still sitting in the schedule (for diagnostics)."""
    entries = sorted(env._queue)[:limit]
    if not entries:
        return "schedule empty"
    lines = [
        f"  t={when:.6f} {type(event).__name__}"
        for when, _prio, _eid, event in entries
    ]
    more = len(env._queue) - len(entries)
    if more > 0:
        lines.append(f"  ... and {more} more")
    return "\n".join(lines)


def run_guarded(
    env: Environment,
    until: Optional[Event] = None,
    deadline: float = 120.0,
    what: str = "simulation",
) -> Any:
    """Run ``env`` until ``until`` triggers, failing fast on deadlock.

    Unlike ``env.run(until=event)``, which returns quietly when the
    schedule drains with the event untriggered, this raises
    :class:`WatchdogError` naming the stuck wait.  ``deadline`` bounds
    *virtual* time: a run that is still going after ``deadline`` simulated
    seconds (e.g. an unbounded retry loop) also fails, with a dump of the
    next scheduled events.  With ``until=None`` it simply enforces the
    deadline on a run-to-exhaustion.
    """
    horizon = env.now + deadline
    if until is None:
        env.run(until=horizon)
        if env.peek() != float("inf"):
            raise WatchdogError(
                f"{what}: still running at t={env.now:.3f} "
                f"(deadline {deadline}s); next events:\n"
                f"{pending_summary(env)}"
            )
        return None
    if until.callbacks is None:  # already processed
        return until.value
    env.run(until=horizon)
    if until.triggered:
        if not until.ok:
            until.defused = True
            raise until.value
        return until.value
    if env.peek() == float("inf"):
        raise WatchdogError(
            f"{what}: deadlocked at t={env.now:.3f} — schedule empty but "
            f"the awaited event never triggered"
        )
    raise WatchdogError(
        f"{what}: awaited event still pending at t={env.now:.3f} "
        f"(deadline {deadline}s); next events:\n{pending_summary(env)}"
    )

"""Runners for Tables I–IV of the paper."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..serverless import AlexNetApp, MMApp, SobelApp
from .config import (
    MM_N,
    SOBEL_HEIGHT,
    SOBEL_WIDTH,
    TABLE1_RATES,
    TABLE2_PAPER,
    TABLE3_PAPER,
    TABLE4_PAPER,
    load_timing,
    rates_for,
)
from .loadtest import ScenarioResult, run_scenario
from .report import render_table

APP_FACTORIES = {
    "sobel": lambda: SobelApp(width=SOBEL_WIDTH, height=SOBEL_HEIGHT),
    "mm": lambda: MMApp(n=MM_N),
    "alexnet": lambda: AlexNetApp(),
}

ACCELERATORS = {
    "sobel": "sobel",
    "mm": "mm",
    "alexnet": "pipecnn_alexnet",
}


def run_table1() -> str:
    """Table I is the static load configuration; render it."""
    rows = []
    for use_case, configurations in TABLE1_RATES.items():
        for configuration, rates in configurations.items():
            rows.append(
                [use_case, configuration]
                + [f"{rate:g} rq/s" for rate in rates]
            )
    return render_table(
        ["Use-Case", "Configuration", "1st", "2nd", "3rd", "4th", "5th"],
        rows,
        title="Table I: requests per second sent to each function",
    )


def run_use_case(use_case: str,
                 configurations: Optional[List[str]] = None,
                 runtimes: (List[str] | None) = None,
                 ) -> Dict[tuple, ScenarioResult]:
    """Run every (configuration, runtime) scenario for a use case."""
    configurations = configurations or list(TABLE1_RATES[use_case])
    runtimes = runtimes or ["blastfunction", "native"]
    results: Dict[tuple, ScenarioResult] = {}
    for runtime in runtimes:
        for configuration in configurations:
            rates = rates_for(use_case, configuration, runtime)
            results[(runtime, configuration)] = run_scenario(
                use_case=use_case,
                configuration=configuration,
                runtime=runtime,
                app_factory=APP_FACTORIES[use_case],
                accelerator=ACCELERATORS[use_case],
                rates=rates,
                timing=load_timing(),
            )
    return results


def render_table2(results: Dict[tuple, ScenarioResult]) -> str:
    """Per-function Sobel results next to the paper's Table II."""
    paper_index = {
        (t.lower().replace("blastfunction", "blastfunction"),
         config, function): (util, latency, processed, target)
        for t, config, function, node, util, latency, processed, target
        in TABLE2_PAPER
    }
    rows = []
    for (runtime, configuration), result in sorted(results.items()):
        for fn in result.functions:
            key = (runtime, configuration, fn.function)
            paper = paper_index.get(key)
            rows.append([
                runtime, configuration, fn.function, fn.node,
                fn.utilization_pct, paper[0] if paper else None,
                fn.latency * 1e3, paper[1] if paper else None,
                fn.processed, paper[2] if paper else None,
                fn.target,
            ])
    return render_table(
        ["Type", "Config", "Function", "Node",
         "Util%", "paper", "Lat ms", "paper", "Proc rq/s", "paper",
         "Target"],
        rows,
        title="Table II: multi-function Sobel results (measured vs paper)",
    )


def _render_aggregate(results: Dict[tuple, ScenarioResult],
                      paper_rows, title: str) -> str:
    paper_index = {
        (t.lower(), config): (util, latency, processed, target)
        for t, config, util, latency, processed, target in paper_rows
    }
    rows = []
    for (runtime, configuration), result in sorted(results.items()):
        paper = paper_index.get((runtime, configuration))
        rows.append([
            runtime, configuration,
            result.total_utilization_pct, paper[0] if paper else None,
            result.mean_latency * 1e3, paper[1] if paper else None,
            result.total_processed, paper[2] if paper else None,
            result.total_target, paper[3] if paper else None,
        ])
    return render_table(
        ["Type", "Config", "Util%", "paper", "Lat ms", "paper",
         "Proc rq/s", "paper", "Target", "paper"],
        rows, title=title,
    )


def render_table3(results: Dict[tuple, ScenarioResult]) -> str:
    return _render_aggregate(
        results, TABLE3_PAPER,
        "Table III: multi-function MM aggregates (measured vs paper)",
    )


def render_table4(results: Dict[tuple, ScenarioResult]) -> str:
    return _render_aggregate(
        results, TABLE4_PAPER,
        "Table IV: PipeCNN AlexNet aggregates (measured vs paper)",
    )


def run_table2() -> str:
    return render_table2(run_use_case("sobel"))


def run_table3() -> str:
    return render_table3(run_use_case("mm"))


def run_table4() -> str:
    return render_table4(run_use_case("alexnet"))

"""Chaos experiment: the Table-II load under injected failures.

Replays the paper's Section IV-B load test (5 Sobel functions, Table I
rates) while the fault plane eats 1% of control messages and a scripted
failure crashes a Device Manager mid-run.  The full recovery stack is
armed — RPC deadlines and idempotent retries, the heartbeat/lease
protocol, Algorithm-1 migration of orphaned instances, gateway retry
budget and circuit breaker — and the run reports what the paper's
operators would care about: availability, tail latency, and how long the
system took to detect the failure and re-place the affected functions.

Everything is driven from the DES clock and a seeded fault stream, so a
whole chaos run is bit-reproducible from its spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster import DeviceQuery, build_testbed
from ..core.registry import AcceleratorsRegistry
from ..core.remote_lib import ManagerAddress, PlatformRouter
from ..faults import (
    FaultScript,
    GatewayPolicy,
    HealthPolicy,
    NetworkFaultPlane,
    RetryPolicy,
)
from ..loadgen import LoadStats, percentile, run_load
from ..serverless import FunctionController, FunctionSpec, Gateway
from ..serverless.apps import SobelApp
from ..sim import AllOf, Environment, Interrupt, run_guarded
from .config import TABLE1_RATES, LoadTiming, load_timing


@dataclass
class ChaosSpec:
    """One reproducible chaos scenario."""

    use_case: str = "sobel"
    configuration: str = "medium"
    #: Seed of the fault plane's random stream.
    seed: int = 7
    #: Fraction of control messages the fabric silently eats.
    message_loss: float = 0.01
    duplicate_rate: float = 0.002
    delay_rate: float = 0.005
    delay: float = 1e-3
    #: Device Manager to crash mid-run (and when, as fractions of the
    #: measurement window).
    crash_device: str = "dm-B"
    crash_fraction: float = 0.35
    restart_fraction: float = 0.25
    timing: Optional[LoadTiming] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    health: HealthPolicy = field(default_factory=lambda: HealthPolicy(
        heartbeat_interval=0.25, lease_timeout=1.0))
    gateway: GatewayPolicy = field(default_factory=GatewayPolicy)


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    spec: ChaosSpec
    sent: int = 0
    completed: int = 0
    errors: int = 0
    #: completed / (completed + errors): the fraction of in-window
    #: requests that resolved successfully.  Requests still in flight when
    #: the window closes are censored, not failures.
    availability: float = 0.0
    mean_latency: float = 0.0
    p99_latency: float = 0.0
    crash_at: float = 0.0
    #: Heartbeat-lease detection latency (detection time - crash time).
    detection_seconds: float = float("nan")
    #: Crash until every function is back at full ready capacity.
    recovery_seconds: float = float("nan")
    migrations: int = 0
    heals: int = 0
    device_failures: int = 0
    recoveries_detected: int = 0
    rpc_retries: int = 0
    gateway_retries: int = 0
    shed: int = 0
    breaker_trips: int = 0
    rejected_messages: int = 0
    #: Client-side CL event FSMs still unresolved after the drain — the
    #: "hung client events" count the acceptance demands be zero.
    hung_events: int = 0
    plane_counters: Dict[str, int] = field(default_factory=dict)
    script_log: List[Tuple[float, str]] = field(default_factory=list)
    stats: List[LoadStats] = field(default_factory=list)
    #: Per-board downtime ledger: seconds each board spent reconfiguring,
    #: draining for migrations, and dark after a crash.  Reported for the
    #: operators' post-mortem; deliberately not part of :meth:`to_golden`
    #: (the golden digest predates the ledger and stays bit-identical).
    downtime: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_golden(self) -> Dict[str, object]:
        """Deterministic digest for golden-file regression testing."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "availability": round(self.availability, 6),
            "mean_latency_ms": round(1e3 * self.mean_latency, 4),
            "p99_latency_ms": round(1e3 * self.p99_latency, 4),
            "detection_seconds": (
                None if math.isnan(self.detection_seconds)
                else round(self.detection_seconds, 4)
            ),
            "recovery_seconds": (
                None if math.isnan(self.recovery_seconds)
                else round(self.recovery_seconds, 4)
            ),
            "migrations": self.migrations,
            "heals": self.heals,
            "device_failures": self.device_failures,
            "recoveries_detected": self.recoveries_detected,
            "rpc_retries": self.rpc_retries,
            "gateway_retries": self.gateway_retries,
            "shed": self.shed,
            "breaker_trips": self.breaker_trips,
            "rejected_messages": self.rejected_messages,
            "hung_events": self.hung_events,
            "plane": dict(self.plane_counters),
            "script": [
                [round(when, 6), what] for when, what in self.script_log
            ],
        }


def run_chaos(spec: Optional[ChaosSpec] = None) -> ChaosResult:
    """Run the Table-II load under failures; returns the chaos report."""
    spec = spec or ChaosSpec()
    timing = spec.timing or load_timing()
    rates = list(TABLE1_RATES[spec.use_case][spec.configuration])
    env = Environment()
    testbed = build_testbed(env, functional=False, scrape_interval=1.0,
                            batching=True)
    for manager in testbed.managers.values():
        # Without this a dropped write payload wedges a worker (and the
        # whole board behind it) forever: the op waits for data that will
        # never arrive.  The timeout resolves it to a structured failure.
        manager.data_timeout = spec.retry.deadline
    gateway = Gateway(env, testbed.cluster, policy=spec.gateway)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library,
                            recovery=spec.retry)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    controller = FunctionController(env, testbed.cluster, gateway, router,
                                    self_heal=True)
    registry.migrator = controller.migrate
    health = registry.enable_health(network=testbed.network,
                                    policy=spec.health)

    names = [
        f"{spec.use_case}-{index}" for index in range(1, len(rates) + 1)
    ]

    def deploy_all():
        for name in names:
            yield from gateway.deploy(FunctionSpec(
                name=name,
                app_factory=SobelApp,
                device_query=DeviceQuery(vendor="Intel", accelerator="sobel"),
                runtime="blastfunction",
            ))
        for name in names:
            yield from controller.wait_ready(name)

    env.run(until=env.process(deploy_all()))

    # Deployment ran fault-free (the paper's steady state); the chaos
    # window opens now.
    plane = NetworkFaultPlane(
        seed=spec.seed,
        drop_rate=spec.message_loss,
        duplicate_rate=spec.duplicate_rate,
        delay_rate=spec.delay_rate,
        delay=spec.delay,
    )
    testbed.network.faults = plane

    crash_at = env.now + timing.warmup + spec.crash_fraction * timing.duration
    restart_after = spec.restart_fraction * timing.duration
    victim = testbed.managers[spec.crash_device]
    script = FaultScript(env)
    script.crash_manager(victim, at=crash_at, restart_after=restart_after)
    script.arm()

    result = ChaosResult(spec=spec, crash_at=crash_at)
    hard_end = env.now + timing.warmup + timing.duration

    def recovery_monitor():
        """Process: crash → victims re-placed and full ready capacity."""
        try:
            yield from _watch_recovery()
        except Interrupt:
            return

    def _watch_recovery():
        yield env.timeout(crash_at - env.now)
        try:
            victims = set(
                registry.devices.get(spec.crash_device).instances
            )
        except KeyError:
            return
        while env.now < hard_end:
            evacuated = all(
                name not in controller.instances for name in victims
            )
            ready = all(
                len(controller.live_instances(name))
                >= gateway.function(name).spec.replicas
                and all(inst.ready.triggered and inst.ready.ok
                        for inst in controller.live_instances(name))
                for name in names
            )
            if evacuated and ready:
                result.recovery_seconds = env.now - crash_at
                return
            yield env.timeout(0.1)

    load_processes = [
        env.process(run_load(
            env, gateway, name, rate=rate, duration=timing.duration,
            warmup=timing.warmup, connections=1,
        ))
        for name, rate in zip(names, rates)
    ]
    monitor = env.process(recovery_monitor())

    def main():
        results = yield AllOf(env, load_processes)
        return [results[p] for p in load_processes]

    stats_list = run_guarded(
        env, until=env.process(main()),
        deadline=timing.warmup + timing.duration + 120.0,
        what=f"chaos load ({spec.use_case}/{spec.configuration})",
    )

    # Let in-flight retries, deadlines and migrations resolve, then stop
    # the perpetual health processes so nothing is left unaccounted.
    env.run(until=env.now + spec.retry.op_deadline + 3.0)
    if monitor.is_alive:
        monitor.interrupt("chaos run over")
    health.stop()
    env.run(until=env.now + 1.0)

    for stats in stats_list:
        result.stats.append(stats)
        result.sent += stats.sent
        result.completed += stats.completed
        result.errors += stats.errors
    latencies = [l for s in stats_list for l in s.latencies]
    resolved = result.completed + result.errors
    result.availability = (
        result.completed / resolved if resolved else 0.0
    )
    result.mean_latency = (
        sum(latencies) / len(latencies) if latencies else 0.0
    )
    result.p99_latency = percentile(latencies, 99) if latencies else 0.0
    if health.failures_detected:
        result.detection_seconds = (
            health.failures_detected[0][0] - crash_at
        )
    result.migrations = registry.migrations
    result.heals = controller.heals
    result.device_failures = registry.device_failures
    result.recoveries_detected = len(health.recoveries_detected)
    result.rpc_retries = sum(c.retries for c in router.connections)
    for function in gateway.functions.values():
        result.gateway_retries += function.retries
        result.shed += function.shed
        if function.breaker is not None:
            result.breaker_trips += function.breaker.trips
    result.rejected_messages = sum(
        m.rejected_messages for m in testbed.managers.values()
    )
    result.hung_events = sum(
        len(c._machines) for c in router.connections
    )
    result.plane_counters = dict(plane.counters)
    result.script_log = list(script.executed)

    # Downtime ledger: crash blackout from the fault script's own log,
    # drain/reconfiguration seconds from the managers' gauges.
    crash_times = {
        what.split(" ", 1)[1]: when
        for when, what in script.executed if what.startswith("crash ")
    }
    for manager in testbed.managers.values():
        dark = 0.0
        started = crash_times.get(manager.name)
        if started is not None:
            back = next(
                (when for when, what in script.executed
                 if what == f"restart {manager.name}" and when > started),
                env.now,
            )
            dark = back - started
        result.downtime[manager.name] = {
            "drain_s": round(manager.drain_seconds, 6),
            "reconfiguration_s": round(manager.reconfiguration_seconds, 6),
            "crash_s": round(dark, 6),
        }
    return result

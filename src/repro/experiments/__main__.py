"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments fig4a
    python -m repro.experiments table2 --json table2.json
    REPRO_QUICK=1 python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .export import scenarios_to_records, sweep_to_records, write_json
from .fig4 import run_mm_sweep, run_rw_sweep, run_sobel_sweep
from .report import render_bars, render_table
from .tables import (
    render_table2,
    render_table3,
    render_table4,
    run_table1,
    run_use_case,
)


def _render_sweep(points, title: str) -> str:
    by_label: dict = {}
    for point in points:
        by_label.setdefault(point.label, {})[point.system] = point.rtt * 1e3
    rows = [
        [label,
         systems.get("native"),
         systems.get("blastfunction"),
         systems.get("blastfunction_shm")]
        for label, systems in by_label.items()
    ]
    table = render_table(
        ["Size", "Native ms", "BlastFunction ms", "BlastFunction shm ms"],
        rows, title=title,
    )
    groups = [
        (label, [("native", systems.get("native")),
                 ("grpc", systems.get("blastfunction")),
                 ("shm", systems.get("blastfunction_shm"))])
        for label, systems in by_label.items()
    ]
    return table + "\n\n" + render_bars(groups)


def _fig(sweep, title):
    def runner():
        points = sweep()
        return _render_sweep(points, title), sweep_to_records(points)

    return runner


def _table(use_case, renderer):
    def runner():
        results = run_use_case(use_case)
        return renderer(results), scenarios_to_records(results)

    return runner


def _calibration():
    from .calibration import run_calibration

    return run_calibration()


def _chaos():
    import json

    from .chaos import run_chaos

    result = run_chaos()
    digest = result.to_golden()
    rows = [[key, json.dumps(value)] for key, value in digest.items()]
    text = render_table(
        ["Metric", "Value"], rows,
        title="Chaos: Table-II load under 1% message loss + DM crash",
    )
    return text, [digest]


def _migration():
    import json
    from pathlib import Path

    from .migration import render_migration, run_migration, write_bench_json

    result = run_migration()
    write_bench_json(
        result, Path(__file__).resolve().parents[3] / "BENCH_migration.json"
    )
    digest = result.to_golden()
    rows = [
        [f"{mode}.{key}", json.dumps(value)]
        for mode, cell in digest.items() for key, value in cell.items()
    ]
    text = render_migration(result) + "\n\n" + render_table(
        ["Metric", "Value"], rows, title="Migration digest",
    )
    return text, [digest]


def _registry_chaos():
    import json

    from .registry_chaos import render_registry_chaos, run_registry_chaos

    result = run_registry_chaos()
    digest = result.to_golden()
    rows = [
        [f"{mode}.{key}", json.dumps(value)]
        for mode, cell in digest.items() for key, value in cell.items()
    ]
    text = render_registry_chaos(result) + "\n\n" + render_table(
        ["Metric", "Value"], rows, title="Registry-chaos digest",
    )
    return text, [digest]


def _scale():
    from pathlib import Path

    from .scale import render_scale, run_scale_sweep, write_bench_json

    cells = run_scale_sweep()
    write_bench_json(
        cells, Path(__file__).resolve().parents[3] / "BENCH_scale.json"
    )
    return render_scale(cells), [cell.to_record() for cell in cells]


EXPERIMENTS = {
    "calibration": _calibration,
    "chaos": _chaos,
    "fig4a": _fig(run_rw_sweep,
                  "Fig. 4(a): R/W round-trip time vs total transfer size"),
    "fig4b": _fig(run_sobel_sweep,
                  "Fig. 4(b): Sobel operator round-trip time vs image size"),
    "fig4c": _fig(run_mm_sweep,
                  "Fig. 4(c): MM kernel round-trip time vs matrix size"),
    "migration": _migration,
    "registry_chaos": _registry_chaos,
    "table1": lambda: (run_table1(), []),
    "table2": _table("sobel", render_table2),
    "table3": _table("mm", render_table3),
    "table4": _table("alexnet", render_table4),
    "scale": _scale,
}

#: Heavyweight sweeps that must be asked for by name ("all" reproduces
#: the paper's figures/tables; the scale sweep grows far past them).
EXCLUDED_FROM_ALL = frozenset({"scale"})


def _run_cell(name: str):
    """Run one experiment cell (top level so worker processes can map it).

    Only the *name* crosses the process boundary; the worker re-resolves
    the runner in its own interpreter, so closures never get pickled.
    """
    text, records = EXPERIMENTS[name]()
    return name, text, records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the BlastFunction paper's tables/figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every paper experiment; "
             "the scale sweep only runs when asked for by name)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write machine-readable results to PATH",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent experiment cells in N worker processes "
             "(each cell is seed-deterministic, so results are identical "
             "to --jobs 1; output order is too)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "all":
        names = [n for n in sorted(EXPERIMENTS) if n not in EXCLUDED_FROM_ALL]
    else:
        names = [args.experiment]
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    if args.jobs > 1 and len(names) > 1:
        import multiprocessing

        with multiprocessing.Pool(min(args.jobs, len(names))) as pool:
            outputs = pool.map(_run_cell, names)
    else:
        outputs = [_run_cell(name) for name in names]

    all_records: dict = {}
    for name, text, records in outputs:
        print(text)
        print()
        all_records[name] = records
    if args.json:
        write_json(all_records, args.json)
        print(f"JSON results written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

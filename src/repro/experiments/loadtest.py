"""Shared multi-function load-test harness for Tables II, III and IV.

Reproduces Section IV-B's method: deploy 5 identical functions under
BlastFunction (3 under Native — one per board, pinned like the paper's
testbed), drive each endpoint with a closed-loop single-connection load
generator at the Table I target rate, and report per-function FPGA time
utilization, mean latency and processed-vs-target throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cluster import DeviceQuery, build_testbed
from ..core.registry import AcceleratorsRegistry
from ..core.remote_lib import ManagerAddress, PlatformRouter
from ..loadgen import LoadStats, run_load
from ..serverless import FunctionController, FunctionSpec, Gateway
from ..sim import AllOf, Environment
from .config import LoadTiming, load_timing

#: Node pinning for the Native scenario (one function per board, function 1
#: on the master node A, as in Table II).
NATIVE_NODES = ["A", "B", "C"]


@dataclass
class FunctionResult:
    """One row of a Table II-style report."""

    function: str
    node: str
    device: str
    utilization: float      # fraction of the device's time (0..1+)
    latency: float          # mean seconds
    processed: float        # rq/s
    target: float           # rq/s

    @property
    def utilization_pct(self) -> float:
        return 100.0 * self.utilization


@dataclass
class ScenarioResult:
    """Outcome of one (use-case, configuration, runtime) load test."""

    use_case: str
    configuration: str
    runtime: str
    functions: List[FunctionResult] = field(default_factory=list)
    stats: List[LoadStats] = field(default_factory=list)
    #: Aggregate data-plane copy accounting over every client transport
    #: (the paper's 4-vs-1 claim); zero for the native runtime, which has
    #: no intermediary transports.
    copies: int = 0
    bytes_copied: int = 0

    @property
    def total_utilization_pct(self) -> float:
        """Aggregate utilization (maximum 300% on the 3-board testbed)."""
        return sum(f.utilization_pct for f in self.functions)

    @property
    def mean_latency(self) -> float:
        latencies = [l for s in self.stats for l in s.latencies]
        if not latencies:
            return float("nan")
        return sum(latencies) / len(latencies)

    @property
    def total_processed(self) -> float:
        return sum(f.processed for f in self.functions)

    @property
    def total_target(self) -> float:
        return sum(f.target for f in self.functions)


def run_scenario(
    use_case: str,
    configuration: str,
    runtime: str,
    app_factory: Callable[[], object],
    accelerator: str,
    rates: List[float],
    timing: Optional[LoadTiming] = None,
    env: Optional[Environment] = None,
    metrics_order: tuple = ("connected_functions", "utilization"),
    use_shm: bool = True,
    batching: bool = True,
    functional: bool = False,
    network_setup: Optional[Callable[[object], None]] = None,
) -> ScenarioResult:
    """Run one load-test scenario end to end and return the report.

    ``metrics_order``, ``use_shm`` and ``batching`` expose the ablation
    knobs (Algorithm 1's metric priority, the shared-memory transport, and
    the Device Manager's multi-operation task batching).  ``functional``
    is the buffer-mode knob: the default timing-only mode carries no real
    bytes through the data plane (the zero-copy fast path); functional
    mode materializes buffer contents so kernels compute real results.
    Simulated timings and copy accounting are identical in both modes.
    ``network_setup`` runs once against the testbed's network before any
    deployment — the hook the fault-overhead benchmark uses to attach an
    inert :class:`~repro.faults.NetworkFaultPlane`.
    """
    timing = timing or load_timing()
    env = env or Environment()
    testbed = build_testbed(env, functional=functional, scrape_interval=1.0,
                            batching=batching)
    if network_setup is not None:
        network_setup(testbed.network)
    gateway = Gateway(env, testbed.cluster)

    if runtime == "blastfunction":
        registry = AcceleratorsRegistry(
            env, testbed.cluster, list(testbed.managers.values()),
            scraper=testbed.scraper,
            metrics_order=metrics_order,
            use_shm=use_shm,
        )
        router = PlatformRouter(env, testbed.network, testbed.library)
        router.add_managers(
            [ManagerAddress.of(m) for m in testbed.managers.values()]
        )
        controller = FunctionController(env, testbed.cluster, gateway, router)
        registry.migrator = controller.migrate
    elif runtime == "native":
        controller = FunctionController(env, testbed.cluster, gateway,
                                        router=None)
    else:
        raise ValueError(f"unknown runtime {runtime!r}")

    names = [f"{use_case}-{index}" for index in range(1, len(rates) + 1)]

    def deploy_all():
        for index, name in enumerate(names):
            spec = FunctionSpec(
                name=name,
                app_factory=app_factory,
                device_query=DeviceQuery(
                    vendor="Intel", accelerator=accelerator
                ),
                runtime=runtime,
                node_name=(
                    NATIVE_NODES[index] if runtime == "native" else ""
                ),
            )
            yield from gateway.deploy(spec)
        for name in names:
            yield from controller.wait_ready(name)

    env.run(until=env.process(deploy_all()))

    # Identify each function's device + metric identity.
    placements: Dict[str, tuple] = {}
    for name in names:
        pods = testbed.cluster.pods_of_function(name)
        assert len(pods) == 1, f"{name} has {len(pods)} pods"
        pod = pods[0]
        if runtime == "blastfunction":
            manager = testbed.managers[pod.spec.env["BF_MANAGER"]]
            placements[name] = (pod.node.name, manager, pod.name)
        else:
            placements[name] = (pod.node.name, None, pod.name)

    # Busy-time accounting over exactly the measurement window.
    busy_before: Dict[str, float] = {}
    busy_after: Dict[str, float] = {}

    def busy_of(name: str) -> float:
        node_name, manager, pod_name = placements[name]
        if manager is not None:
            counter = manager.metrics.get("client_busy_seconds_total")
            return counter.labels(pod_name).value
        board = testbed.cluster.node(node_name).board
        return board.busy_seconds

    def snapshot(target: Dict[str, float]):
        yield env.timeout(timing.warmup)
        for name in names:
            target[name] = busy_of(name)

    load_processes = [
        env.process(run_load(
            env, gateway, name, rate=rate, duration=timing.duration,
            warmup=timing.warmup, connections=1,
        ))
        for name, rate in zip(names, rates)
    ]
    env.process(snapshot(busy_before))

    def main():
        results = yield AllOf(env, load_processes)
        for name in names:
            busy_after[name] = busy_of(name)
        return [results[p] for p in load_processes]

    stats_list = env.run(until=env.process(main()))

    result = ScenarioResult(use_case, configuration, runtime)
    for name, rate, stats in zip(names, rates, stats_list):
        node_name, manager, _pod = placements[name]
        device = manager.name if manager else f"fpga-{node_name}"
        utilization = (
            (busy_after[name] - busy_before[name]) / timing.duration
        )
        result.functions.append(FunctionResult(
            function=name,
            node=node_name,
            device=device,
            utilization=utilization,
            latency=stats.mean_latency,
            processed=stats.achieved_rate,
            target=rate,
        ))
        result.stats.append(stats)
    for manager in testbed.managers.values():
        for session in manager.sessions.values():
            result.copies += session.transport.stats.copies
            result.bytes_copied += session.transport.stats.bytes_copied
    return result

"""Plain-text report rendering: measured values next to paper values."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values):
        return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_bars(
    groups: Sequence[tuple],
    width: int = 48,
    log_scale: bool = True,
    unit: str = "ms",
) -> str:
    """ASCII bar chart: ``groups`` is [(group_label, [(series, value)])].

    Used by the Fig. 4 harnesses to render the figures as text; values are
    log-scaled by default because the paper's sweeps span six decades.
    """
    import math as _math

    values = [value for _label, series in groups
              for _name, value in series if value is not None and value > 0]
    if not values:
        return "(no data)"
    top = max(values)
    bottom = min(values)

    def bar_length(value: float) -> int:
        if value is None or value <= 0:
            return 0
        if log_scale and top > bottom:
            fraction = (
                (_math.log10(value) - _math.log10(bottom))
                / (_math.log10(top) - _math.log10(bottom))
            )
        else:
            fraction = value / top
        return max(1, int(round(fraction * width)))

    name_width = max(
        (len(name) for _l, series in groups for name, _v in series),
        default=0,
    )
    label_width = max((len(label) for label, _s in groups), default=0)
    lines = []
    for label, series in groups:
        for index, (name, value) in enumerate(series):
            prefix = label.ljust(label_width) if index == 0 else \
                " " * label_width
            if value is None:
                lines.append(f"{prefix}  {name.ljust(name_width)}  -")
                continue
            bar = "#" * bar_length(value)
            lines.append(
                f"{prefix}  {name.ljust(name_width)}  "
                f"{bar} {value:.3g} {unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def ratio(measured: float, paper: float) -> Optional[float]:
    """measured / paper, or None when the reference is unusable."""
    if paper == 0 or math.isnan(paper) or math.isnan(measured):
        return None
    return measured / paper


def fmt_ms(seconds: float) -> float:
    return seconds * 1e3


def fmt_pct(fraction: float) -> float:
    return fraction * 100.0

"""Figure 4: system overhead on a single node.

Reproduces the three latency sweeps of Section IV-A. One Device Manager and
one client container share a worker node; "Native" links the vendor runtime
directly. Each measurement is the round-trip time of the benchmark's
blocking host-code flow, exactly as the paper measures (single client, no
background load, so the native runtime is in its quiescent profile).

* **4(a)** — write+read of raw buffers, total size 1 KB → 2 GB;
* **4(b)** — the Sobel operator, 10×10 → 1920×1080 images;
* **4(c)** — the MM kernel, 16×16 → 4096×4096 matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.device_manager import DeviceManager
from ..core.remote_lib import remote_platform
from ..fpga import FPGABoard, HOST_I7_6700, PCIE_GEN3_X8, standard_library
from ..ocl import Context, native_platform
from ..rpc import Network
from ..sim import Environment

KiB = 1024
MiB = 1024 ** 2
GiB = 1024 ** 3

#: Default sweep points of Fig. 4(a) (total bytes moved: half written, half
#: read back).
RW_SIZES = [
    1 * KiB, 16 * KiB, 256 * KiB, 1 * MiB, 16 * MiB, 128 * MiB,
    512 * MiB, 1 * GiB, 2 * GiB,
]

#: Image sizes of Fig. 4(b).
SOBEL_SIZES = [(10, 10), (100, 100), (320, 240), (640, 480),
               (1280, 720), (1920, 1080)]

#: Matrix sizes of Fig. 4(c).
MM_SIZES = [16, 64, 256, 512, 1024, 2048, 4096]

SYSTEMS = ("native", "blastfunction", "blastfunction_shm")


@dataclass
class SweepPoint:
    """One (size, system) → RTT measurement."""

    label: str
    size: int
    system: str
    rtt: float


def _single_node_rig(env: Environment, system: str):
    """Build the single-node deployment and return a platform process."""
    library = standard_library()
    board = FPGABoard(env, name="fpga-B", pcie=PCIE_GEN3_X8,
                      functional=False)
    if system == "native":
        platform = native_platform(env, board, library, host=HOST_I7_6700)

        def acquire():
            return platform
            yield  # pragma: no cover

        return acquire, board

    network = Network(env)
    node = network.host("B", HOST_I7_6700)
    manager = DeviceManager(env, "dm-B", board, library, network, node)

    def acquire():
        platform = yield from remote_platform(
            env, "bench-client", node, manager, network, library,
            prefer_shm=(system == "blastfunction_shm"),
        )
        return platform

    return acquire, board


def _measure(host_flow: Callable, system: str, repetitions: int = 3) -> float:
    """Run ``host_flow(platform, context, queue)`` and return the mean RTT.

    The first iteration (cold: allocation/programming) is excluded, as the
    paper averages warmed-up calls.
    """
    env = Environment()
    acquire, _board = _single_node_rig(env, system)
    samples: List[float] = []

    def main():
        platform = yield from acquire()
        context = Context(platform.get_devices())
        queue = context.create_queue()
        prepared = yield from host_flow.setup(env, context, queue)
        for _ in range(repetitions + 1):
            start = env.now
            yield from host_flow.run(env, queue, prepared)
            samples.append(env.now - start)
            yield env.timeout(0.2)  # the paper waits 200 ms between calls

    env.run(until=env.process(main()))
    return sum(samples[1:]) / len(samples[1:])


class _RwFlow:
    """Blocking write of S/2 bytes then blocking read of S/2 bytes."""

    def __init__(self, total_size: int):
        self.total = total_size
        self.half = max(total_size // 2, 1)

    def setup(self, env, context, queue):
        buffer = context.create_buffer(self.half)
        return buffer
        yield  # pragma: no cover

    def run(self, env, queue, buffer):
        yield from queue.write_buffer(buffer, nbytes=self.half)
        yield from queue.read_buffer(buffer, nbytes=self.half)


class _SobelFlow:
    """The Spector Sobel host flow (write image, kernel, blocking read)."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.nbytes = width * height * 4

    def setup(self, env, context, queue):
        program = context.create_program("sobel")
        yield from program.build()
        kernel = program.create_kernel("sobel")
        in_buf = context.create_buffer(self.nbytes)
        out_buf = context.create_buffer(self.nbytes)
        kernel.set_args(in_buf, out_buf, self.width, self.height)
        return (kernel, in_buf, out_buf)

    def run(self, env, queue, prepared):
        kernel, in_buf, out_buf = prepared
        queue.enqueue_write_buffer(in_buf, nbytes=self.nbytes)
        queue.enqueue_kernel(kernel)
        yield from queue.read_buffer(out_buf, nbytes=self.nbytes)


class _MMFlow:
    """The Spector MM host flow (write A and B, kernel, blocking read)."""

    def __init__(self, n: int):
        self.n = n
        self.nbytes = n * n * 4

    def setup(self, env, context, queue):
        program = context.create_program("mm")
        yield from program.build()
        kernel = program.create_kernel("mm")
        a = context.create_buffer(self.nbytes)
        b = context.create_buffer(self.nbytes)
        c = context.create_buffer(self.nbytes)
        kernel.set_args(a, b, c, self.n, self.n, self.n)
        return (kernel, a, b, c)

    def run(self, env, queue, prepared):
        kernel, a, b, c = prepared
        queue.enqueue_write_buffer(a, nbytes=self.nbytes)
        queue.enqueue_write_buffer(b, nbytes=self.nbytes)
        queue.enqueue_kernel(kernel)
        yield from queue.read_buffer(c, nbytes=self.nbytes)


def run_rw_sweep(sizes: Optional[List[int]] = None,
                 systems=SYSTEMS) -> List[SweepPoint]:
    """Fig. 4(a): R/W round-trip time vs total transfer size."""
    points = []
    for size in (sizes or RW_SIZES):
        for system in systems:
            rtt = _measure(_RwFlow(size), system)
            points.append(SweepPoint(_fmt_size(size), size, system, rtt))
    return points


def run_sobel_sweep(sizes=None, systems=SYSTEMS) -> List[SweepPoint]:
    """Fig. 4(b): Sobel RTT vs image size."""
    points = []
    for width, height in (sizes or SOBEL_SIZES):
        for system in systems:
            rtt = _measure(_SobelFlow(width, height), system)
            points.append(SweepPoint(
                f"{width}x{height}", width * height * 4 * 2, system, rtt
            ))
    return points


def run_mm_sweep(sizes=None, systems=SYSTEMS) -> List[SweepPoint]:
    """Fig. 4(c): MM RTT vs matrix size."""
    points = []
    for n in (sizes or MM_SIZES):
        for system in systems:
            rtt = _measure(_MMFlow(n), system)
            points.append(SweepPoint(f"{n}x{n}", 3 * n * n * 4, system, rtt))
    return points


def _fmt_size(nbytes: int) -> str:
    if nbytes >= GiB:
        return f"{nbytes / GiB:.0f}GB"
    if nbytes >= MiB:
        return f"{nbytes / MiB:.0f}MB"
    return f"{nbytes / KiB:.0f}KB"

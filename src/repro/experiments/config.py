"""Experiment configurations and paper reference data.

Table I of the paper, the per-benchmark workload parameters, and the
published numbers every harness prints next to its measurements.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# ---------------------------------------------------------------------------
# Workload parameters (what each request computes)
# ---------------------------------------------------------------------------

#: Sobel load tests run full-HD frames (≈8 MB written+read per request, the
#: top of Fig. 4(b)'s sweep).
SOBEL_WIDTH = 1920
SOBEL_HEIGHT = 1080

#: MM load tests use 448×448 float32 matrices (≈5–6 ms of device time per
#: request, consistent with Table III's utilization/throughput ratios).
MM_N = 448

# ---------------------------------------------------------------------------
# Table I: requests per second sent to each function
# ---------------------------------------------------------------------------

TABLE1_RATES: Dict[str, Dict[str, List[float]]] = {
    "sobel": {
        "low": [20, 15, 10, 5, 5],
        "medium": [35, 30, 25, 20, 15],
        "high": [60, 50, 35, 30, 15],
    },
    "mm": {
        "low": [28, 21, 14, 7, 7],
        "medium": [49, 42, 35, 28, 21],
        "high": [84, 70, 49, 42, 21],
    },
    "alexnet": {
        "medium": [6, 3, 3, 3, 3],
        "high": [9, 9, 6, 6, 3],
    },
}


def rates_for(use_case: str, configuration: str, runtime: str) -> List[float]:
    """Target rates per function; Native uses only the first 3 columns."""
    rates = TABLE1_RATES[use_case][configuration]
    return rates[:3] if runtime == "native" else list(rates)


# ---------------------------------------------------------------------------
# Load-test timing (simulated seconds)
# ---------------------------------------------------------------------------

def quick_mode() -> bool:
    """Shortened runs for CI (set REPRO_QUICK=1)."""
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


@dataclass(frozen=True)
class LoadTiming:
    warmup: float
    duration: float


def load_timing() -> LoadTiming:
    if quick_mode():
        return LoadTiming(warmup=2.0, duration=8.0)
    return LoadTiming(warmup=5.0, duration=30.0)


# ---------------------------------------------------------------------------
# Paper reference numbers (for side-by-side reporting)
# ---------------------------------------------------------------------------

#: Fig. 4 anchors: (metric, paper value in seconds).
FIG4_PAPER = {
    "rw_native_2gb": 0.316,           # PCIe-only transfer of 2 GB total
    "rw_shm_overhead_2gb": 0.155,     # one extra memcpy
    "rw_grpc_vs_native_factor": 4.0,  # "total latency of four times"
    "sobel_native_min": 0.27e-3,
    "sobel_native_max": 14.53e-3,
    "sobel_bf_min": 2.46e-3,
    "sobel_bf_max": 24e-3,
    "sobel_shm_overhead": 2e-3,
    "mm_native_min": 0.45e-3,
    "mm_native_max": 3.571,
    "mm_bf_max": 3.675,
    "mm_shm_max": 3.588,
}

#: Table II (Sobel), per-function paper rows:
#: (type, config, function, node, util%, latency ms, processed, target).
TABLE2_PAPER: List[Tuple[str, str, str, str, float, float, float, float]] = [
    ("BlastFunction", "low", "sobel-1", "B", 21.95, 21.43, 17.25, 20.00),
    ("BlastFunction", "low", "sobel-2", "A", 22.57, 24.23, 15.00, 15.00),
    ("BlastFunction", "low", "sobel-3", "C", 13.22, 19.01, 10.00, 10.00),
    ("BlastFunction", "low", "sobel-4", "A", 7.49, 31.98, 5.00, 5.00),
    ("BlastFunction", "low", "sobel-5", "B", 6.48, 27.16, 5.00, 5.00),
    ("BlastFunction", "medium", "sobel-1", "B", 40.95, 19.45, 32.93, 35.00),
    ("BlastFunction", "medium", "sobel-2", "A", 39.40, 23.62, 26.30, 30.00),
    ("BlastFunction", "medium", "sobel-3", "C", 32.85, 18.28, 24.98, 25.00),
    ("BlastFunction", "medium", "sobel-4", "A", 29.85, 26.99, 19.98, 20.00),
    ("BlastFunction", "medium", "sobel-5", "B", 18.76, 22.94, 14.97, 15.00),
    ("BlastFunction", "high", "sobel-1", "B", 60.31, 18.95, 49.58, 60.00),
    ("BlastFunction", "high", "sobel-2", "A", 39.15, 32.05, 26.63, 50.00),
    ("BlastFunction", "high", "sobel-3", "C", 45.75, 17.82, 34.96, 35.00),
    ("BlastFunction", "high", "sobel-4", "A", 38.44, 22.56, 26.11, 30.00),
    ("BlastFunction", "high", "sobel-5", "B", 18.39, 21.74, 15.00, 15.00),
    ("Native", "low", "sobel-1", "A", 30.41, 25.02, 19.49, 20.00),
    ("Native", "low", "sobel-2", "B", 19.74, 21.50, 14.74, 15.00),
    ("Native", "low", "sobel-3", "C", 13.73, 24.34, 9.75, 10.00),
    ("Native", "medium", "sobel-1", "A", 51.48, 26.04, 33.11, 35.00),
    ("Native", "medium", "sobel-2", "B", 37.19, 23.33, 27.95, 30.00),
    ("Native", "medium", "sobel-3", "C", 34.22, 23.48, 24.23, 25.00),
    ("Native", "high", "sobel-1", "A", 58.10, 26.77, 38.36, 60.00),
    ("Native", "high", "sobel-2", "B", 54.69, 23.95, 41.80, 50.00),
    ("Native", "high", "sobel-3", "C", 44.81, 24.75, 32.61, 35.00),
]

#: Table III (MM aggregates): (type, config, util%, latency ms, processed,
#: target).
TABLE3_PAPER: List[Tuple[str, str, float, float, float, float]] = [
    ("BlastFunction", "low", 43.49, 12.55, 76.96, 77),
    ("BlastFunction", "medium", 98.53, 11.57, 174.90, 175),
    ("BlastFunction", "high", 144.18, 10.69, 262.73, 266),
    ("Native", "low", 50.87, 21.12, 60.49, 63),
    ("Native", "medium", 103.22, 22.81, 106.84, 126),
    ("Native", "high", 122.97, 24.25, 121.85, 203),
]

#: Table IV (PipeCNN AlexNet aggregates).
TABLE4_PAPER: List[Tuple[str, str, float, float, float, float]] = [
    ("BlastFunction", "medium", 124.68, 132.89, 17.88, 18),
    ("BlastFunction", "high", 202.08, 124.52, 29.81, 33),
    ("Native", "medium", 96.22, 94.29, 11.91, 12),
    ("Native", "high", 189.82, 91.74, 23.57, 24),
]

"""Migration experiment: restart vs live moves under a reconfiguration storm.

A Table-II-style mixed load runs on a four-board fleet — one full-HD Sobel
tenant per board — while a *reconfiguration storm* deploys three new
functions whose accelerators (MM, FIR, histogram) are loaded nowhere.
Every storm admission makes Algorithm 1 reprogram a board and displace the
Sobel tenants living there, so the run measures exactly what the paper's
redistribution step costs the displaced tenants:

* ``migration="restart"`` — the paper's create-before-delete move: the
  replacement pod warms up from scratch, the old pod is deleted (killing
  whatever request it held), and the storm function races the victims for
  the board (its first build is denied while they are still on it);
* ``migration="live"`` — the checkpoint/restore plane of
  :mod:`repro.live`: the source board drains to an operation boundary,
  each victim's session (buffers, FIFO, open operations) moves to a
  compatible board, and the client connection rebinds without the pod
  ever restarting.

Both arms run the identical deterministic workload; the report compares
dropped requests, the latency tail the *clients* observe (folding request
timeouts in), per-board drain/reconfiguration downtime and the migration
counters.  ``python -m repro.experiments migration`` writes
``BENCH_migration.json`` at the repo root; ``scripts/migration_smoke.py``
gates CI against the committed golden digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster import DeviceQuery, build_testbed
from ..core.registry import AcceleratorsRegistry
from ..core.remote_lib import ManagerAddress, PlatformRouter
from ..faults import GatewayPolicy
from ..fpga.bitstream import extended_library
from ..fpga.hwspec import GiB, HOST_I7_6700, PCIE_GEN3_X8, NodeSpec
from ..live import LiveMigrator, controller_connection_resolver
from ..loadgen import LoadStats, percentile, run_load
from ..serverless import (
    FIRApp,
    FunctionController,
    FunctionSpec,
    Gateway,
    HistogramApp,
    MMApp,
    SobelApp,
)
from ..sim import AllOf, Environment, run_guarded
from .config import LoadTiming, quick_mode
from .report import render_table


@dataclass(frozen=True)
class StormWave:
    """One storm deployment: a function whose accelerator is loaded
    nowhere, forcing a reconfiguration + redistribution."""

    name: str
    accelerator: str
    app_factory: type
    #: Deploy time, seconds after the measurement window opens.
    offset: float


#: The three storm waves (MM, FIR, histogram — none pre-loaded on the
#: Sobel fleet, each admission displaces tenants).
STORM_WAVES: Tuple[StormWave, ...] = (
    StormWave("mm-storm", "mm", MMApp, 1.0),
    StormWave("fir-storm", "fir", FIRApp, 2.5),
    StormWave("hist-storm", "histogram", HistogramApp, 4.0),
)


@dataclass
class MigrationSpec:
    """One reproducible storm scenario (run once per migration mode)."""

    boards: int = 4
    #: Full-HD Sobel tenants (one lands on each board at deploy time).
    tenants: int = 4
    tenant_rate: float = 20.0
    storm_rate: float = 5.0
    #: Storm load starts this long after the window opens — past the last
    #: wave's ~2.5 s reprogram, so both arms measure steady storm traffic.
    storm_load_offset: float = 7.5
    #: In-window deadline for one request (timeouts are the drops).
    request_timeout: float = 2.0
    waves: Tuple[StormWave, ...] = STORM_WAVES
    timing: Optional[LoadTiming] = None

    def load_timing(self) -> LoadTiming:
        if self.timing is not None:
            return self.timing
        if quick_mode():
            return LoadTiming(warmup=1.0, duration=12.0)
        return LoadTiming(warmup=2.0, duration=24.0)


@dataclass
class MigrationModeResult:
    """Outcome of the storm under one migration mode."""

    mode: str
    sent: int = 0
    completed: int = 0
    #: In-window requests that failed (timed out or died with an
    #: instance) — the "dropped requests" of the acceptance criterion.
    dropped: int = 0
    tenant_dropped: int = 0
    storm_dropped: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    #: Tail over *every* in-window request, folding the time failed
    #: requests burned before erroring — what clients actually observe.
    observed_p99_ms: float = 0.0
    migrations: int = 0
    live_migrations: int = 0
    live_fallbacks: int = 0
    #: Storm functions that never came up (their first build lost the
    #: race against the victims still on the board).
    storm_deploys_failed: int = 0
    drain_seconds: float = 0.0
    reconfiguration_seconds: float = 0.0
    rejected_messages: int = 0
    rebinds: int = 0
    hung_events: int = 0
    stats: List[LoadStats] = field(default_factory=list)

    def to_golden(self) -> Dict[str, object]:
        """Deterministic digest for golden-file regression testing."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "dropped": self.dropped,
            "tenant_dropped": self.tenant_dropped,
            "storm_dropped": self.storm_dropped,
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "observed_p99_ms": round(self.observed_p99_ms, 4),
            "migrations": self.migrations,
            "live_migrations": self.live_migrations,
            "live_fallbacks": self.live_fallbacks,
            "storm_deploys_failed": self.storm_deploys_failed,
            "drain_seconds": round(self.drain_seconds, 4),
            "reconfiguration_seconds": round(self.reconfiguration_seconds, 4),
            "rejected_messages": self.rejected_messages,
            "rebinds": self.rebinds,
            "hung_events": self.hung_events,
        }


@dataclass
class MigrationResult:
    """Both arms of the comparison."""

    spec: MigrationSpec
    restart: MigrationModeResult
    live: MigrationModeResult

    def to_golden(self) -> Dict[str, object]:
        return {
            "restart": self.restart.to_golden(),
            "live": self.live.to_golden(),
        }


def _node_specs(boards: int) -> List[NodeSpec]:
    """A homogeneous fleet (node 0 doubles as the master)."""
    return [
        NodeSpec(
            name=f"n{index:04d}",
            host=HOST_I7_6700,
            pcie=PCIE_GEN3_X8,
            memory_bytes=32 * GiB,
            is_master=(index == 0),
        )
        for index in range(boards)
    ]


def run_migration_mode(mode: str,
                       spec: Optional[MigrationSpec] = None
                       ) -> MigrationModeResult:
    """Run the storm scenario under one migration mode."""
    spec = spec or MigrationSpec()
    timing = spec.load_timing()
    env = Environment()
    testbed = build_testbed(
        env, node_specs=_node_specs(spec.boards),
        library=extended_library(), functional=False, scrape_interval=1.0,
    )
    gateway = Gateway(env, testbed.cluster, policy=GatewayPolicy(
        retry_budget=0,
        breaker_threshold=10 ** 9,  # never trips: every drop stays visible
        shed_when_unavailable=False,
        request_timeout=spec.request_timeout,
    ))
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper, migration=mode,
    )
    # The experiment compares both modes in one process; don't let an
    # inherited REPRO_MIGRATION override either arm.
    registry.migration_mode = mode
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    controller = FunctionController(env, testbed.cluster, gateway, router,
                                    self_heal=False)
    registry.migrator = controller.migrate
    migrator = None
    if mode == "live":
        migrator = LiveMigrator(
            env, registry, dict(testbed.managers),
            controller_connection_resolver(controller),
            network=testbed.network,
        )
        registry.live_migrator = migrator

    tenants = [f"sobel-{index}" for index in range(spec.tenants)]

    def deploy_tenants():
        # Sequential: each admission sees the previous one's placement,
        # so the tenants spread one per board.
        for name in tenants:
            yield from gateway.deploy(FunctionSpec(
                name=name,
                app_factory=SobelApp,
                device_query=DeviceQuery(vendor="Intel", accelerator="sobel"),
                runtime="blastfunction",
            ))
            yield from controller.wait_ready(name)

    env.run(until=env.process(deploy_tenants()))

    measure_start = env.now + timing.warmup
    hard_end = measure_start + timing.duration

    def storm_deployer():
        for wave in spec.waves:
            yield env.timeout(measure_start + wave.offset - env.now)
            yield from gateway.deploy(FunctionSpec(
                name=wave.name,
                app_factory=wave.app_factory,
                device_query=DeviceQuery(vendor="Intel",
                                         accelerator=wave.accelerator),
                runtime="blastfunction",
            ))

    def storm_load(wave: StormWave):
        yield env.timeout(measure_start + spec.storm_load_offset - env.now)
        stats = yield from run_load(
            env, gateway, wave.name, rate=spec.storm_rate,
            duration=hard_end - env.now, warmup=0.0, connections=1,
        )
        return stats

    tenant_processes = [
        env.process(run_load(
            env, gateway, name, rate=spec.tenant_rate,
            duration=timing.duration, warmup=timing.warmup, connections=1,
        ))
        for name in tenants
    ]
    storm_processes = [
        env.process(storm_load(wave)) for wave in spec.waves
    ]
    deployer = env.process(storm_deployer())

    def main():
        results = yield AllOf(
            env, tenant_processes + storm_processes + [deployer]
        )
        return (
            [results[p] for p in tenant_processes],
            [results[p] for p in storm_processes],
        )

    tenant_stats, storm_stats = run_guarded(
        env, until=env.process(main()),
        deadline=timing.warmup + timing.duration + 120.0,
        what=f"migration storm ({mode})",
    )
    # Let in-flight tasks, deferred builds and migrations settle.
    env.run(until=env.now + 3.0)

    result = MigrationModeResult(mode=mode)
    for stats in tenant_stats + storm_stats:
        result.stats.append(stats)
        result.sent += stats.sent
        result.completed += stats.completed
        result.dropped += stats.errors
    result.tenant_dropped = sum(s.errors for s in tenant_stats)
    result.storm_dropped = sum(s.errors for s in storm_stats)
    latencies = [l for s in result.stats for l in s.latencies]
    observed = latencies + [
        l for s in result.stats for l in s.error_latencies
    ]
    result.p50_ms = 1e3 * percentile(latencies, 50) if latencies else 0.0
    result.p99_ms = 1e3 * percentile(latencies, 99) if latencies else 0.0
    result.observed_p99_ms = (
        1e3 * percentile(observed, 99) if observed else 0.0
    )
    result.migrations = registry.migrations
    result.live_migrations = registry.live_migrations
    result.live_fallbacks = migrator.fallbacks if migrator else 0
    for wave in spec.waves:
        instances = controller.live_instances(wave.name)
        if instances and all(
            inst.startup_error is not None for inst in instances
        ):
            result.storm_deploys_failed += 1
    result.drain_seconds = sum(
        m.drain_seconds for m in testbed.managers.values()
    )
    result.reconfiguration_seconds = sum(
        m.reconfiguration_seconds for m in testbed.managers.values()
    )
    result.rejected_messages = sum(
        m.rejected_messages for m in testbed.managers.values()
    )
    result.rebinds = sum(c.rebinds for c in router.connections)
    result.hung_events = sum(len(c._machines) for c in router.connections)
    return result


def run_migration(spec: Optional[MigrationSpec] = None) -> MigrationResult:
    """Run the storm under both modes; returns the comparison."""
    spec = spec or MigrationSpec()
    return MigrationResult(
        spec=spec,
        restart=run_migration_mode("restart", spec),
        live=run_migration_mode("live", spec),
    )


def render_migration(result: MigrationResult) -> str:
    rows = [
        [mode.mode, mode.sent, mode.completed, mode.dropped,
         round(mode.p50_ms, 2), round(mode.p99_ms, 2),
         round(mode.observed_p99_ms, 2), mode.migrations,
         mode.live_migrations, mode.storm_deploys_failed,
         round(mode.drain_seconds, 3),
         round(mode.reconfiguration_seconds, 2)]
        for mode in (result.restart, result.live)
    ]
    return render_table(
        ["Mode", "Sent", "Done", "Dropped", "p50 ms", "p99 ms",
         "p99+err ms", "Migr", "Live", "Storm fail", "Drain s", "Reconf s"],
        rows,
        title="Reconfiguration storm: restart vs live migration",
    )


def write_bench_json(result: MigrationResult, path) -> None:
    """Persist the comparison as ``BENCH_migration.json``."""
    import json
    import platform

    timing = result.spec.load_timing()
    payload = {
        "python": platform.python_version(),
        "timing": {"warmup_s": timing.warmup, "duration_s": timing.duration},
        "modes": result.to_golden(),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")

"""Machine-readable experiment output (JSON / CSV).

Every harness result can be serialized for plotting or regression
tracking: sweep points from the Figure 4 harnesses and scenario results
from the load tables. ``python -m repro.experiments <exp> --json out.json``
uses these writers.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List

from .fig4 import SweepPoint
from .loadtest import ScenarioResult


def sweep_to_records(points: Iterable[SweepPoint]) -> List[dict]:
    """Flatten sweep points into plain dicts."""
    return [
        {
            "label": point.label,
            "size_bytes": point.size,
            "system": point.system,
            "rtt_seconds": point.rtt,
        }
        for point in points
    ]


def scenario_to_record(result: ScenarioResult) -> dict:
    """Flatten one load scenario, including per-function rows."""
    return {
        "use_case": result.use_case,
        "configuration": result.configuration,
        "runtime": result.runtime,
        "total_utilization_pct": result.total_utilization_pct,
        "mean_latency_seconds": result.mean_latency,
        "total_processed_rps": result.total_processed,
        "total_target_rps": result.total_target,
        "functions": [
            {
                "function": fn.function,
                "node": fn.node,
                "device": fn.device,
                "utilization_pct": fn.utilization_pct,
                "mean_latency_seconds": fn.latency,
                "processed_rps": fn.processed,
                "target_rps": fn.target,
            }
            for fn in result.functions
        ],
    }


def scenarios_to_records(results: Dict[tuple, ScenarioResult]) -> List[dict]:
    return [scenario_to_record(result)
            for _key, result in sorted(results.items())]


def to_json(records, indent: int = 2) -> str:
    """Serialize records (list or dict) to JSON text."""
    return json.dumps(records, indent=indent, sort_keys=True)


def write_json(records, path: str) -> None:
    with open(path, "w") as f:
        f.write(to_json(records))


def sweep_to_csv(points: Iterable[SweepPoint]) -> str:
    """CSV text with one row per (size, system) measurement."""
    records = sweep_to_records(points)
    out = io.StringIO()
    writer = csv.DictWriter(
        out, fieldnames=["label", "size_bytes", "system", "rtt_seconds"]
    )
    writer.writeheader()
    writer.writerows(records)
    return out.getvalue()


def scenarios_to_csv(results: Dict[tuple, ScenarioResult]) -> str:
    """CSV text with one row per function per scenario."""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=[
        "use_case", "configuration", "runtime", "function", "node",
        "device", "utilization_pct", "mean_latency_seconds",
        "processed_rps", "target_rps",
    ])
    writer.writeheader()
    for _key, result in sorted(results.items()):
        for fn in result.functions:
            writer.writerow({
                "use_case": result.use_case,
                "configuration": result.configuration,
                "runtime": result.runtime,
                "function": fn.function,
                "node": fn.node,
                "device": fn.device,
                "utilization_pct": fn.utilization_pct,
                "mean_latency_seconds": fn.latency,
                "processed_rps": fn.processed,
                "target_rps": fn.target,
            })
    return out.getvalue()

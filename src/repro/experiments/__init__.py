"""Experiment harnesses: one runner per table/figure of the paper.

Regenerate everything with ``python -m repro.experiments all`` (set
``REPRO_QUICK=1`` for shortened load tests) or per experiment:
``fig4a``, ``fig4b``, ``fig4c``, ``table1``, ``table2``, ``table3``,
``table4``.
"""

from .config import (
    FIG4_PAPER,
    MM_N,
    SOBEL_HEIGHT,
    SOBEL_WIDTH,
    TABLE1_RATES,
    TABLE2_PAPER,
    TABLE3_PAPER,
    TABLE4_PAPER,
    load_timing,
    quick_mode,
    rates_for,
)
from .chaos import ChaosResult, ChaosSpec, run_chaos
from .fig4 import (
    MM_SIZES,
    RW_SIZES,
    SOBEL_SIZES,
    SweepPoint,
    run_mm_sweep,
    run_rw_sweep,
    run_sobel_sweep,
)
from .loadtest import FunctionResult, ScenarioResult, run_scenario
from .report import render_table
from .tables import (
    render_table2,
    render_table3,
    render_table4,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_use_case,
)

__all__ = [
    "ChaosResult",
    "ChaosSpec",
    "FIG4_PAPER",
    "FunctionResult",
    "MM_N",
    "MM_SIZES",
    "RW_SIZES",
    "SOBEL_HEIGHT",
    "SOBEL_SIZES",
    "SOBEL_WIDTH",
    "ScenarioResult",
    "SweepPoint",
    "TABLE1_RATES",
    "TABLE2_PAPER",
    "TABLE3_PAPER",
    "TABLE4_PAPER",
    "load_timing",
    "quick_mode",
    "rates_for",
    "render_table",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_chaos",
    "run_mm_sweep",
    "run_rw_sweep",
    "run_scenario",
    "run_sobel_sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_use_case",
]

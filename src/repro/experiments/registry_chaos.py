"""Registry-chaos experiment: kill the control plane mid-storm.

Replays a Table-II-style tenant load (4 full-HD Sobel functions) on a
4-board fleet while storm deployments (MM, FIR — accelerators loaded
nowhere) force reconfigurations, then fail-stops the Accelerators
Registry in the middle of the storm.  Two recovery arms run the same
seeded scenario:

* **durable** — an operator-scripted restart replays snapshot + WAL from
  the :class:`~repro.core.registry.RegistryStore` after a fixed outage;
* **replicated** — a :class:`~repro.core.registry.WarmStandby` tailing
  the WAL over the simulated network takes over when the leader lease
  expires (no operator in the loop).

Both arms finish with an epoch-fenced reconciliation pass against the
Device Managers' reported ground truth, then a **zombie probe** replays a
pre-crash-epoch command at a DM to show the fence holds.  The run
reports the control-plane blackout, replayed WAL records, reconciliation
diffs, how many blackout-time deploys/heals were absorbed by retry
budgets, and asserts the two safety invariants of the acceptance
criteria: zero double allocations and zero lost instances.  Everything
is DES-clock driven, so each arm is bit-reproducible from its spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster import DeviceQuery, build_testbed
from ..core.registry import (
    AcceleratorsRegistry,
    RegistryStore,
    StandbyPolicy,
    WarmStandby,
)
from ..core.remote_lib import ManagerAddress, PlatformRouter
from ..faults import FaultScript, GatewayPolicy, HealthPolicy, RegistryCrash
from ..fpga.bitstream import extended_library
from ..fpga.hwspec import GiB, HOST_I7_6700, PCIE_GEN3_X8, NodeSpec
from ..loadgen import LoadStats, percentile, run_load
from ..serverless import (
    FIRApp,
    FunctionController,
    FunctionSpec,
    Gateway,
    MMApp,
    SobelApp,
)
from ..sim import AllOf, Environment, run_guarded
from .config import LoadTiming, quick_mode
from .report import render_table


@dataclass(frozen=True)
class StormWave:
    """One storm deployment forcing a reconfiguration mid-run."""

    name: str
    accelerator: str
    app_factory: type
    #: Deploy time, seconds after the measurement window opens.
    offset: float


#: MM lands before the crash, FIR arrives *during* the blackout — its
#: admission must be refused with the structured retryable error and
#: succeed on a later retry, not crash the run.
STORM_WAVES: Tuple[StormWave, ...] = (
    StormWave("mm-storm", "mm", MMApp, 1.0),
    StormWave("fir-storm", "fir", FIRApp, 2.5),
)


@dataclass
class RegistryChaosSpec:
    """One reproducible registry-crash scenario (run once per arm)."""

    boards: int = 4
    tenants: int = 4
    tenant_rate: float = 12.0
    storm_rate: float = 5.0
    #: Registry crash time, seconds after the window opens (mid-storm:
    #: after MM's admission, before FIR's).
    crash_offset: float = 2.0
    #: Durable arm: scripted operator restart delay after the crash.
    restart_after: float = 2.0
    #: Zombie probe time after the crash (past either arm's recovery).
    probe_offset: float = 3.0
    #: Storm load starts here (past the last reprogram of either arm).
    storm_load_offset: float = 7.0
    request_timeout: float = 2.0
    #: Chosen so the last pre-crash snapshot predates the storm — the
    #: storm's admissions are recovered from the WAL, not the snapshot.
    snapshot_interval: float = 3.0
    waves: Tuple[StormWave, ...] = STORM_WAVES
    health: HealthPolicy = field(default_factory=lambda: HealthPolicy(
        heartbeat_interval=0.25, lease_timeout=1.0))
    #: Deploy/heal/invoke retry budget sized to outlast the blackout.
    gateway: GatewayPolicy = field(default_factory=lambda: GatewayPolicy(
        retry_budget=12, retry_backoff=0.2, backoff_factor=1.5,
        breaker_threshold=10 ** 9, shed_when_unavailable=False,
        request_timeout=2.0))
    standby: StandbyPolicy = field(default_factory=lambda: StandbyPolicy(
        sync_interval=0.2, lease_timeout=0.6))
    timing: Optional[LoadTiming] = None

    def load_timing(self) -> LoadTiming:
        if self.timing is not None:
            return self.timing
        if quick_mode():
            return LoadTiming(warmup=1.0, duration=10.0)
        return LoadTiming(warmup=2.0, duration=20.0)


@dataclass
class RegistryChaosModeResult:
    """Outcome of the scenario under one durability arm."""

    mode: str
    sent: int = 0
    completed: int = 0
    errors: int = 0
    availability: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    crash_at: float = 0.0
    #: Crash until WAL replay finished (control plane serving again).
    blackout_seconds: float = 0.0
    epoch: int = 0
    replayed_ops: int = 0
    replay_applied: int = 0
    denied_admissions: int = 0
    missed_watch_events: int = 0
    deploy_retries: int = 0
    heal_retries: int = 0
    heals: int = 0
    wal_appends: int = 0
    snapshots_taken: int = 0
    #: Reconciliation diffs (ground truth vs replayed state).
    reconciliation: Dict[str, int] = field(default_factory=dict)
    #: Stale-epoch commands rejected at Device Managers (zombie probe
    #: included) — must be >= 1 to prove the fence is observable.
    fenced_commands: int = 0
    zombie_fenced: int = 0
    zombie_accepted: int = 0
    #: Warm-standby stats (replicated arm only).
    takeovers: int = 0
    records_tailed: int = 0
    standby_bytes: int = 0
    lag_records_at_takeover: int = 0
    #: Safety invariants (acceptance: both exactly zero).
    double_allocations: int = 0
    lost_instances: int = 0
    hung_events: int = 0
    stats: List[LoadStats] = field(default_factory=list)

    def to_golden(self) -> Dict[str, object]:
        """Deterministic digest for golden-file regression testing."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "availability": round(self.availability, 6),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "crash_at": round(self.crash_at, 4),
            "blackout_seconds": round(self.blackout_seconds, 4),
            "epoch": self.epoch,
            "replayed_ops": self.replayed_ops,
            "replay_applied": self.replay_applied,
            "denied_admissions": self.denied_admissions,
            "missed_watch_events": self.missed_watch_events,
            "deploy_retries": self.deploy_retries,
            "heal_retries": self.heal_retries,
            "heals": self.heals,
            "wal_appends": self.wal_appends,
            "snapshots_taken": self.snapshots_taken,
            "reconciliation": dict(sorted(self.reconciliation.items())),
            "fenced_commands": self.fenced_commands,
            "zombie_fenced": self.zombie_fenced,
            "zombie_accepted": self.zombie_accepted,
            "takeovers": self.takeovers,
            "records_tailed": self.records_tailed,
            "standby_bytes": self.standby_bytes,
            "lag_records_at_takeover": self.lag_records_at_takeover,
            "double_allocations": self.double_allocations,
            "lost_instances": self.lost_instances,
            "hung_events": self.hung_events,
        }


@dataclass
class RegistryChaosResult:
    """Both recovery arms of the registry-crash comparison."""

    spec: RegistryChaosSpec
    durable: RegistryChaosModeResult
    replicated: RegistryChaosModeResult

    def to_golden(self) -> Dict[str, object]:
        return {
            "durable": self.durable.to_golden(),
            "replicated": self.replicated.to_golden(),
        }


def _node_specs(boards: int) -> List[NodeSpec]:
    return [
        NodeSpec(
            name=f"n{index:04d}",
            host=HOST_I7_6700,
            pcie=PCIE_GEN3_X8,
            memory_bytes=32 * GiB,
            is_master=(index == 0),
        )
        for index in range(boards)
    ]


def check_invariants(registry, cluster) -> Tuple[int, int]:
    """Count double allocations and lost instances (must both be 0).

    * **double allocation** — an instance claimed by more than one device
      record, or whose Functions Service device disagrees with the device
      record holding it (the zombie-registry hazard epoch fencing
      prevents);
    * **lost instance** — a pod the control plane allocated
      (``MANAGER_ENV`` patched in) with no Functions Service record, or a
      registry instance whose pod no longer exists (state dropped across
      the crash).
    """
    from ..core.registry.registry import MANAGER_ENV

    double = 0
    owners: Dict[str, List[str]] = {}
    for device in registry.devices.all():
        for instance_name in device.instances:
            owners.setdefault(instance_name, []).append(device.name)
    for instance_name, devices in owners.items():
        if len(devices) > 1:
            double += 1
            continue
        instance = registry.functions.instance(instance_name)
        if instance is not None and instance.device != devices[0]:
            double += 1

    lost = 0
    pods = cluster.pods
    for pod_name, pod in pods.items():
        if not pod.spec.env.get(MANAGER_ENV):
            continue
        if registry.functions.instance(pod_name) is None:
            lost += 1
    for function in registry.functions.all():
        for instance_name in function.instances:
            if instance_name not in pods:
                lost += 1
    return double, lost


def run_registry_chaos_mode(mode: str,
                            spec: Optional[RegistryChaosSpec] = None
                            ) -> RegistryChaosModeResult:
    """Run the registry-crash scenario under one durability arm."""
    assert mode in ("durable", "replicated")
    spec = spec or RegistryChaosSpec()
    timing = spec.load_timing()
    env = Environment()
    testbed = build_testbed(
        env, node_specs=_node_specs(spec.boards),
        library=extended_library(), functional=False, scrape_interval=1.0,
    )
    gateway = Gateway(env, testbed.cluster, policy=spec.gateway)
    # The store is passed explicitly so the experiment compares both arms
    # in one process — an inherited REPRO_REGISTRY cannot override either.
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper, store=RegistryStore(),
        snapshot_interval=spec.snapshot_interval,
    )
    registry.durability = mode
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    controller = FunctionController(env, testbed.cluster, gateway, router,
                                    self_heal=True)
    registry.migrator = controller.migrate
    registry.enable_health(network=testbed.network, policy=spec.health)
    standby = None
    if mode == "replicated":
        standby = WarmStandby(env, registry, testbed.network,
                              dict(testbed.managers), spec.standby)

    tenants = [f"sobel-{index}" for index in range(spec.tenants)]

    def deploy_tenants():
        for name in tenants:
            yield from gateway.deploy(FunctionSpec(
                name=name,
                app_factory=SobelApp,
                device_query=DeviceQuery(vendor="Intel", accelerator="sobel"),
                runtime="blastfunction",
            ))
            yield from controller.wait_ready(name)

    env.run(until=env.process(deploy_tenants()))

    measure_start = env.now + timing.warmup
    hard_end = measure_start + timing.duration
    crash_at = measure_start + spec.crash_offset

    injector = RegistryCrash(registry)
    script = FaultScript(env)
    if mode == "durable":
        script.crash_registry(injector, at=crash_at,
                              restart_after=spec.restart_after)
    else:
        # The warm standby detects the expired leader lease on its own.
        script.crash_registry(injector, at=crash_at)
    probe_target = testbed.managers[sorted(testbed.managers)[0]]
    script.at(crash_at + spec.probe_offset, "zombie probe",
              lambda: injector.zombie_probe(probe_target))
    script.arm()

    def storm_deployer():
        for wave in spec.waves:
            yield env.timeout(measure_start + wave.offset - env.now)
            yield from gateway.deploy(FunctionSpec(
                name=wave.name,
                app_factory=wave.app_factory,
                device_query=DeviceQuery(vendor="Intel",
                                         accelerator=wave.accelerator),
                runtime="blastfunction",
            ))

    def storm_load(wave: StormWave):
        yield env.timeout(measure_start + spec.storm_load_offset - env.now)
        stats = yield from run_load(
            env, gateway, wave.name, rate=spec.storm_rate,
            duration=hard_end - env.now, warmup=0.0, connections=1,
        )
        return stats

    tenant_processes = [
        env.process(run_load(
            env, gateway, name, rate=spec.tenant_rate,
            duration=timing.duration, warmup=timing.warmup, connections=1,
        ))
        for name in tenants
    ]
    storm_processes = [env.process(storm_load(w)) for w in spec.waves]
    deployer = env.process(storm_deployer())

    def main():
        results = yield AllOf(
            env, tenant_processes + storm_processes + [deployer]
        )
        return [results[p] for p in tenant_processes + storm_processes]

    stats_list = run_guarded(
        env, until=env.process(main()),
        deadline=timing.warmup + timing.duration + 120.0,
        what=f"registry chaos ({mode})",
    )
    # Let in-flight retries, heals and evacuations settle, then stop the
    # perpetual processes so nothing is left unaccounted.
    env.run(until=env.now + 3.0)
    if standby is not None:
        standby.stop()
    if registry.health is not None:
        registry.health.stop()
    env.run(until=env.now + 1.0)

    result = RegistryChaosModeResult(mode=mode, crash_at=crash_at)
    for stats in stats_list:
        result.stats.append(stats)
        result.sent += stats.sent
        result.completed += stats.completed
        result.errors += stats.errors
    resolved = result.completed + result.errors
    result.availability = result.completed / resolved if resolved else 0.0
    latencies = [l for s in stats_list for l in s.latencies]
    result.p50_ms = 1e3 * percentile(latencies, 50) if latencies else 0.0
    result.p99_ms = 1e3 * percentile(latencies, 99) if latencies else 0.0

    result.blackout_seconds = registry.blackout_seconds
    result.epoch = registry.epoch
    result.replayed_ops = registry.replayed_ops
    result.replay_applied = registry.replay_applied
    result.denied_admissions = registry.denied_admissions
    result.missed_watch_events = registry.missed_watch_events
    result.deploy_retries = sum(
        f.deploy_retries for f in gateway.functions.values()
    )
    result.heal_retries = controller.heal_retries
    result.heals = controller.heals
    result.wal_appends = registry.store.appends
    result.snapshots_taken = registry.store.snapshots_taken
    result.reconciliation = dict(registry.reconciliation)
    result.fenced_commands = sum(
        m.fenced_commands for m in testbed.managers.values()
    )
    result.zombie_fenced = injector.zombie_fenced
    result.zombie_accepted = injector.zombie_accepted
    if standby is not None:
        result.takeovers = standby.takeovers
        result.records_tailed = standby.records_tailed
        result.standby_bytes = standby.bytes_tailed
        result.lag_records_at_takeover = standby.lag_records_at_takeover
    result.double_allocations, result.lost_instances = check_invariants(
        registry, testbed.cluster
    )
    result.hung_events = sum(len(c._machines) for c in router.connections)
    return result


def run_registry_chaos(spec: Optional[RegistryChaosSpec] = None
                       ) -> RegistryChaosResult:
    """Run the crash scenario under both recovery arms."""
    spec = spec or RegistryChaosSpec()
    return RegistryChaosResult(
        spec=spec,
        durable=run_registry_chaos_mode("durable", spec),
        replicated=run_registry_chaos_mode("replicated", spec),
    )


def render_registry_chaos(result: RegistryChaosResult) -> str:
    """Human-readable side-by-side of the two recovery arms."""
    rows = []
    durable, replicated = result.durable, result.replicated
    for label, attr in (
        ("requests sent", "sent"),
        ("completed", "completed"),
        ("errors", "errors"),
        ("availability", "availability"),
        ("p99 latency (ms)", "p99_ms"),
        ("blackout (s)", "blackout_seconds"),
        ("replayed WAL records", "replayed_ops"),
        ("denied admissions", "denied_admissions"),
        ("deploy retries absorbed", "deploy_retries"),
        ("stale-epoch fenced", "fenced_commands"),
        ("standby takeovers", "takeovers"),
        ("double allocations", "double_allocations"),
        ("lost instances", "lost_instances"),
    ):
        fmt = (lambda v: round(v, 4) if isinstance(v, float) else v)
        rows.append([label, fmt(getattr(durable, attr)),
                     fmt(getattr(replicated, attr))])
    return render_table(
        ["Metric", "durable (scripted restart)", "replicated (standby)"],
        rows,
        title="Registry chaos: control-plane crash mid-reconfiguration-storm",
    )

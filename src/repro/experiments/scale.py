"""Control-plane scale sweep: the paper's 3 boards grown to 1024.

The paper's testbed is three nodes with one FPGA each; this experiment
asks what the control plane costs when the same architecture serves a
fleet.  Each cell builds a cluster of N boards, deploys ``ceil(5N/3)``
functions (the paper's 5-functions-per-3-boards density) with a
Table-II-style mixed load — Sobel and MM functions interleaved, each
driven at its Table I "low" rate — and reports:

* **allocation latency** — mean wall clock of Algorithm 1 per admission,
  plus an in-situ micro-benchmark of the indexed allocator against the
  brute-force oracle on the exact same fleet state;
* **scrape cost** — mean wall clock of one metrics scrape over all N
  targets;
* **end-to-end latency** — p50/p99 over every request of the cell;
* **DES throughput** — events/sec during the load phase.

The cell runs in fleet mode: indexed allocation (the default), a shared
:class:`~repro.sim.TimerWheel` carrying both the scraper and the
coalesced heartbeat/lease protocol, and ring-buffer sample retention.
``python -m repro.experiments scale`` writes the sweep to
``BENCH_scale.json`` at the repo root; ``scripts/scale_smoke.py`` gates
CI regressions against the committed copy.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cluster import DeviceQuery, build_testbed
from ..core.registry import AcceleratorsRegistry
from ..core.registry.allocation import allocate
from ..core.remote_lib import ManagerAddress, PlatformRouter
from ..faults import HealthPolicy
from ..fpga.hwspec import GiB, HOST_I7_6700, PCIE_GEN3_X8, NodeSpec
from ..loadgen import percentile, run_load
from ..metrics import Scraper
from ..serverless import FunctionController, FunctionSpec, Gateway
from ..sim import AllOf, Environment, TimerWheel
from .config import TABLE1_RATES, LoadTiming, quick_mode
from .report import render_table
from .tables import ACCELERATORS, APP_FACTORIES

#: The paper's deployment density: 5 functions on 3 boards.
FUNCTIONS_PER_BOARD = 5.0 / 3.0

#: Cluster sizes of the full sweep (the paper's 3 plus fleet scales).
SIZES_FULL: Tuple[int, ...] = (3, 64, 256, 1024)
SIZES_QUICK: Tuple[int, ...] = (3, 64)

#: Shared measurement window of every cell (simulated seconds).  The
#: sweep compares *control-plane* cost across sizes, so the window is
#: deliberately short and identical for all cells.
SCALE_TIMING = LoadTiming(warmup=1.0, duration=3.0)

#: Micro-benchmark repetitions (the oracle's shrink with fleet size —
#: one brute-force allocation at 1024 boards costs milliseconds).
INDEXED_REPS = 200


@dataclass
class ScaleCell:
    """Measurements of one cluster size."""

    boards: int
    functions: int
    requests: int
    deploy_wall_s: float
    load_wall_s: float
    wall_s: float
    sim_events: int
    events_per_sec: float
    #: Mean Algorithm 1 latency over the cell's real admissions.
    alloc_ms: float
    allocations: int
    migrations: int
    #: In-situ micro-benchmark on the final fleet state.
    indexed_alloc_us: float
    oracle_alloc_us: float
    alloc_speedup: float
    #: Mean wall clock of one scrape over all targets.
    scrape_ms: float
    scrapes: int
    p50_ms: float
    p99_ms: float

    def to_record(self) -> dict:
        return {
            "boards": self.boards,
            "functions": self.functions,
            "requests": self.requests,
            "deploy_wall_s": round(self.deploy_wall_s, 3),
            "load_wall_s": round(self.load_wall_s, 3),
            "wall_s": round(self.wall_s, 3),
            "sim_events": self.sim_events,
            "events_per_sec": round(self.events_per_sec),
            "alloc_ms": round(self.alloc_ms, 4),
            "allocations": self.allocations,
            "migrations": self.migrations,
            "indexed_alloc_us": round(self.indexed_alloc_us, 2),
            "oracle_alloc_us": round(self.oracle_alloc_us, 2),
            "alloc_speedup": round(self.alloc_speedup, 1),
            "scrape_ms": round(self.scrape_ms, 4),
            "scrapes": self.scrapes,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


def _node_specs(boards: int) -> List[NodeSpec]:
    """A homogeneous worker fleet (node 0 doubles as the master)."""
    return [
        NodeSpec(
            name=f"n{index:04d}",
            host=HOST_I7_6700,
            pcie=PCIE_GEN3_X8,
            memory_bytes=32 * GiB,
            is_master=(index == 0),
        )
        for index in range(boards)
    ]


def _workload_plan(functions: int) -> List[Tuple[str, str, float]]:
    """``(name, use_case, rate)`` per function: Sobel/MM interleaved,
    Table I "low" rates cycled within each use case."""
    plan: List[Tuple[str, str, float]] = []
    counters = {"sobel": 0, "mm": 0}
    for index in range(functions):
        use_case = "sobel" if index % 2 == 0 else "mm"
        rates = TABLE1_RATES[use_case]["low"]
        rate = rates[counters[use_case] % len(rates)]
        counters[use_case] += 1
        plan.append((f"{use_case}-{index}", use_case, float(rate)))
    return plan


def _bench_allocators(registry: AcceleratorsRegistry,
                      boards: int) -> Tuple[float, float]:
    """Time indexed vs brute-force Algorithm 1 on the live fleet state.

    Both arms answer the same query against the same Devices Service /
    Metrics Gatherer contents; neither mutates anything.  The oracle arm
    includes rebuilding the :class:`DeviceView` list — that *is* the
    brute-force path's per-allocation cost.
    """
    query = DeviceQuery(vendor="Intel", accelerator="sobel")
    assert registry.index is not None
    registry._refresh_stale(registry.env.now)

    start = _time.perf_counter()
    for _ in range(INDEXED_REPS):
        registry.index.allocate(query, "")
    indexed_us = (_time.perf_counter() - start) / INDEXED_REPS * 1e6

    oracle_reps = max(3, min(100, 30_000 // boards))
    start = _time.perf_counter()
    for _ in range(oracle_reps):
        allocate(query, "", registry.device_views(),
                 registry.metrics_order, registry.metrics_filters)
    oracle_us = (_time.perf_counter() - start) / oracle_reps * 1e6
    return indexed_us, oracle_us


def run_scale_cell(boards: int,
                   timing: Optional[LoadTiming] = None) -> ScaleCell:
    """Build, deploy and drive one cluster size; return its measurements."""
    timing = timing or SCALE_TIMING
    cell_start = _time.perf_counter()
    env = Environment()
    testbed = build_testbed(env, node_specs=_node_specs(boards),
                            with_scraper=False)

    # Fleet mode: one timer wheel carries the scraper (1 s) and the
    # coalesced heartbeat/lease protocol (0.5 s tick).
    wheel = TimerWheel(env, tick=0.5)
    scraper = Scraper(env, interval=1.0, retention=60.0, wheel=wheel)
    testbed.scraper = scraper
    for manager in testbed.managers.values():
        scraper.add_target(manager.name, manager.metrics,
                           node=manager.node.name, device=manager.board.name)

    gateway = Gateway(env, testbed.cluster)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate
    registry.enable_health(
        network=testbed.network,
        policy=HealthPolicy(heartbeat_interval=0.5, lease_timeout=2.0,
                            coalesce=True),
        wheel=wheel,
    )

    functions = max(1, round(boards * FUNCTIONS_PER_BOARD))
    plan = _workload_plan(functions)

    def deploy_one(name: str, use_case: str):
        yield from gateway.deploy(FunctionSpec(
            name=name,
            app_factory=APP_FACTORIES[use_case],
            device_query=DeviceQuery(
                vendor="Intel", accelerator=ACCELERATORS[use_case]
            ),
            runtime="blastfunction",
        ))

    deploy_start = _time.perf_counter()
    deploys = [
        env.process(deploy_one(name, use_case))
        for name, use_case, _rate in plan
    ]

    def wait_all():
        yield AllOf(env, deploys)
        for name, _use_case, _rate in plan:
            yield from controller.wait_ready(name)

    env.run(until=env.process(wait_all()))
    deploy_wall = _time.perf_counter() - deploy_start

    eid_before = env._eid
    load_start = _time.perf_counter()
    load_processes = [
        env.process(run_load(
            env, gateway, name, rate=rate, duration=timing.duration,
            warmup=timing.warmup, connections=1,
        ))
        for name, _use_case, rate in plan
    ]

    def main():
        results = yield AllOf(env, load_processes)
        return [results[p] for p in load_processes]

    stats_list = env.run(until=env.process(main()))
    load_wall = _time.perf_counter() - load_start
    sim_events = env._eid - eid_before

    latencies = [l for stats in stats_list for l in stats.latencies]
    requests = sum(stats.completed for stats in stats_list)
    indexed_us, oracle_us = _bench_allocators(registry, boards)

    return ScaleCell(
        boards=boards,
        functions=functions,
        requests=requests,
        deploy_wall_s=deploy_wall,
        load_wall_s=load_wall,
        wall_s=_time.perf_counter() - cell_start,
        sim_events=sim_events,
        events_per_sec=sim_events / load_wall if load_wall else 0.0,
        alloc_ms=(
            registry.alloc_wall / registry.allocations * 1e3
            if registry.allocations else 0.0
        ),
        allocations=registry.allocations,
        migrations=registry.migrations,
        indexed_alloc_us=indexed_us,
        oracle_alloc_us=oracle_us,
        alloc_speedup=oracle_us / indexed_us if indexed_us else 0.0,
        scrape_ms=(
            scraper.scrape_wall / scraper.scrape_count * 1e3
            if scraper.scrape_count else 0.0
        ),
        scrapes=scraper.scrape_count,
        p50_ms=1e3 * percentile(latencies, 50) if latencies else 0.0,
        p99_ms=1e3 * percentile(latencies, 99) if latencies else 0.0,
    )


def run_scale_sweep(sizes: Optional[Sequence[int]] = None,
                    timing: Optional[LoadTiming] = None) -> List[ScaleCell]:
    """Run every cell of the sweep (quick mode stops at 64 boards)."""
    if sizes is None:
        sizes = SIZES_QUICK if quick_mode() else SIZES_FULL
    return [run_scale_cell(boards, timing=timing) for boards in sizes]


def render_scale(cells: List[ScaleCell]) -> str:
    rows = [
        [cell.boards, cell.functions, cell.requests,
         cell.alloc_ms, cell.indexed_alloc_us, cell.oracle_alloc_us,
         cell.alloc_speedup, cell.scrape_ms,
         cell.p50_ms, cell.p99_ms,
         round(cell.events_per_sec / 1e3, 1), round(cell.wall_s, 1)]
        for cell in cells
    ]
    return render_table(
        ["Boards", "Funcs", "Reqs", "Alloc ms", "Idx µs", "Oracle µs",
         "Speedup", "Scrape ms", "p50 ms", "p99 ms", "kEv/s", "Wall s"],
        rows,
        title="Scale sweep: control-plane cost vs cluster size",
    )


def write_bench_json(cells: List[ScaleCell], path) -> None:
    """Persist the sweep as ``BENCH_scale.json`` (the CI smoke baseline)."""
    import json
    import platform

    payload = {
        "python": platform.python_version(),
        "timing": {"warmup_s": SCALE_TIMING.warmup,
                   "duration_s": SCALE_TIMING.duration},
        "cells": {str(cell.boards): cell.to_record() for cell in cells},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")

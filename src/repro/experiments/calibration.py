"""Calibration self-check: measure every model constant against its anchor.

``python -m repro.experiments calibration`` measures each calibrated
quantity with a micro-simulation and prints it next to the published
anchor it was pinned to (see EXPERIMENTS.md).  If a refactor ever skews a
timing path, this table shows exactly which constant drifted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..core.device_manager import DeviceManager
from ..core.remote_lib import remote_platform
from ..fpga import FPGABoard, HOST_I7_6700, standard_library
from ..kernels import MatrixMultiplyKernel, SobelKernel
from ..kernels.pipecnn import ConvKernel, LRNKernel, PoolKernel
from ..kernels.alexnet import alexnet_layers
from ..ocl import Context
from ..rpc import GrpcTransport, Network, ShmTransport
from ..sim import Environment
from .report import render_table

GiB = 1024 ** 3


@dataclass(frozen=True)
class Anchor:
    """One calibrated quantity and its provenance."""

    name: str
    source: str            # where the anchor comes from in the paper
    expected: float        # anchor value (seconds)
    measure: Callable[[], float]


def _measure_pcie_1gb() -> float:
    env = Environment()
    board = FPGABoard(env, functional=False)
    buffer = board.allocate(GiB)

    def flow():
        yield from board.dma_write(buffer, GiB)

    env.run(until=env.process(flow()))
    return env.now


def _measure_shm_2gb_copy() -> float:
    env = Environment()
    network = Network(env)
    host = network.host("B", HOST_I7_6700)
    transport = ShmTransport(env, network, host, host)
    env.run(until=env.process(transport.data_to_server(2 * GiB)))
    return env.now


def _measure_grpc_1gb() -> float:
    env = Environment()
    network = Network(env)
    host = network.host("B", HOST_I7_6700)
    transport = GrpcTransport(env, network, host, host)
    env.run(until=env.process(transport.data_to_server(GiB)))
    return env.now


def _measure_control_roundtrip() -> float:
    env = Environment()
    network = Network(env)
    host = network.host("B", HOST_I7_6700)
    transport = GrpcTransport(env, network, host, host)

    def flow():
        yield from transport.control_to_server()
        yield from transport.control_to_client()

    env.run(until=env.process(flow()))
    return env.now


def _measure_remote_min_rtt() -> float:
    """Blocking write+read of 1 KB through the full remote stack."""
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, functional=False)
    manager = DeviceManager(env, "dm-B", board, library, network, node)
    elapsed = {}

    def flow():
        platform = yield from remote_platform(
            env, "cal", node, manager, network, library
        )
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(1024)
        start = env.now
        yield from queue.write_buffer(buffer, nbytes=512)
        yield from queue.read_buffer(buffer, nbytes=512)
        elapsed["rtt"] = env.now - start

    env.run(until=env.process(flow()))
    return elapsed["rtt"]


def _alexnet_device_time() -> float:
    conv, pool, lrn = ConvKernel(), PoolKernel(), LRNKernel()
    total = 0.0
    for layer in alexnet_layers():
        spec = layer.conv
        total += conv.duration({
            "in_channels": spec.in_channels, "in_size": spec.in_size,
            "out_channels": spec.out_channels, "out_size": spec.out_size,
            "kernel": spec.kernel, "stride": spec.stride, "pad": spec.pad,
            "groups": spec.groups, "relu": int(spec.relu),
        })
        if layer.pool:
            total += pool.duration({
                "channels": layer.pool.channels,
                "in_size": layer.pool.in_size,
                "out_size": layer.pool.out_size,
                "kernel": layer.pool.kernel, "stride": layer.pool.stride,
            })
        if layer.lrn:
            total += lrn.duration({
                "channels": layer.lrn.channels, "size": layer.lrn.size,
                "local_size": layer.lrn.local_size,
                "alpha": layer.lrn.alpha, "beta": layer.lrn.beta,
                "k": layer.lrn.k,
            })
    return total


ANCHORS: List[Anchor] = [
    Anchor("PCIe gen3 x8, 1 GiB DMA",
           "Fig. 4(a): native 2 GB ≈ 0.316 s (both directions)",
           GiB / 6.8e9, _measure_pcie_1gb),
    Anchor("shm copy, 2 GiB",
           "Fig. 4(a): 'maximum overhead of 155 ms when transferring 2GBs'",
           0.155, _measure_shm_2gb_copy),
    Anchor("gRPC data plane, 1 GiB",
           "Fig. 4(a): gRPC ≈ 4× native (3 copy-equivalents + protobuf)",
           0.45, _measure_grpc_1gb),
    Anchor("control message round trip",
           "Fig. 4: BlastFunction minimum RTT ≈ 2 ms over ~4 messages",
           0.5e-3, _measure_control_roundtrip),
    Anchor("remote min RTT (1 KB write+read)",
           "Fig. 4(b,c): BlastFunction minimum RTT ~2 ms",
           2e-3, _measure_remote_min_rtt),
    Anchor("Sobel kernel, 1920×1080",
           "Fig. 4(b): native 14.53 ms minus transfers",
           11.8e-3,
           lambda: SobelKernel().duration({"width": 1920, "height": 1080})),
    Anchor("MM kernel, 4096³",
           "Fig. 4(c): native 3.571 s minus transfers",
           3.54,
           lambda: MatrixMultiplyKernel().duration(
               {"m": 4096, "n": 4096, "k": 4096})),
    Anchor("AlexNet device time per inference",
           "Table IV: native ≈ 94 ms latency ≈ device + host",
           0.085, _alexnet_device_time),
    Anchor("full reconfiguration",
           "Arria 10 full-device programming (vendor-typical)",
           2.5,
           lambda: _measure_reconfiguration()),
]


def _measure_reconfiguration() -> float:
    env = Environment()
    board = FPGABoard(env, functional=False)
    env.run(until=env.process(
        board.program(standard_library().get("sobel"))
    ))
    return env.now


def run_calibration() -> tuple:
    """Measure every anchor; returns (rendered table, records)."""
    rows = []
    records = []
    for anchor in ANCHORS:
        measured = anchor.measure()
        deviation = (measured - anchor.expected) / anchor.expected
        rows.append([
            anchor.name,
            anchor.expected * 1e3,
            measured * 1e3,
            f"{100 * deviation:+.1f}%",
            anchor.source,
        ])
        records.append({
            "name": anchor.name,
            "expected_seconds": anchor.expected,
            "measured_seconds": measured,
            "relative_deviation": deviation,
            "source": anchor.source,
        })
    text = render_table(
        ["Quantity", "Anchor ms", "Measured ms", "Δ", "Provenance"],
        rows,
        title="Calibration self-check (anchors from the paper's Fig. 4 / "
              "Table IV)",
    )
    return text, records

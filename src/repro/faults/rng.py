"""Deterministic random stream for fault decisions.

The fault plane must be bit-reproducible: two runs with the same seed make
exactly the same drop/delay/duplicate decisions in the same order.  The
stdlib ``random`` module is global mutable state that other code could
touch, so faults draw from their own linear congruential generator —
the same approach the load generator uses for arrival jitter.
"""

from __future__ import annotations

_MULTIPLIER = 6364136223846793005
_INCREMENT = 1442695040888963407
_MASK = (1 << 64) - 1


class FaultRng:
    """A seeded 64-bit LCG yielding floats in ``[0, 1)``.

    Cheap (one multiply-add per draw), dependency-free, and isolated: every
    plane/scenario owns its own stream, so adding one fault source never
    perturbs the decisions of another.
    """

    __slots__ = ("_state", "seed")

    def __init__(self, seed: int = 1):
        self.seed = int(seed)
        # Scramble the seed so nearby seeds diverge immediately.
        self._state = (self.seed * _MULTIPLIER + _INCREMENT) & _MASK

    def random(self) -> float:
        """Next float in ``[0, 1)``."""
        self._state = (self._state * _MULTIPLIER + _INCREMENT) & _MASK
        return (self._state >> 33) / float(1 << 31)

    def randint(self, bound: int) -> int:
        """Next int in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be > 0")
        return int(self.random() * bound) % bound

    def fork(self, stream: int) -> "FaultRng":
        """Derive an independent child stream (e.g. one per link or host)."""
        return FaultRng((self.seed * 1000003 + stream * 7919 + 17) & _MASK)

"""Scriptable fault scenarios driven from the DES clock.

A :class:`FaultScript` is a time-ordered list of fault actions — crash this
Device Manager at t=6, partition these hosts from t=4 to t=9, lock up that
board at t=12 — executed by a single driver process, so a scenario is fully
determined by its schedule (plus the fault plane's seed for probabilistic
message faults).

The convenience methods cover every injection point of the subsystem; raw
callables can be scheduled with :meth:`at` for anything else.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..sim import Environment
from .plane import NetworkFaultPlane


class FaultScript:
    """A deterministic, clock-driven schedule of fault injections."""

    def __init__(self, env: Environment):
        self.env = env
        self._actions: List[Tuple[float, int, str, Callable[[], Any]]] = []
        #: Log of (time, description) for every action executed.
        self.executed: List[Tuple[float, str]] = []
        self._armed = False

    # -- schedule construction ---------------------------------------------
    def at(self, time: float, description: str,
           action: Callable[[], Any]) -> "FaultScript":
        """Schedule ``action()`` at absolute simulation ``time``."""
        if self._armed:
            raise RuntimeError("cannot extend an armed fault script")
        self._actions.append((time, len(self._actions), description, action))
        return self

    def crash_manager(self, manager, at: float,
                      restart_after: Optional[float] = None) -> "FaultScript":
        """Crash a Device Manager; optionally restart it after a delay."""
        self.at(at, f"crash {manager.name}", manager.crash)
        if restart_after is not None:
            self.at(at + restart_after, f"restart {manager.name}",
                    manager.restart)
        return self

    def crash_registry(self, injector, at: float,
                       restart_after: Optional[float] = None
                       ) -> "FaultScript":
        """Kill the Accelerators Registry via a
        :class:`~repro.faults.registry_crash.RegistryCrash` injector;
        optionally schedule its snapshot+WAL restart after a delay."""
        self.at(at, "crash registry", injector.kill)
        if restart_after is not None:
            self.at(at + restart_after, "restart registry",
                    injector.restore)
        return self

    def kill_worker(self, manager, at: float, index: int = 0) -> "FaultScript":
        """Kill one worker process of a Device Manager."""
        return self.at(at, f"kill worker {index} of {manager.name}",
                       lambda: manager.kill_worker(index))

    def lock_board(self, board, at: float,
                   recover_after: Optional[float] = None) -> "FaultScript":
        """Lock up a board; optionally recover it after a delay."""
        self.at(at, f"lock up {board.name}", board.lock_up)
        if recover_after is not None:
            self.at(at + recover_after, f"recover {board.name}",
                    board.recover)
        return self

    def partition(self, plane: NetworkFaultPlane, a: str, b: str, at: float,
                  heal_after: Optional[float] = None) -> "FaultScript":
        """Partition two hosts; optionally heal the link after a delay."""
        self.at(at, f"partition {a}<->{b}", lambda: plane.partition(a, b))
        if heal_after is not None:
            self.at(at + heal_after, f"heal {a}<->{b}",
                    lambda: plane.heal(a, b))
        return self

    def isolate(self, plane: NetworkFaultPlane, host: str, at: float,
                rejoin_after: Optional[float] = None) -> "FaultScript":
        """Isolate a host from the network; optionally rejoin it later."""
        self.at(at, f"isolate {host}", lambda: plane.isolate(host))
        if rejoin_after is not None:
            self.at(at + rejoin_after, f"rejoin {host}",
                    lambda: plane.rejoin(host))
        return self

    def fail_node(self, cluster, name: str, at: float,
                  recover_after: Optional[float] = None) -> "FaultScript":
        """Fail a cluster node (tears down its pods); optionally recover."""
        self.at(at, f"fail node {name}", lambda: cluster.fail_node(name))
        if recover_after is not None:
            self.at(at + recover_after, f"recover node {name}",
                    lambda: cluster.recover_node(name))
        return self

    # -- execution ----------------------------------------------------------
    def arm(self):
        """Start the driver process; returns it (joinable)."""
        if self._armed:
            raise RuntimeError("fault script already armed")
        self._armed = True
        return self.env.process(self._drive())

    def _drive(self):
        for when, _order, description, action in sorted(self._actions):
            if when > self.env.now:
                yield self.env.timeout(when - self.env.now)
            action()
            self.executed.append((self.env.now, description))

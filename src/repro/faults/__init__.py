"""Deterministic fault injection and recovery policies.

Everything here is opt-in: a simulation that never installs a fault plane or
passes a recovery policy executes the exact same event sequence as a build
without this package (golden outputs stay bit-identical).
"""

from .plane import PASS, MessageVerdict, NetworkFaultPlane
from .policies import GatewayPolicy, HealthPolicy, RetryPolicy
from .registry_crash import RegistryCrash
from .rng import FaultRng
from .script import FaultScript

__all__ = [
    "FaultRng",
    "FaultScript",
    "GatewayPolicy",
    "HealthPolicy",
    "MessageVerdict",
    "NetworkFaultPlane",
    "PASS",
    "RegistryCrash",
    "RetryPolicy",
]

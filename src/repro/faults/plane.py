"""The network fault plane: message-level fault decisions.

Installed as ``network.faults`` on the RPC :class:`~repro.rpc.network.Network`
(``None`` by default — the disabled path is a single attribute check and the
simulation stays bit-identical to a build without fault injection).  When
installed, every control-message delivery and every unary reply consults
:meth:`NetworkFaultPlane.message_action`, which returns a verdict — drop,
delay, duplicate, or pass — drawn from a seeded stream so a whole chaos run
replays identically from its seed.

Partitions are deterministic: while two hosts are partitioned every message
between them drops regardless of the random stream (and without consuming
a draw, so healing a partition replays the rest of the run unchanged).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .rng import FaultRng


class MessageVerdict:
    """Outcome of one fault decision for one message."""

    __slots__ = ("drop", "delay", "duplicate")

    def __init__(self, drop: bool = False, delay: float = 0.0,
                 duplicate: bool = False):
        self.drop = drop
        self.delay = delay
        self.duplicate = duplicate

    def __repr__(self) -> str:
        return (f"MessageVerdict(drop={self.drop}, delay={self.delay}, "
                f"duplicate={self.duplicate})")


#: Shared no-fault verdict (hot path: avoid one allocation per message).
PASS = MessageVerdict()
_DROP = MessageVerdict(drop=True)


class NetworkFaultPlane:
    """Seeded drop/delay/duplicate/partition decisions for control messages.

    One uniform draw per message classifies it against the cumulative rate
    bands ``[drop | duplicate | delay | pass]``; rates are fractions in
    ``[0, 1]`` and their sum must not exceed 1.
    """

    def __init__(
        self,
        seed: int = 1,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay: float = 1e-3,
    ):
        if min(drop_rate, duplicate_rate, delay_rate) < 0:
            raise ValueError("fault rates must be non-negative")
        if drop_rate + duplicate_rate + delay_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        self.rng = FaultRng(seed)
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.delay = delay
        #: Unordered host pairs currently partitioned from each other.
        self._partitions: Set[FrozenSet[str]] = set()
        #: Hosts currently isolated from everyone.
        self._isolated: Set[str] = set()
        self.counters: Dict[str, int] = {
            "delivered": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "partitioned": 0,
        }

    # -- partitions ---------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Sever the link between hosts ``a`` and ``b`` (both directions)."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore the link between hosts ``a`` and ``b``."""
        self._partitions.discard(frozenset((a, b)))

    def isolate(self, host: str) -> None:
        """Cut a host off from every other host."""
        self._isolated.add(host)

    def rejoin(self, host: str) -> None:
        """Reconnect an isolated host."""
        self._isolated.discard(host)

    def is_partitioned(self, src: str, dst: str) -> bool:
        if src == dst:
            return False  # loopback never partitions
        if src in self._isolated or dst in self._isolated:
            return True
        return frozenset((src, dst)) in self._partitions

    # -- per-message decision ----------------------------------------------
    def message_action(self, src: str, dst: str) -> MessageVerdict:
        """Decide the fate of one control message from ``src`` to ``dst``."""
        if self.is_partitioned(src, dst):
            self.counters["partitioned"] += 1
            self.counters["dropped"] += 1
            return _DROP
        if self.drop_rate or self.duplicate_rate or self.delay_rate:
            draw = self.rng.random()
            if draw < self.drop_rate:
                self.counters["dropped"] += 1
                return _DROP
            if draw < self.drop_rate + self.duplicate_rate:
                self.counters["delivered"] += 1
                self.counters["duplicated"] += 1
                return MessageVerdict(duplicate=True)
            if draw < self.drop_rate + self.duplicate_rate + self.delay_rate:
                self.counters["delivered"] += 1
                self.counters["delayed"] += 1
                return MessageVerdict(delay=self.delay)
        self.counters["delivered"] += 1
        return PASS

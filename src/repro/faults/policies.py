"""Recovery policies: every knob of the failure-handling machinery.

These dataclasses are the single place where timeouts, retry budgets and
lease parameters live.  All recovery is **opt-in**: components take a policy
of ``None`` by default and then behave exactly as a build without the fault
plane (same event sequence, bit-identical goldens).  Passing a policy arms
the corresponding machinery:

* :class:`RetryPolicy` — RPC deadlines + exponential backoff + the per-op
  deadline guard of the Remote OpenCL Library
  (:class:`~repro.core.remote_lib.connection.Connection`);
* :class:`HealthPolicy` — heartbeat/lease protocol between Device Managers
  and the Accelerators Registry
  (:class:`~repro.core.registry.health.HealthMonitor`);
* :class:`GatewayPolicy` — per-request retry budget, circuit breaker and
  graceful degradation at the serverless gateway
  (:class:`~repro.serverless.gateway.Gateway`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Deadlines and retries for the Remote OpenCL Library's control plane."""

    #: Per-attempt deadline of a unary call, seconds (gRPC deadline).
    deadline: float = 1.0
    #: Total attempts per unary call (first try + retries).  Retries reuse
    #: the original request id, so the Device Manager's reply cache makes
    #: them idempotent.
    max_attempts: int = 4
    #: First retry backoff, seconds; doubles (``backoff_factor``) per retry.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: Deadline for a streamed command-queue operation to reach a terminal
    #: notification (OP_COMPLETE / OP_FAILED).  Expiry resolves the event
    #: state machine to a structured error — ops never deadlock.  ``None``
    #: disables the guard.
    op_deadline: Optional[float] = 5.0

    def backoff(self, attempt: int) -> float:
        """Backoff to sleep after failed attempt number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor ** attempt


@dataclass(frozen=True)
class HealthPolicy:
    """Heartbeat/lease parameters of the Registry's health monitor."""

    #: Device Managers renew their lease this often, seconds.
    heartbeat_interval: float = 0.5
    #: A lease older than this marks the device dead (its instances are
    #: migrated); a fresh heartbeat afterwards revives it.
    lease_timeout: float = 2.0
    #: Coalesce all heartbeat senders and the lease checker onto one shared
    #: periodic timer wheel instead of per-board DES timers and per-beat
    #: network messages.  Cuts the idle event volume from O(boards) to O(1)
    #: per interval — the fleet-scale mode.  Trade-off: coalesced
    #: heartbeats renew leases directly (healthy manager ⇒ renewed lease),
    #: so per-message network faults (loss, partition) no longer delay
    #: them; keep the default for fault-injection experiments.
    coalesce: bool = False


@dataclass(frozen=True)
class GatewayPolicy:
    """Resilience policy of the serverless gateway."""

    #: Retries after the first attempt of an invocation.
    retry_budget: int = 2
    #: First retry backoff, seconds; doubles per retry.
    retry_backoff: float = 0.05
    backoff_factor: float = 2.0
    #: Consecutive failures (per function) that trip the circuit breaker.
    breaker_threshold: int = 8
    #: Seconds the breaker stays open before admitting traffic again.
    breaker_cooldown: float = 2.0
    #: Graceful degradation: with no live instance, shed immediately
    #: (``True``) or queue the request until capacity returns (``False``,
    #: the default — the endpoint queue survives migrations).
    shed_when_unavailable: bool = False
    #: End-to-end deadline for one invocation attempt to produce a
    #: response, seconds (``None`` waits; recovery below the gateway is
    #: expected to resolve every request eventually).
    request_timeout: Optional[float] = None

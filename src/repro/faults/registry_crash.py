"""Registry fail-stop injector: kill the control plane, restart, probe.

Complements the PR 2 injectors (board lock-up, Device Manager crash,
message faults) with the one component they could not touch: the
Accelerators Registry itself.  :meth:`RegistryCrash.kill` fail-stops the
Registry (volatile services and health monitor die; the durable
:class:`~repro.core.registry.store.RegistryStore` survives, because it
models the disk, not the process) and remembers the dead incarnation's
fencing epoch.  :meth:`restore` restarts from snapshot + WAL replay, and
:meth:`zombie_probe` then impersonates the dead incarnation against a
Device Manager to verify the fence actually holds — the probe *must*
be rejected with a stale-epoch error.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class RegistryCrash:
    """Fail-stop crash (and scripted restart) of the Accelerators Registry."""

    def __init__(self, registry):
        self.registry = registry
        self.env = registry.env
        #: (time, event) log of injections and probes.
        self.log: List[Tuple[float, str]] = []
        #: Fencing epoch of the most recently killed incarnation; a probe
        #: replaying a command at this epoch must be fenced after restart.
        self.zombie_epoch: Optional[int] = None
        #: Zombie probes correctly rejected by Device Managers.
        self.zombie_fenced = 0
        #: Zombie probes wrongly accepted (should stay 0 — a double-
        #: allocation hazard if it ever is not).
        self.zombie_accepted = 0

    def kill(self) -> None:
        """Fail-stop the Registry, remembering its epoch for zombie probes."""
        if not self.registry.alive:
            return
        self.zombie_epoch = self.registry.epoch
        self.registry.crash()
        self.log.append((self.env.now, "registry killed"))

    def restore(self, resolver: Optional[Dict] = None, store=None):
        """Restart from the durable store; returns the recovery process."""
        process = self.registry.restart(resolver=resolver, store=store)
        if process is not None:
            self.log.append((self.env.now, "registry restarting"))
        return process

    def zombie_probe(self, manager) -> bool:
        """Replay a pre-crash-epoch command at a DM; True if it was fenced.

        Models the classic split-brain hazard: the old leader (or a client
        still holding its tokens) keeps issuing commands after a new
        incarnation took over.  ``sync_instances`` with an empty payload is
        deliberately chosen as the probe — if the fence leaked, it would
        overwrite the manager's instance view and invite double allocation.
        """
        from ..core.device_manager.manager import (
            DeviceManagerError,
            StaleEpochError,
        )

        if self.zombie_epoch is None:
            raise RuntimeError("no crash recorded; nothing to probe with")
        try:
            manager.registry_command(self.zombie_epoch, "sync_instances",
                                     [])
        except StaleEpochError:
            self.zombie_fenced += 1
            self.log.append(
                (self.env.now, f"zombie fenced at {manager.name}")
            )
            return True
        except DeviceManagerError:
            # The manager itself is down — not evidence either way.
            self.log.append(
                (self.env.now, f"zombie probe unanswered at {manager.name}")
            )
            return False
        self.zombie_accepted += 1
        self.log.append(
            (self.env.now, f"ZOMBIE ACCEPTED at {manager.name}")
        )
        return False

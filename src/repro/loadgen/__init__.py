"""HTTP load generator modelled on ``hey`` (https://github.com/rakyll/hey).

The paper load-tests every function "with one connection per function" at a
target requests-per-second.  ``hey``'s rate limiting is per-worker and
closed-loop: a worker never has more than one request in flight and sends
the next one no earlier than ``1/rate`` after the previous send.  This is
exactly the mechanism that produces the paper's *processed vs target* gaps:
once the response latency exceeds the send interval, throughput collapses
to ``1/latency``.
"""

from .hey import LoadStats, percentile, run_load

__all__ = ["LoadStats", "percentile", "run_load"]

"""Closed-loop, rate-limited load generation and latency statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..serverless.gateway import Gateway, InvocationError
from ..sim import AllOf, Environment


def _stable_hash(text: str) -> int:
    """Deterministic string hash (Python's builtin is salted per process)."""
    value = 2166136261
    for char in text.encode():
        value = ((value ^ char) * 16777619) & 0xFFFFFFFF
    return value


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); NaN for empty input."""
    if not values:
        return math.nan
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class LoadStats:
    """Result of one load run against one function endpoint."""

    function: str
    target_rate: float
    duration: float
    connections: int = 1
    sent: int = 0
    completed: int = 0
    errors: int = 0
    latencies: List[float] = field(default_factory=list)
    #: Time each in-window failed request spent before erroring (timeout,
    #: shed, instance death).  Kept separate so the success-latency columns
    #: stay comparable across runs; migration experiments fold these in to
    #: show the tail clients actually observe during a reconfiguration.
    error_latencies: List[float] = field(default_factory=list)

    @property
    def achieved_rate(self) -> float:
        """Processed requests per second (the paper's "Processed")."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies, q)

    @property
    def target_gap(self) -> float:
        """Relative shortfall vs the target rate (paper's difference %)."""
        if self.target_rate <= 0:
            return 0.0
        return max(0.0, 1.0 - self.achieved_rate / self.target_rate)

    def merge(self, other: "LoadStats") -> "LoadStats":
        """Aggregate another run's counters into this one (same duration)."""
        self.sent += other.sent
        self.completed += other.completed
        self.errors += other.errors
        self.latencies.extend(other.latencies)
        self.error_latencies.extend(other.error_latencies)
        self.target_rate += other.target_rate
        return self


def run_load(
    env: Environment,
    gateway: Gateway,
    function: str,
    rate: float,
    duration: float,
    connections: int = 1,
    payload: Optional[Dict] = None,
    warmup: float = 0.0,
):
    """Process: drive a function at ``rate`` rq/s for ``duration`` seconds.

    ``hey``-style: ``connections`` closed-loop workers, each rate-capped at
    ``rate / connections``.  Requests issued during ``warmup`` are excluded
    from the statistics.  Returns :class:`LoadStats`.
    """
    if rate <= 0 or duration <= 0 or connections <= 0:
        raise ValueError("rate, duration and connections must be positive")

    stats = LoadStats(function=function, target_rate=rate, duration=duration,
                      connections=connections)
    measure_start = env.now + warmup
    end = measure_start + duration
    per_worker_rate = rate / connections
    interval = 1.0 / per_worker_rate

    def worker(offset: float):
        # Seeded LCG for ±5% send-spacing jitter: breaks the harmonic
        # phase-locking a perfectly deterministic closed loop exhibits when
        # target rates share common divisors (real HTTP stacks jitter far
        # more than this).
        lcg_state = (_stable_hash(function) + 12345) or 1
        yield env.timeout(offset)
        next_slot = env.now
        while env.now < end:
            if env.now < next_slot:
                yield env.timeout(next_slot - env.now)
            if env.now >= end:
                break
            sent_at = env.now
            in_window = sent_at >= measure_start
            if in_window:
                stats.sent += 1
            lcg_state = (lcg_state * 1103515245 + 12345) % (1 << 31)
            jitter = 1.0 + 0.05 * (2.0 * lcg_state / (1 << 31) - 1.0)
            next_slot = sent_at + interval * jitter
            try:
                latency, _result = yield from gateway.invoke(
                    function, payload
                )
            except InvocationError:
                if in_window:
                    stats.errors += 1
                    stats.error_latencies.append(env.now - sent_at)
                continue
            if in_window and env.now <= end:
                stats.completed += 1
                stats.latencies.append(latency)

    # Spread workers across the send interval, plus a deterministic
    # per-target phase: target rates in the paper's configurations share
    # harmonics (5/10/15/20 rq/s), and without jitter every endpoint would
    # fire in lockstep at the common epochs — an artifact real HTTP load
    # generators do not exhibit.
    phase = (_stable_hash(function) % 997) / 997.0 * interval
    workers = [
        env.process(worker(phase + index * interval / max(connections, 1)))
        for index in range(connections)
    ]
    yield AllOf(env, workers)
    return stats

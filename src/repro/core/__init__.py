"""BlastFunction's three components — the paper's contribution.

* :mod:`repro.core.remote_lib` — the Remote OpenCL Library (client side);
* :mod:`repro.core.device_manager` — one Device Manager per FPGA board;
* :mod:`repro.core.registry` — the Accelerators Registry (cluster master).
"""

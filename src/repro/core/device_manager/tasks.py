"""Tasks: the atomic unit of execution of BlastFunction.

A *task* is "a sequence of operations that should execute atomically on the
FPGA" (Section III-B).  Command-queue calls append :class:`Operation`
objects to the client's open task; a flush (``clFlush``/``clFinish``/
``clEnqueueBarrier`` or any blocking call) closes the task and submits it to
the Device Manager's central FIFO queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Any, List, Optional

from ...sim import Environment, Event

_task_ids = count(1)


class OpType(enum.Enum):
    """Kinds of command-queue operations a task may contain."""

    WRITE = "write"
    READ = "read"
    COPY = "copy"
    KERNEL = "kernel"
    MARKER = "marker"


@dataclass
class Operation:
    """One device operation inside a task.

    ``tag`` is the client-side completion-queue tag (the pointer to the
    Remote Library event, per the paper); the Device Manager sends it back
    with every notification so the client can resume the right state
    machine.
    """

    type: OpType
    client: str
    queue_id: int
    tag: Any
    buffer_id: Optional[int] = None
    dst_buffer_id: Optional[int] = None   # copy destination
    nbytes: int = 0
    offset: int = 0
    dst_offset: int = 0
    kernel_id: Optional[int] = None
    kernel_args: Optional[List[Any]] = None
    #: Staged payload for writes (bytes, or None in timing-only runs).
    data: Optional[bytes] = None
    #: Triggered when a write's payload has been staged in the manager.
    data_ready: Optional[Event] = None
    #: Execution timestamps, stamped by the worker (for tracing).
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def needs_data(self) -> bool:
        return self.type is OpType.WRITE


@dataclass
class Task:
    """An atomic, in-order batch of operations from one client queue."""

    client: str
    queue_id: int
    id: int = field(default_factory=lambda: next(_task_ids))
    operations: List[Operation] = field(default_factory=list)
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def append(self, operation: Operation) -> None:
        if operation.client != self.client or operation.queue_id != self.queue_id:
            raise ValueError("operation belongs to a different task stream")
        self.operations.append(operation)

    def __len__(self) -> int:
        return len(self.operations)

    @property
    def empty(self) -> bool:
        return not self.operations


class TaskAccumulator:
    """Open tasks per (client, queue) awaiting a flush."""

    def __init__(self) -> None:
        self._open: dict[tuple[str, int], Task] = {}

    def add(self, operation: Operation) -> Task:
        """Append an operation to the client's open task (creating one)."""
        key = (operation.client, operation.queue_id)
        task = self._open.get(key)
        if task is None:
            task = Task(operation.client, operation.queue_id)
            self._open[key] = task
        task.append(operation)
        return task

    def flush(self, client: str, queue_id: int) -> Optional[Task]:
        """Close and return the open task, or None if it is empty/missing."""
        return self._open.pop((client, queue_id), None)

    def flush_client(self, client: str) -> List[Task]:
        """Close every open task of a client (used on disconnect)."""
        keys = [key for key in self._open if key[0] == client]
        return [self._open.pop(key) for key in keys]

    def open_count(self) -> int:
        return len(self._open)

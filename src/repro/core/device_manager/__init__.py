"""The Device Manager (server side of BlastFunction's sharing mechanism)."""

from . import protocol
from .manager import ClientSession, DeviceManager, DeviceManagerError
from .schedulers import (
    FIFOScheduler,
    PriorityScheduler,
    SJFScheduler,
    TaskScheduler,
    WFQScheduler,
    make_scheduler,
)
from .tasks import Operation, OpType, Task, TaskAccumulator

__all__ = [
    "ClientSession",
    "DeviceManager",
    "DeviceManagerError",
    "FIFOScheduler",
    "Operation",
    "OpType",
    "PriorityScheduler",
    "SJFScheduler",
    "Task",
    "TaskAccumulator",
    "TaskScheduler",
    "WFQScheduler",
    "make_scheduler",
    "protocol",
]

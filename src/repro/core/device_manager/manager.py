"""The Device Manager: time-sharing controller of one FPGA board.

Implements Section III-B of the paper:

* **per-client resource pools** (buffers, kernels) enforcing isolation;
* **context and information methods** served synchronously; board
  reconfiguration is the one blocking exception;
* **command-queue methods** accumulated into per-(client, queue) *tasks*;
  a flush submits the task to the central FIFO queue;
* a **worker** that pulls tasks and executes them on the FPGA in FIFO
  order, notifying the client's completion queue per operation;
* Prometheus-style metrics (FPGA time utilization, per-client busy time,
  task/op counters) for the Accelerators Registry's Metrics Gatherer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from ...fpga.bitstream import Bitstream, BitstreamLibrary
from ...fpga.board import (
    BoardError,
    BoardUnavailableError,
    FPGABoard,
    KernelFault,
    ReconfigurationError,
)
from ...fpga.ddr import DeviceBuffer, OutOfMemoryError, materialize
from ...metrics import MetricsRegistry
from ...ocl.errors import (
    CL_BUILD_PROGRAM_FAILURE,
    CL_DEVICE_MIGRATING,
    CL_DEVICE_NOT_AVAILABLE,
    CL_INVALID_BINARY,
    CL_INVALID_BUFFER_SIZE,
    CL_INVALID_KERNEL_NAME,
    CL_INVALID_MEM_OBJECT,
    CL_INVALID_OPERATION,
    CL_INVALID_VALUE,
    CL_MEM_OBJECT_ALLOCATION_FAILURE,
    CL_OUT_OF_RESOURCES,
    CL_STALE_REGISTRY_EPOCH,
)
from ...rpc import (
    Message,
    Network,
    NetworkHost,
    RpcEndpoint,
    RpcError,
    Transport,
    reply,
    reply_error,
    send_to_client,
)
from ...sim import AnyOf, Environment, Event, Interrupt
from . import protocol
from .schedulers import TaskScheduler, make_scheduler
from .tasks import Operation, OpType, Task, TaskAccumulator


class ClientSession:
    """Server-side state of one connected client (isolated resource pool)."""

    def __init__(self, name: str, transport: Transport,
                 completion_queue: RpcEndpoint):
        self.name = name
        self.transport = transport
        self.completion_queue = completion_queue
        self.buffers: Dict[int, DeviceBuffer] = {}
        self.kernels: Dict[int, tuple[str, str]] = {}
        self._next_kernel_id = 1
        self.connected = True

    def new_kernel_id(self) -> int:
        kernel_id = self._next_kernel_id
        self._next_kernel_id += 1
        return kernel_id


class _ParkedTask:
    """A worker's task held at an operation boundary during a drain.

    The migration plane may *steal* the unexecuted suffix of the task
    (``operations[index:]``) while the worker sleeps; the worker then
    skips the remainder on resume — those operations finish on the
    migration target instead.
    """

    __slots__ = ("task", "index", "stolen")

    def __init__(self, task: Task, index: int):
        self.task = task
        self.index = index
        self.stolen = False


class DeviceManagerError(RuntimeError):
    """Protocol/resource error raised while serving a client request.

    ``cl_code`` is the structured OpenCL error code surfaced to the
    client (``CL_INVALID_OPERATION`` when nothing more specific applies).
    """

    def __init__(self, message: str, cl_code: Optional[int] = None):
        super().__init__(message)
        self.cl_code = (cl_code if cl_code is not None
                        else CL_INVALID_OPERATION)


class StaleEpochError(DeviceManagerError):
    """A registry control command carried an out-of-date fencing epoch.

    Raised by :meth:`DeviceManager.registry_command` when a command's epoch
    is older than the highest this manager has seen — the sender is a
    zombie registry instance (pre-crash leader, or a deposed leader after a
    standby takeover) and must not be allowed to mutate board state.
    """

    def __init__(self, message: str):
        super().__init__(message, CL_STALE_REGISTRY_EPOCH)


def _error_code(exc: Exception) -> int:
    """Map a server-side failure to the OpenCL error code clients see."""
    code = getattr(exc, "cl_code", None)
    if code is not None:
        return code
    if isinstance(exc, OutOfMemoryError):
        return CL_MEM_OBJECT_ALLOCATION_FAILURE
    if isinstance(exc, KernelFault):
        return CL_OUT_OF_RESOURCES
    if isinstance(exc, ReconfigurationError):
        return CL_BUILD_PROGRAM_FAILURE
    if isinstance(exc, BoardUnavailableError):
        return CL_DEVICE_NOT_AVAILABLE
    if isinstance(exc, ValueError):
        return CL_INVALID_VALUE
    return CL_INVALID_OPERATION


class DeviceManager:
    """One Device Manager, bound to one board on one node."""

    #: Worker-side processing overhead per operation (dequeue, bookkeeping).
    OP_OVERHEAD = 20e-6

    def __init__(
        self,
        env: Environment,
        name: str,
        board: FPGABoard,
        library: BitstreamLibrary,
        network: Network,
        node: NetworkHost,
        reconfiguration_validator: Optional[Callable[[str, str], bool]] = None,
        batching: bool = True,
        workers: Optional[int] = None,
        scheduler: "str | TaskScheduler" = "fifo",
        data_timeout: Optional[float] = None,
    ):
        self.env = env
        self.name = name
        self.board = board
        self.library = library
        self.network = network
        self.node = node
        self.endpoint = RpcEndpoint(env, name)
        self.sessions: Dict[str, ClientSession] = {}
        self.accumulator = TaskAccumulator()
        #: Central task queue policy; the paper's system is FIFO.
        self.scheduler: TaskScheduler = (
            make_scheduler(scheduler, env)
            if isinstance(scheduler, str) else scheduler
        )
        self._pending_writes: Dict[Any, Operation] = {}
        #: Hook the Accelerators Registry installs to validate reconfiguration
        #: requests (client, bitstream) → allowed.
        self.reconfiguration_validator = reconfiguration_validator
        #: Multi-operation task batching (the paper's design).  When off,
        #: every command-queue call becomes its own single-op task — the
        #: op-at-a-time baseline the batching ablation compares against.
        self.batching = batching
        #: Observers called with each Operation after it executes (used by
        #: tests, tracing and the batching ablation).
        self.op_listeners: list[Callable[[Operation], None]] = []
        #: Observers called with each Task after it finishes.
        self.task_listeners: list[Callable[[Task], None]] = []
        #: How long a worker waits for a lost WRITE_DATA payload before
        #: failing the op (``None`` = forever, the pre-fault behavior).
        self.data_timeout = data_timeout
        #: False after :meth:`crash` until :meth:`restart`.
        self.alive = True
        self.crashes = 0
        #: Streamed messages dropped because no handler could serve them
        #: (unknown client after a restart, unknown write tag, ...).
        self.rejected_messages = 0
        #: Recent unary replies keyed by (client, request id): an at-least-
        #: once retry of an already-executed request replays its reply
        #: instead of re-executing — what makes client retries idempotent.
        self._replies: "OrderedDict[tuple, tuple]" = OrderedDict()

        # -- registry epoch fencing (see docs/failure_model.md) --------------
        #: Highest Registry fencing epoch observed on a control command;
        #: commands carrying an older epoch are rejected (zombie registry).
        self.registry_epoch = 0
        #: Stale-epoch control commands rejected by the fence.
        self.fenced_commands = 0
        #: Instance names the current-epoch Registry says belong here
        #: (last ``sync_instances`` payload; observability only).
        self.synced_instances: list = []

        # -- live-migration drain state (see docs/live_migration.md) --------
        #: True while the drain protocol holds the workers at an operation
        #: boundary.  While set, submits divert to ``_drain_backlog`` (the
        #: scheduler stays frozen), workers park between operations, and
        #: unary calls from ``migrating_clients`` are rejected with
        #: ``CL_DEVICE_MIGRATING`` for idempotent replay after the rebind.
        self.migrating = False
        #: Clients currently being checkpointed off this board.
        self.migrating_clients: set = set()
        #: Old transports of sessions already captured, kept so racing
        #: unary calls can still be answered with ``CL_DEVICE_MIGRATING``.
        self._migrating_transports: Dict[str, Transport] = {}
        self._drain_resume: Optional[Event] = None
        self._drain_backlog: list[Task] = []
        self._parked: list[_ParkedTask] = []
        self._busy_workers = 0
        self._drain_started = 0.0
        #: Cumulative drain / board-reprogramming seconds (also exported
        #: as gauges for the scraper and the chaos downtime ledger).
        self.drain_seconds = 0.0
        self.reconfiguration_seconds = 0.0

        self.metrics = MetricsRegistry(namespace="dm")
        self._m_busy = self.metrics.counter(
            "busy_seconds_total",
            "Seconds the FPGA spent computing OpenCL calls",
        )
        self._m_client_busy = self.metrics.counter(
            "client_busy_seconds_total",
            "Per-client FPGA busy seconds",
            labelnames=["client"],
        )
        self._m_ops = self.metrics.counter(
            "ops_total", "Operations executed", labelnames=["type"]
        )
        self._m_tasks = self.metrics.counter("tasks_total", "Tasks executed")
        self._m_clients = self.metrics.gauge(
            "connected_clients", "Currently connected clients"
        )
        self._m_queue_depth = self.metrics.gauge(
            "task_queue_depth", "Tasks waiting in the central queue"
        )
        self._m_task_latency = self.metrics.histogram(
            "task_latency_seconds", "Submit-to-finish task latency"
        )
        self._m_reconfigurations = self.metrics.counter(
            "reconfigurations_total", "Board reconfigurations performed"
        )
        self._m_drain_seconds = self.metrics.gauge(
            "board_drain_seconds",
            "Cumulative seconds workers spent quiesced for live migration",
        )
        self._m_reconf_seconds = self.metrics.gauge(
            "board_reconfiguration_seconds",
            "Cumulative seconds the board spent being reprogrammed",
        )
        board.add_busy_listener(self._on_board_activity)

        self._serve_proc = env.process(self._serve())
        # One worker per PR slot (space-sharing boards execute one task per
        # slot concurrently); classic boards get the single FIFO worker.
        worker_count = workers if workers is not None else board.slot_count
        self._worker_count = max(1, worker_count)
        self._worker_procs = [
            env.process(self._worker()) for _ in range(self._worker_count)
        ]

    # ------------------------------------------------------------------ API
    @property
    def connected_clients(self) -> int:
        return len(self.sessions)

    @property
    def configured_bitstream(self) -> Optional[str]:
        return self.board.bitstream.name if self.board.bitstream else None

    def registry_command(self, epoch: int, command: str,
                         payload=None):
        """Serve an epoch-fenced control command from the Registry.

        Every Registry (re)start bumps a fencing epoch; commands carry it
        and this manager rejects any epoch older than the highest seen
        (:class:`StaleEpochError`) — a zombie pre-crash leader cannot
        mutate board-side state after a recovery or standby takeover.
        """
        if not self.alive:
            raise DeviceManagerError(
                f"device manager {self.name!r} is down",
                CL_DEVICE_NOT_AVAILABLE,
            )
        if epoch < self.registry_epoch:
            self.fenced_commands += 1
            raise StaleEpochError(
                f"stale registry epoch {epoch} < {self.registry_epoch} "
                f"at {self.name!r}"
            )
        self.registry_epoch = max(self.registry_epoch, epoch)
        if command == "report_state":
            # Ground truth for post-crash reconciliation: what this board
            # is actually running and who is actually connected.
            return {
                "manager": self.name,
                "epoch": self.registry_epoch,
                "alive": self.alive and self.board.alive,
                "bitstream": self.configured_bitstream,
                "clients": sorted(self.sessions),
            }
        if command == "sync_instances":
            self.synced_instances = sorted(payload or [])
            return {"manager": self.name, "synced":
                    len(self.synced_instances)}
        raise DeviceManagerError(f"unknown registry command {command!r}")

    def stop(self) -> None:
        """Shut the manager down (used in tests and migrations)."""
        for process in (self._serve_proc, *self._worker_procs):
            if process.is_alive:
                process.interrupt("device manager stopped")

    def _on_board_activity(self, seconds: float, activity: str) -> None:
        """Board busy listener: account reconfiguration downtime."""
        if activity == "reconfigure":
            self.reconfiguration_seconds += seconds
            self._m_reconf_seconds.set(self.reconfiguration_seconds)

    # ------------------------------------------------------------------ drain
    #: Poll period while waiting for workers to reach an op boundary.  The
    #: poll (rather than event choreography) also closes the race where a
    #: scheduler get has already triggered but its worker has not resumed:
    #: that wakeup is scheduled before the first poll tick fires.
    DRAIN_POLL = 50e-6

    def drain(self):
        """Process: quiesce every worker at its next operation boundary.

        While draining, submits divert to ``_drain_backlog`` (the central
        queue stays frozen), workers park between operations — long tasks
        are preempted at op boundaries rather than run to completion — and
        the board goes quiet.  Returns once no worker is executing.
        Callers must pair this with :meth:`resume`.
        """
        if not self.migrating:
            self.migrating = True
            self._drain_resume = Event(self.env)
            self._drain_started = self.env.now
        while True:
            yield self.env.timeout(self.DRAIN_POLL)
            if self._busy_workers == 0:
                return

    def resume(self) -> None:
        """End a drain: requeue diverted submits and wake the workers."""
        if not self.migrating:
            return
        self.migrating = False
        self.migrating_clients.clear()
        self._migrating_transports.clear()
        self.drain_seconds += self.env.now - self._drain_started
        self._m_drain_seconds.set(self.drain_seconds)
        backlog, self._drain_backlog = self._drain_backlog, []
        for task in backlog:
            self.scheduler.push(task, self._estimate_task(task))
        self._m_queue_depth.set(len(self.scheduler))
        resume_event, self._drain_resume = self._drain_resume, None
        if resume_event is not None and not resume_event.triggered:
            resume_event.succeed()

    def steal_parked_ops(self, client: str) -> list:
        """Take the unexecuted operations parked workers hold for ``client``.

        Checkpoint capture for a task preempted mid-flight: the executed
        prefix stays accounted on the source, the suffix migrates.
        """
        stolen: list = []
        for parked in self._parked:
            if parked.task.client == client and not parked.stolen:
                stolen.extend(parked.task.operations[parked.index:])
                parked.stolen = True
        return stolen

    def take_client_tasks(self, client: str) -> list:
        """Pull every queued (and drain-diverted) task of ``client``."""
        tasks = list(self.scheduler.take_client(client))
        if self._drain_backlog:
            tasks += [t for t in self._drain_backlog if t.client == client]
            self._drain_backlog = [t for t in self._drain_backlog
                                   if t.client != client]
        self._m_queue_depth.set(len(self.scheduler))
        return tasks

    @property
    def healthy(self) -> bool:
        return self.alive

    def crash(self) -> None:
        """Fail-stop the manager process.

        Sessions, queued tasks, pending write payloads, cached replies and
        everything in flight to the server are lost, exactly as when a
        real manager process dies.  The board itself keeps its bitstream.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.stop()
        self.sessions.clear()
        self._m_clients.set(0)
        self._pending_writes.clear()
        self._replies.clear()
        self.accumulator = TaskAccumulator()
        self.scheduler.clear()
        self._m_queue_depth.set(0)
        # An in-progress drain dies with the process.
        self.migrating = False
        self.migrating_clients.clear()
        self._migrating_transports.clear()
        self._drain_backlog.clear()
        self._parked.clear()
        self._busy_workers = 0
        self._drain_resume = None
        # A dead server's socket drops whatever was in flight to it.
        self.endpoint.inbox.items.clear()

    def restart(self) -> None:
        """Start a fresh manager process on the same board.

        Clients must reconnect: their old sessions died with the crash.
        """
        if self.alive:
            return
        self.alive = True
        self._serve_proc = self.env.process(self._serve())
        self._worker_procs = [
            self.env.process(self._worker())
            for _ in range(self._worker_count)
        ]

    def kill_worker(self, index: int = 0) -> None:
        """Kill one worker process (its current task dies with it)."""
        process = self._worker_procs[index]
        if process.is_alive:
            process.interrupt("worker killed")

    # ------------------------------------------------------------- dispatcher
    #: Unary replies remembered for retry deduplication.
    REPLY_CACHE_SIZE = 512

    def _serve(self):
        """gRPC server loop: dispatch inbox messages by method group."""
        try:
            while True:
                message: Message = yield self.endpoint.inbox.get()
                # Capture the reply path up front: a handler may tear the
                # session down (DISCONNECT) before the reply goes out.
                reply_transport = None
                key = None
                if message.reply_to is not None:
                    session = self._session_of(message)
                    reply_transport = (
                        session.transport if session is not None
                        else message.payload.get("transport")
                    )
                    key = (message.sender, message.id)
                    cached = self._replies.get(key)
                    if cached is not None:
                        # At-least-once retry of an executed request:
                        # replay the reply, never re-execute.
                        self.env.process(self._replay_reply(message, cached))
                        continue
                if (self.migrating and message.reply_to is not None
                        and message.sender in self.migrating_clients):
                    # Racing submit from a client being checkpointed off
                    # this board: reject it; the connection replays the
                    # call against the rebound endpoint once the stream
                    # resumes (unary replies are idempotent either way).
                    transport = (reply_transport
                                 or self._migrating_transports.get(
                                     message.sender))
                    if transport is None:
                        self.rejected_messages += 1
                        continue
                    yield from reply_error(
                        transport, message,
                        DeviceManagerError(
                            f"client {message.sender!r} is live-migrating",
                            CL_DEVICE_MIGRATING,
                        ),
                    )
                    continue
                handler = self._handlers().get(message.method)
                if handler is None:
                    if message.reply_to is not None:
                        yield from reply_error(
                            reply_transport, message,
                            DeviceManagerError(
                                f"unknown method {message.method!r}"
                            ),
                        )
                    else:
                        self.rejected_messages += 1
                    continue
                try:
                    yield from handler(message)
                except Interrupt:
                    raise
                except (DeviceManagerError, BoardError) as exc:
                    # A bad request must not kill the server: answer unary
                    # calls with a structured error, drop stray streamed
                    # messages (e.g. from sessions lost in a crash).
                    if (message.reply_to is not None
                            and reply_transport is not None
                            and not message.reply_to.triggered):
                        yield from reply_error(
                            reply_transport, message,
                            RpcError(str(exc), code=_error_code(exc)),
                        )
                    else:
                        self.rejected_messages += 1
                if key is not None and message.reply_to.triggered:
                    self._cache_reply(key, reply_transport, message.reply_to)
        except Interrupt:
            return

    def _cache_reply(self, key, transport, reply_event) -> None:
        self._replies[key] = (transport, reply_event.ok, reply_event.value)
        if len(self._replies) > self.REPLY_CACHE_SIZE:
            self._replies.popitem(last=False)

    def _replay_reply(self, message: Message, cached):
        """Process: answer a duplicate request from the reply cache."""
        transport, ok, value = cached
        yield from transport.control_to_client()
        if message.reply_to.triggered:
            return  # a duplicated delivery of an already-answered message
        if ok:
            message.reply_to.succeed(value)
        else:
            message.reply_to.fail(value)

    def _handlers(self):
        return {
            protocol.CONNECT: self._on_connect,
            protocol.DISCONNECT: self._on_disconnect,
            protocol.GET_PLATFORM_INFO: self._on_platform_info,
            protocol.GET_DEVICE_INFO: self._on_device_info,
            protocol.CREATE_BUFFER: self._on_create_buffer,
            protocol.RELEASE_BUFFER: self._on_release_buffer,
            protocol.BUILD_PROGRAM: self._on_build_program,
            protocol.CREATE_KERNEL: self._on_create_kernel,
            protocol.ENQUEUE_WRITE: self._on_enqueue,
            protocol.ENQUEUE_READ: self._on_enqueue,
            protocol.ENQUEUE_COPY: self._on_enqueue,
            protocol.ENQUEUE_KERNEL: self._on_enqueue,
            protocol.ENQUEUE_MARKER: self._on_enqueue,
            protocol.WRITE_DATA: self._on_write_data,
            protocol.FLUSH: self._on_flush,
        }

    def _session_of(self, message: Message) -> Optional[ClientSession]:
        return self.sessions.get(message.sender)

    def _require_session(self, message: Message) -> ClientSession:
        session = self.sessions.get(message.sender)
        if session is None:
            # Typically a client whose session died with a manager crash:
            # it must reconnect before anything else.
            raise DeviceManagerError(f"unknown client {message.sender!r}",
                                     CL_DEVICE_NOT_AVAILABLE)
        return session

    # -- context and information methods (synchronous) -----------------------
    def _on_connect(self, message: Message):
        transport: Transport = message.payload["transport"]
        completion_queue: RpcEndpoint = message.payload["completion_queue"]
        session = ClientSession(message.sender, transport, completion_queue)
        self.sessions[message.sender] = session
        self._m_clients.set(len(self.sessions))
        yield from reply(transport, message, {"session": message.sender})

    def _on_disconnect(self, message: Message):
        session = self._require_session(message)
        for buffer in session.buffers.values():
            if not buffer.freed:
                self.board.free(buffer)
        session.buffers.clear()
        self.accumulator.flush_client(session.name)
        session.connected = False
        del self.sessions[session.name]
        self._m_clients.set(len(self.sessions))
        yield from reply(session.transport, message, {})

    def _on_platform_info(self, message: Message):
        session = self._require_session(message)
        yield from reply(session.transport, message, {
            "name": "BlastFunction Remote OpenCL",
            "vendor": "Politecnico di Milano (reproduction)",
            "version": "OpenCL 1.2",
        })

    def _on_device_info(self, message: Message):
        session = self._require_session(message)
        yield from reply(session.transport, message, {
            "name": f"{self.board.spec.name} ({self.board.spec.fpga})",
            "global_mem_size": self.board.spec.memory_bytes,
            "bitstream": self.configured_bitstream,
            "connected_clients": self.connected_clients,
            "node": self.node.name,
        })

    def _on_create_buffer(self, message: Message):
        session = self._require_session(message)
        size = int(message.payload["size"])
        try:
            buffer = self.board.allocate(size)
        except (OutOfMemoryError, ValueError) as exc:
            code = (CL_MEM_OBJECT_ALLOCATION_FAILURE
                    if isinstance(exc, OutOfMemoryError)
                    else CL_INVALID_BUFFER_SIZE)
            yield from reply_error(session.transport, message,
                                   RpcError(str(exc), code=code))
            return
        init_data = message.payload.get("data")
        if init_data is not None and self.board.functional:
            buffer.write(init_data)
        session.buffers[buffer.id] = buffer
        yield from reply(session.transport, message, {"buffer_id": buffer.id})

    def _on_release_buffer(self, message: Message):
        session = self._require_session(message)
        buffer_id = int(message.payload["buffer_id"])
        buffer = session.buffers.pop(buffer_id, None)
        if buffer is None:
            yield from reply_error(
                session.transport, message,
                DeviceManagerError(f"unknown buffer {buffer_id}",
                                   CL_INVALID_MEM_OBJECT),
            )
            return
        if not buffer.freed:
            self.board.free(buffer)
        yield from reply(session.transport, message, {})

    def _on_build_program(self, message: Message):
        """Reconfiguration: the one blocking context method (Section III-B)."""
        session = self._require_session(message)
        if self.migrating:
            # A reconfiguration cannot start while the board drains for a
            # live migration: defer it off the dispatcher (other clients
            # keep being served) and re-run it once the drain lifts.
            self.env.process(
                self._deferred_build(message, self._drain_resume)
            )
            return
        binary = message.payload["binary"]
        try:
            bitstream = self.library.get(binary)
        except KeyError as exc:
            yield from reply_error(session.transport, message,
                                   RpcError(str(exc), code=CL_INVALID_BINARY))
            return
        if any(slot is bitstream for slot in self.board.slots):
            # Some slot already runs this image.
            yield from reply(session.transport, message, {"binary": binary})
            return
        if self.board.slot_count > 1:
            # Space-sharing board: partial-reconfigure a free slot (or the
            # last slot as victim) without disturbing the others.
            free = [i for i, slot in enumerate(self.board.slots)
                    if slot is None]
            slot = free[0] if free else self.board.slot_count - 1
            yield from self.board.program_slot(slot, bitstream)
            self._m_reconfigurations.inc()
            yield from reply(session.transport, message, {
                "binary": binary, "slot": slot,
            })
            return
        validator = self.reconfiguration_validator
        if validator is not None and not validator(session.name, binary):
            yield from reply_error(
                session.transport, message,
                DeviceManagerError(
                    f"reconfiguration to {binary!r} denied by registry",
                    CL_BUILD_PROGRAM_FAILURE,
                ),
            )
            return
        # Blocks this dispatcher (and the board) for the full
        # reconfiguration time; device buffers are invalidated.
        for other in self.sessions.values():
            other.buffers.clear()
        yield from self.board.program(bitstream)
        self._m_reconfigurations.inc()
        yield from reply(session.transport, message, {"binary": binary})

    def _deferred_build(self, message: Message, resume_event):
        """Process: run a BUILD_PROGRAM that arrived during a drain."""
        if resume_event is not None:
            yield resume_event
        try:
            yield from self._on_build_program(message)
        except (DeviceManagerError, BoardError) as exc:
            if message.reply_to is None or message.reply_to.triggered:
                self.rejected_messages += 1
                return
            session = self._session_of(message)
            transport = (session.transport if session is not None
                         else message.payload.get("transport"))
            if transport is None:
                self.rejected_messages += 1
                return
            yield from reply_error(
                transport, message,
                RpcError(str(exc), code=_error_code(exc)),
            )

    def _on_create_kernel(self, message: Message):
        session = self._require_session(message)
        binary = message.payload["binary"]
        kernel_name = message.payload["name"]
        try:
            bitstream = self.library.get(binary)
            kernel = bitstream.kernel(kernel_name)
        except KeyError as exc:
            yield from reply_error(
                session.transport, message,
                RpcError(str(exc), code=CL_INVALID_KERNEL_NAME))
            return
        kernel_id = session.new_kernel_id()
        session.kernels[kernel_id] = (binary, kernel_name)
        yield from reply(session.transport, message, {
            "kernel_id": kernel_id,
            "arg_count": len(kernel.args),
        })

    # -- command-queue methods (streamed) --------------------------------------
    def _on_enqueue(self, message: Message):
        session = self._require_session(message)
        payload = message.payload
        op_type = {
            protocol.ENQUEUE_WRITE: OpType.WRITE,
            protocol.ENQUEUE_READ: OpType.READ,
            protocol.ENQUEUE_COPY: OpType.COPY,
            protocol.ENQUEUE_KERNEL: OpType.KERNEL,
            protocol.ENQUEUE_MARKER: OpType.MARKER,
        }[message.method]
        operation = Operation(
            type=op_type,
            client=session.name,
            queue_id=int(payload.get("queue", 0)),
            tag=message.tag,
            buffer_id=payload.get("buffer_id"),
            dst_buffer_id=payload.get("dst_buffer_id"),
            nbytes=int(payload.get("nbytes", 0)),
            offset=int(payload.get("offset", 0)),
            dst_offset=int(payload.get("dst_offset", 0)),
            kernel_id=payload.get("kernel_id"),
            kernel_args=payload.get("args"),
        )
        if operation.needs_data():
            operation.data_ready = Event(self.env)
            self._pending_writes[operation.tag] = operation
        self.accumulator.add(operation)
        if not self.batching:
            # Ablation baseline: submit each operation as its own task.
            task = self.accumulator.flush(session.name, operation.queue_id)
            self._submit(task)
        # FIRST step of the client's event state machine: op is enqueued.
        self.env.process(
            send_to_client(
                session.transport, session.completion_queue,
                Message(method=protocol.OP_ENQUEUED, tag=operation.tag,
                        sender=self.name),
            )
        )
        return
        yield  # pragma: no cover - marks this handler as a generator

    def _on_write_data(self, message: Message):
        operation = self._pending_writes.pop(message.tag, None)
        if operation is None:
            raise DeviceManagerError(
                f"write data for unknown tag {message.tag!r}"
            )
        operation.data = message.payload.get("data")
        assert operation.data_ready is not None
        operation.data_ready.succeed()
        return
        yield  # pragma: no cover - marks this handler as a generator

    def _on_flush(self, message: Message):
        session = self._require_session(message)
        queue_id = int(message.payload.get("queue", 0))
        task = self.accumulator.flush(session.name, queue_id)
        self._submit(task)
        return
        yield  # pragma: no cover - marks this handler as a generator

    def _submit(self, task: Optional[Task]) -> None:
        """Place a closed task on the central queue."""
        if task is None or task.empty:
            return
        task.submitted_at = self.env.now
        if self.migrating:
            # Drain in progress: hold new work out of the scheduler so the
            # board actually quiesces (and so a pending worker pop cannot
            # grab a task mid-drain).  Requeued by resume().
            self._drain_backlog.append(task)
            return
        self.scheduler.push(task, self._estimate_task(task))
        self._m_queue_depth.set(len(self.scheduler))

    def _estimate_task(self, task: Task) -> float:
        """Estimated device time of a task (for SJF/WFQ scheduling).

        Uses the same latency models the board executes with; falls back
        to a nominal value when a referenced resource is not resolvable
        yet (e.g. a buffer still being created).
        """
        session = self.sessions.get(task.client)
        total = 0.0
        for operation in task.operations:
            if operation.type in (OpType.WRITE, OpType.READ):
                total += self.board.link.spec.transfer_time(operation.nbytes)
            elif operation.type is OpType.COPY:
                total += operation.nbytes / self.board.DDR_COPY_BANDWIDTH
            elif operation.type is OpType.KERNEL and session is not None:
                try:
                    binary, kernel_name = session.kernels[
                        int(operation.kernel_id)
                    ]
                    kernel = self.library.get(binary).kernel(kernel_name)
                    resolved = []
                    for kind, value in operation.kernel_args or []:
                        if kind == protocol.ARG_BUFFER:
                            resolved.append(self._buffer(session, value))
                        else:
                            resolved.append(value)
                    total += kernel.duration(kernel.resolve_args(resolved))
                except Exception:  # noqa: BLE001 - estimation only
                    total += 1e-3
        return total

    # ----------------------------------------------------------------- worker
    def _worker(self):
        """Pull tasks from the central queue, execute them FIFO on the FPGA."""
        try:
            while True:
                if self.migrating:
                    # Drained: start no new task until the migration plane
                    # resumes this manager.
                    yield self._drain_resume
                    continue
                task: Task = yield self.scheduler.pop()
                self._m_queue_depth.set(len(self.scheduler))
                self._busy_workers += 1
                task.started_at = self.env.now
                stolen = False
                for index, operation in enumerate(task.operations):
                    if self.migrating:
                        # Preemption point: park at the operation boundary
                        # so a long task cannot pin the board through a
                        # drain.  The migration plane may steal the
                        # remaining operations while we sleep.
                        parked = _ParkedTask(task, index)
                        self._parked.append(parked)
                        self._busy_workers -= 1
                        yield self._drain_resume
                        self._parked.remove(parked)
                        self._busy_workers += 1
                        if parked.stolen:
                            stolen = True
                            break
                    ok = yield from self._run_operation(operation)
                    if not ok:
                        # Tasks are atomic: once an operation fails, the
                        # remainder would run against inconsistent state —
                        # abort the rest and notify each waiter.
                        self._abort_remaining(task.operations[index + 1:])
                        break
                self._busy_workers -= 1
                if stolen:
                    continue  # the rest of the task migrated away
                task.finished_at = self.env.now
                self._m_tasks.inc()
                if task.submitted_at is not None:
                    self._m_task_latency.observe(
                        task.finished_at - task.submitted_at
                    )
                for listener in self.task_listeners:
                    listener(task)
        except Interrupt:
            return

    def _abort_remaining(self, operations) -> None:
        """Fail every not-yet-run operation of an aborted task."""
        for operation in operations:
            session = self.sessions.get(operation.client)
            if session is None:
                continue
            self._notify(session, Message(
                method=protocol.OP_FAILED, tag=operation.tag,
                payload={"error": "task aborted after an earlier operation "
                                  "failed",
                         "code": CL_INVALID_OPERATION},
                sender=self.name,
            ))

    def _run_operation(self, operation: Operation):
        """Process: execute one op; returns True on success."""
        session = self.sessions.get(operation.client)
        if session is None:
            return False  # client disconnected while the task was queued
        if operation.needs_data() and operation.data_ready is not None:
            if not operation.data_ready.triggered:
                if self.data_timeout is None:
                    yield operation.data_ready
                else:
                    expiry = self.env.timeout(self.data_timeout)
                    yield AnyOf(self.env, [operation.data_ready, expiry])
                    if not operation.data_ready.triggered:
                        # The WRITE_DATA payload was lost on the wire: fail
                        # the op instead of wedging this worker forever.
                        self._pending_writes.pop(operation.tag, None)
                        self._notify(session, Message(
                            method=protocol.OP_FAILED, tag=operation.tag,
                            payload={"error": "write payload never arrived",
                                     "code": CL_INVALID_OPERATION},
                            sender=self.name,
                        ))
                        return False
        yield self.env.timeout(self.OP_OVERHEAD)
        started = self.env.now
        operation.started_at = started
        try:
            result = yield from self._execute(session, operation)
        except Interrupt:
            raise  # manager crash/worker kill, not an operation failure
        except Exception as exc:  # noqa: BLE001 - converted to notification
            self._notify(session, Message(
                method=protocol.OP_FAILED, tag=operation.tag,
                payload={"error": str(exc), "code": _error_code(exc)},
                sender=self.name,
            ))
            return False
        operation.finished_at = self.env.now
        busy = self.env.now - started
        self._m_busy.inc(busy)
        self._m_client_busy.labels(operation.client).inc(busy)
        self._m_ops.labels(operation.type.value).inc()
        for listener in self.op_listeners:
            listener(operation)
        if operation.type is OpType.READ:
            # COMPLETE step carries the data: pay the data-plane transfer
            # back to the client, then notify.  The worker proceeds to the
            # next operation before the client observes OP_COMPLETE, so the
            # live device view must be snapshotted *now* — the remote read
            # path's single real copy (timing-only zero-page views pass
            # through uncopied).
            self.env.process(self._send_read_result(
                session, operation, materialize(result)
            ))
        else:
            self._notify(session, Message(
                method=protocol.OP_COMPLETE, tag=operation.tag,
                sender=self.name,
            ))
        return True

    def _send_read_result(self, session: ClientSession,
                          operation: Operation, data):
        yield from session.transport.data_to_client(operation.nbytes)
        self._notify(session, Message(
            method=protocol.OP_COMPLETE, tag=operation.tag,
            payload={"data": data}, sender=self.name,
        ))

    def _notify(self, session: ClientSession, message: Message) -> None:
        """Asynchronously push a notification to the client."""
        self.env.process(
            send_to_client(session.transport, session.completion_queue,
                           message)
        )

    def _execute(self, session: ClientSession, operation: Operation):
        """Process: perform one operation on the board."""
        if operation.type is OpType.MARKER:
            return None
        if operation.type is OpType.WRITE:
            buffer = self._buffer(session, operation.buffer_id)
            yield from self.board.dma_write(
                buffer, operation.nbytes, operation.data, operation.offset
            )
            return None
        if operation.type is OpType.READ:
            buffer = self._buffer(session, operation.buffer_id)
            data = yield from self.board.dma_read(
                buffer, operation.nbytes, operation.offset
            )
            return data
        if operation.type is OpType.COPY:
            src = self._buffer(session, operation.buffer_id)
            dst = self._buffer(session, operation.dst_buffer_id)
            yield from self.board.copy_on_device(
                src, dst, operation.nbytes, operation.offset,
                operation.dst_offset,
            )
            return None
        if operation.type is OpType.KERNEL:
            binary, kernel_name = self._kernel(session, operation.kernel_id)
            live = [slot.name for slot in self.board.slots
                    if slot is not None]
            if binary not in live:
                raise DeviceManagerError(
                    f"kernel {kernel_name!r} needs bitstream {binary!r}, "
                    f"board has {live or [self.configured_bitstream]!r}"
                )
            resolved = []
            for kind, value in operation.kernel_args or []:
                if kind == protocol.ARG_BUFFER:
                    resolved.append(self._buffer(session, value))
                else:
                    resolved.append(value)
            yield from self.board.execute(kernel_name, resolved)
            return None
        raise DeviceManagerError(f"unsupported operation {operation.type}")

    def _buffer(self, session: ClientSession, buffer_id) -> DeviceBuffer:
        try:
            return session.buffers[int(buffer_id)]
        except (KeyError, TypeError) as exc:
            raise DeviceManagerError(
                f"client {session.name!r} has no buffer {buffer_id!r}",
                CL_INVALID_MEM_OBJECT,
            ) from exc

    def _kernel(self, session: ClientSession, kernel_id):
        try:
            return session.kernels[int(kernel_id)]
        except (KeyError, TypeError) as exc:
            raise DeviceManagerError(
                f"client {session.name!r} has no kernel {kernel_id!r}",
                CL_INVALID_KERNEL_NAME,
            ) from exc

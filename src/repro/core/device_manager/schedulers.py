"""Task schedulers for the Device Manager's central queue.

The paper's Device Manager executes tasks "in a First-In-First-Out order";
that remains the default.  Because the central queue is the single point
where time sharing happens, it is also the natural place to experiment with
SLA-aware policies — the paper itself notes that "the metrics priority can
be chosen depending on the system and applications SLA".  This module
provides the FIFO baseline and three alternatives used by the scheduling
ablation:

* :class:`PriorityScheduler` — strict client priority classes;
* :class:`SJFScheduler` — shortest (estimated) task first, non-preemptive;
* :class:`WFQScheduler` — weighted fair queueing over clients via
  start-time virtual clocks.

Estimated task durations come from the same kernel latency models the
board uses, so SJF/WFQ are realizable policies, not oracles.
"""

from __future__ import annotations

import abc
import heapq
from itertools import count
from typing import Dict, List, Optional

from ...sim import Environment, PriorityItem, PriorityStore, Store
from .tasks import Task


class TaskScheduler(abc.ABC):
    """Order in which queued tasks reach the FPGA."""

    name = "abstract"

    def __init__(self, env: Environment):
        self.env = env

    @abc.abstractmethod
    def push(self, task: Task, estimate: float) -> None:
        """Enqueue a task with its estimated device time (seconds)."""

    @abc.abstractmethod
    def pop(self):
        """Simulation event yielding the next task to execute."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Tasks currently waiting."""

    def set_client_weight(self, client: str, weight: float) -> None:
        """SLA hint (ignored by weight-agnostic policies)."""

    def clear(self) -> None:
        """Drop every queued task (Device Manager crash).

        All concrete schedulers keep their backlog in ``self._queue``.
        """
        self._queue.items.clear()

    def take_client(self, client: str) -> List[Task]:
        """Remove and return every queued task owned by ``client``.

        Tasks come back in the order this policy would have served them;
        the live-migration drain uses this to checkpoint a client's
        backlog without disturbing other tenants' queue positions.
        """
        items = self._queue.items
        taken = [entry for entry in items
                 if self._entry_task(entry).client == client]
        if taken:
            items[:] = [entry for entry in items
                        if self._entry_task(entry).client != client]
            self._restore_invariant()
        return [self._entry_task(entry)
                for entry in self._order_entries(taken)]

    def _entry_task(self, entry) -> Task:
        """The task held by one backlog entry (FIFO stores tasks bare)."""
        return entry

    def _order_entries(self, entries: list) -> list:
        """Service order of a set of entries (FIFO: arrival order)."""
        return entries

    def _restore_invariant(self) -> None:
        """Repair queue internals after entries were removed in place."""


class FIFOScheduler(TaskScheduler):
    """The paper's policy: strict arrival order."""

    name = "fifo"

    def __init__(self, env: Environment):
        super().__init__(env)
        self._queue = Store(env)

    def push(self, task: Task, estimate: float) -> None:
        self._queue.put(task)

    def pop(self):
        return self._queue.get()

    def __len__(self) -> int:
        return len(self._queue.items)


class _HeapBacklogMixin:
    """Shared ``take_client`` plumbing for PriorityStore-backed policies.

    The backlog is a heap of :class:`PriorityItem`; removing arbitrary
    entries invalidates the heap, so the mixin re-heapifies and returns
    the taken entries in priority (service) order.
    """

    def _entry_task(self, entry) -> Task:
        return entry.item

    def _order_entries(self, entries: list) -> list:
        return sorted(entries)

    def _restore_invariant(self) -> None:
        heapq.heapify(self._queue.items)


class PriorityScheduler(_HeapBacklogMixin, TaskScheduler):
    """Strict priority classes per client (lower value = served first)."""

    name = "priority"

    def __init__(self, env: Environment, default_priority: int = 10):
        super().__init__(env)
        self._queue = PriorityStore(env)
        self._priorities: Dict[str, int] = {}
        self.default_priority = default_priority

    def set_client_priority(self, client: str, priority: int) -> None:
        self._priorities[client] = priority

    def set_client_weight(self, client: str, weight: float) -> None:
        # Higher weight → better (lower) priority value.
        self.set_client_priority(client, int(100 / max(weight, 1e-6)))

    def push(self, task: Task, estimate: float) -> None:
        priority = self._priorities.get(task.client, self.default_priority)
        self._queue.put(PriorityItem(priority, task))

    def pop(self):
        event = self._queue.get()
        return _unwrap(self.env, event)

    def __len__(self) -> int:
        return len(self._queue.items)


class SJFScheduler(_HeapBacklogMixin, TaskScheduler):
    """Non-preemptive shortest-estimated-job-first."""

    name = "sjf"

    def __init__(self, env: Environment):
        super().__init__(env)
        self._queue = PriorityStore(env)

    def push(self, task: Task, estimate: float) -> None:
        self._queue.put(PriorityItem(estimate, task))

    def pop(self):
        return _unwrap(self.env, self._queue.get())

    def __len__(self) -> int:
        return len(self._queue.items)


class WFQScheduler(_HeapBacklogMixin, TaskScheduler):
    """Weighted fair queueing (start-time fair queuing approximation).

    Each client accrues virtual time proportional to consumed device time
    divided by its weight; the task with the smallest virtual start tag
    runs next, giving long-term device shares proportional to weights
    without starving anyone.
    """

    name = "wfq"

    def __init__(self, env: Environment):
        super().__init__(env)
        self._queue = PriorityStore(env)
        self._weights: Dict[str, float] = {}
        self._virtual_finish: Dict[str, float] = {}
        self._virtual_now = 0.0

    def set_client_weight(self, client: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[client] = weight

    def push(self, task: Task, estimate: float) -> None:
        weight = self._weights.get(task.client, 1.0)
        start_tag = max(self._virtual_now,
                        self._virtual_finish.get(task.client, 0.0))
        finish_tag = start_tag + estimate / weight
        self._virtual_finish[task.client] = finish_tag
        self._queue.put(PriorityItem(start_tag, task))

    def pop(self):
        event = self._queue.get()

        def advance(env):
            item = yield event
            self._virtual_now = max(self._virtual_now, item.priority)
            return item.item

        return self.env.process(advance(self.env))

    def __len__(self) -> int:
        return len(self._queue.items)


def _unwrap(env: Environment, event):
    """Adapt a PriorityStore get (yielding PriorityItem) to yield the task."""

    def runner(env):
        item = yield event
        return item.item

    return env.process(runner(env))


_SCHEDULERS = {
    "fifo": FIFOScheduler,
    "priority": PriorityScheduler,
    "sjf": SJFScheduler,
    "wfq": WFQScheduler,
}


def make_scheduler(name: str, env: Environment) -> TaskScheduler:
    """Build a scheduler by policy name."""
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r} (have {sorted(_SCHEDULERS)})"
        ) from None
    return factory(env)

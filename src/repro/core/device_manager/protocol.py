"""Wire protocol between the Remote OpenCL Library and a Device Manager.

Two method groups, mirroring Section III-B:

* **context and information methods** — synchronous unary calls
  (:data:`UNARY_METHODS`); ``BuildProgram`` is the special case that blocks
  the manager while the board reconfigures;
* **command-queue methods** — streamed, tagged, answered asynchronously
  through notifications pushed to the client's completion queue.
"""

from __future__ import annotations

# -- unary (context and information) methods --------------------------------
CONNECT = "Connect"
DISCONNECT = "Disconnect"
GET_PLATFORM_INFO = "GetPlatformInfo"
GET_DEVICE_INFO = "GetDeviceInfo"
CREATE_BUFFER = "CreateBuffer"
RELEASE_BUFFER = "ReleaseBuffer"
BUILD_PROGRAM = "BuildProgram"
CREATE_KERNEL = "CreateKernel"

UNARY_METHODS = frozenset({
    CONNECT,
    DISCONNECT,
    GET_PLATFORM_INFO,
    GET_DEVICE_INFO,
    CREATE_BUFFER,
    RELEASE_BUFFER,
    BUILD_PROGRAM,
    CREATE_KERNEL,
})

# -- streamed command-queue methods ------------------------------------------
ENQUEUE_WRITE = "EnqueueWrite"
ENQUEUE_READ = "EnqueueRead"
ENQUEUE_COPY = "EnqueueCopy"
ENQUEUE_KERNEL = "EnqueueKernel"
ENQUEUE_MARKER = "EnqueueMarker"
FLUSH = "Flush"
WRITE_DATA = "WriteData"  # bulk payload following an EnqueueWrite

STREAM_METHODS = frozenset({
    ENQUEUE_WRITE,
    ENQUEUE_READ,
    ENQUEUE_COPY,
    ENQUEUE_KERNEL,
    ENQUEUE_MARKER,
    FLUSH,
    WRITE_DATA,
})

# -- notifications (Device Manager → client completion queue) ----------------
OP_ENQUEUED = "OpEnqueued"     # the event FSM's FIRST step
OP_COMPLETE = "OpComplete"     # COMPLETE step (reads carry their data)
OP_FAILED = "OpFailed"

# -- kernel argument encoding -------------------------------------------------
ARG_BUFFER = "buf"
ARG_SCALAR = "scalar"


def encode_kernel_args(args: list) -> list:
    """Encode kernel arguments for the wire: buffers by remote id.

    ``args`` holds client-side values where buffers are already mapped to
    their remote buffer ids by the caller.
    """
    encoded = []
    for kind, value in args:
        if kind not in (ARG_BUFFER, ARG_SCALAR):
            raise ValueError(f"unknown kernel arg kind {kind!r}")
        encoded.append((kind, value))
    return encoded

"""Algorithm 1: the online device allocation algorithm.

Faithful to the paper's pseudocode::

    procedure Allocate(instance, devs, metrics_order, metrics_filters)
        devs <- filterby_compatibility(devs, instance.devicequery)
        devs <- filterby_metrics(devs, metrics_filters)
        devs <- orderby_metrics_and_acc(devs, metrics_order)
        i <- 0
        if not_compatible(devs(i)) then
            while not_redistributable(devs(i)) do
                i <- i + 1
        if i < len(devs) then chosen_device <- devs(i)
        else raise error "device not found"
        instance.devs <- {chosen_device}
        if instance.node == "" then instance.node <- chosen_device.node

*Compatibility* covers vendor/platform and whether the requested
accelerator exists for the device; *accelerator compatibility* (the
ordering tie-breaker and the ``not_compatible`` test) asks whether the
device's currently configured bitstream already matches.  When it does not,
the device needs reconfiguration, which is only allowed if every workload
currently on it can be *redistributed* to other compatible devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...cluster.objects import DeviceQuery


class AllocationError(LookupError):
    """Algorithm 1's ``error "device not found"``."""


@dataclass
class DeviceView:
    """Immutable snapshot of one device as the allocator sees it."""

    name: str
    node: str
    vendor: str
    platform: str
    bitstream: Optional[str]          # effective (pending-aware) bitstream
    available_bitstreams: Sequence[str]
    metrics: Dict[str, float] = field(default_factory=dict)
    #: (instance name, accelerator it needs) currently on the device.
    workloads: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class MetricFilter:
    """Keep only devices whose metric satisfies the predicate."""

    metric: str
    predicate: Callable[[float], bool]

    @classmethod
    def below(cls, metric: str, threshold: float) -> "MetricFilter":
        return cls(metric, lambda value: value < threshold)


@dataclass
class AllocationDecision:
    """Outcome of Algorithm 1 for one instance."""

    device: DeviceView
    node: str
    needs_reconfiguration: bool
    #: (instance, target device) moves required to free the chosen device.
    redistribution: List[Tuple[str, str]] = field(default_factory=list)


def filterby_compatibility(devices: List[DeviceView],
                           query: DeviceQuery) -> List[DeviceView]:
    """Line 2: vendor/platform match and the accelerator is available."""
    compatible = []
    for device in devices:
        if not query.matches_vendor(device.vendor, device.platform):
            continue
        if query.accelerator and query.accelerator not in device.available_bitstreams:
            continue
        compatible.append(device)
    return compatible


def filterby_metrics(devices: List[DeviceView],
                     metrics_filters: Sequence[MetricFilter]
                     ) -> List[DeviceView]:
    """Line 3: drop devices failing any filter (e.g. highly utilized)."""
    kept = []
    for device in devices:
        if all(f.predicate(device.metrics.get(f.metric, 0.0))
               for f in metrics_filters):
            kept.append(device)
    return kept


def orderby_metrics_and_acc(devices: List[DeviceView],
                            metrics_order: Sequence[str],
                            query: DeviceQuery) -> List[DeviceView]:
    """Line 4: sort ascending by the chosen metrics, preferring devices
    whose configured bitstream already matches (no reconfiguration)."""

    def key(device: DeviceView):
        metric_values = tuple(
            device.metrics.get(metric, 0.0) for metric in metrics_order
        )
        acc_mismatch = 0 if device.bitstream == query.accelerator else 1
        return metric_values + (acc_mismatch, device.name)

    return sorted(devices, key=key)


def not_compatible(device: DeviceView, query: DeviceQuery) -> bool:
    """Line 6: would allocating here require a reconfiguration?"""
    if not query.accelerator:
        return False
    return device.bitstream != query.accelerator


def redistribution_plan(
    device: DeviceView,
    query: DeviceQuery,
    candidates: List[DeviceView],
) -> Optional[List[Tuple[str, str]]]:
    """Line 7: can this device's conflicting workloads move elsewhere?

    Returns the move list, or None when some workload has nowhere to go
    (``not_redistributable``).  A workload conflicts when it needs an
    accelerator other than the one we are about to program.
    """
    moves: List[Tuple[str, str]] = []
    # Spare capacity bookkeeping: each target can absorb many instances,
    # but must already run (or be able to run without conflicts) the
    # workload's accelerator.
    for instance, accelerator in device.workloads:
        if accelerator == query.accelerator:
            continue  # stays put: same bitstream after reconfiguration
        target = _find_target(accelerator, device, candidates)
        if target is None:
            return None
        moves.append((instance, target.name))
    return moves


def _find_target(accelerator: str, source: DeviceView,
                 candidates: List[DeviceView]) -> Optional[DeviceView]:
    for candidate in candidates:
        if candidate.name == source.name:
            continue
        if accelerator not in candidate.available_bitstreams:
            continue
        if candidate.bitstream == accelerator:
            return candidate
        if not candidate.workloads and candidate.bitstream is None:
            return candidate  # blank device: free to program
    return None


def allocate(
    query: DeviceQuery,
    node_hint: str,
    devices: List[DeviceView],
    metrics_order: Sequence[str] = ("connected_functions", "utilization"),
    metrics_filters: Sequence[MetricFilter] = (),
) -> AllocationDecision:
    """Run Algorithm 1 and return the placement decision."""
    devs = filterby_compatibility(devices, query)
    devs = filterby_metrics(devs, metrics_filters)
    devs = orderby_metrics_and_acc(devs, metrics_order, query)

    index = 0
    redistribution: List[Tuple[str, str]] = []
    while index < len(devs):
        device = devs[index]
        if not not_compatible(device, query):
            break
        plan = redistribution_plan(device, query, devs)
        if plan is not None:
            redistribution = plan
            break
        index += 1

    if index >= len(devs):
        raise AllocationError(
            f"device not found for accelerator {query.accelerator!r}"
        )

    chosen = devs[index]
    node = node_hint or chosen.node
    return AllocationDecision(
        device=chosen,
        node=node,
        needs_reconfiguration=not_compatible(chosen, query),
        redistribution=redistribution,
    )

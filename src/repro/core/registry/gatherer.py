"""Metrics Gatherer: runtime metrics for allocation decisions.

"Data collected through the Device and Functions Services are integrated by
the Metrics Gatherer, which receives Device Managers performance metrics
from a Prometheus service.  Data like the FPGA time utilization (defined as
the time spent by the device computing OpenCL calls in a given amount of
time) are used to improve allocation of functions."
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ...metrics import Scraper


class MetricsGatherer:
    """Query layer over the Prometheus scrape database."""

    def __init__(self, scraper: Scraper, window: float = 10.0):
        self.scraper = scraper
        self.window = window

    # -- device-level metrics ------------------------------------------------
    def utilization(self, device: str) -> float:
        """FPGA time utilization of a device over the trailing window.

        0.0 when no samples exist yet (a fresh device counts as idle).
        """
        series = self.scraper.database.select_matching(
            "dm_busy_seconds_total", instance=device
        )
        if not series:
            return 0.0
        rate = series[0].rate(self.window, now=self.scraper.env.now)
        return 0.0 if math.isnan(rate) else max(rate, 0.0)

    def utilization_detail(self, device: str) -> tuple:
        """``(utilization, valid_until)`` for incremental caching.

        The trailing-window rate is a pure function of the in-window
        sample set, so a cached value can only change when a new sample
        is scraped or when the current first-in-window sample falls out —
        at any time strictly after ``valid_until``.  ``valid_until`` is
        ``inf`` when no falloff can change the value (fewer than two
        in-window samples): only the next scrape matters then.
        """
        series = self.scraper.database.select_matching(
            "dm_busy_seconds_total", instance=device
        )
        if not series:
            return 0.0, math.inf
        now = self.scraper.env.now
        rate = series[0].rate(self.window, now=now)
        value = 0.0 if math.isnan(rate) else max(rate, 0.0)
        first = series[0].first_time_in(now - self.window, now)
        if math.isnan(rate) or first is None:
            return value, math.inf
        return value, first + self.window

    def function_utilization(self, device: str, client: str) -> float:
        """Per-function share of a device's busy time (Table II's Util.)."""
        series = self.scraper.database.select_matching(
            "dm_client_busy_seconds_total", instance=device, client=client
        )
        if not series:
            return 0.0
        rate = series[0].rate(self.window, now=self.scraper.env.now)
        return 0.0 if math.isnan(rate) else max(rate, 0.0)

    def connected_functions(self, device: str) -> int:
        series = self.scraper.database.select_matching(
            "dm_connected_clients", instance=device
        )
        if not series or series[0].latest() is None:
            return 0
        return int(series[0].latest())

    def queue_depth(self, device: str) -> float:
        series = self.scraper.database.select_matching(
            "dm_task_queue_depth", instance=device
        )
        if not series or series[0].latest() is None:
            return 0.0
        return float(series[0].latest())

    def device_metrics(self, device: str) -> Dict[str, float]:
        """All allocation-relevant metrics for one device."""
        return {
            "utilization": self.utilization(device),
            "connected_functions": float(self.connected_functions(device)),
            "queue_depth": self.queue_depth(device),
        }

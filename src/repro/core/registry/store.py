"""Durable state of the Accelerators Registry: write-ahead log + snapshots.

The Registry keeps its Devices Service and Functions Service in process
memory; a crash erases them.  A :class:`RegistryStore` models the durable
medium that survives the crash — the write-ahead log every state-changing
operation is appended to before it takes effect, plus periodic full
snapshots that truncate the log.  The store object lives *outside* the
Registry (it represents the disk / replicated log, not the process), so a
:class:`~repro.faults.registry_crash.RegistryCrash` injection clears the
Registry's volatile services but leaves the store intact for replay.

Record vocabulary (``op`` → ``args``):

* ``register_manager`` / ``deregister_manager`` — Devices Service
  membership (``manager``);
* ``register_function`` — Functions Service registration (``function``,
  ``query`` as a ``[vendor, platform, accelerator]`` triple);
* ``admit`` — one Algorithm-1 allocation (``instance``, ``function``,
  ``node``, ``device``, ``pending`` bitstream or ``None``);
* ``remove_instance`` / ``move_instance`` — instance lifecycle
  (deletion watch, live-migration completion);
* ``device_dead`` / ``device_alive`` — lease events from the health
  monitor;
* ``epoch`` — a Registry (re)start fencing-token bump (``epoch``).

The wire format mirrors PR 4's BFCK1 checkpoint format: a magic prefix,
an 8-byte big-endian length, then ``sorted(keys)`` compact JSON — fully
deterministic, so ``to_wire → from_wire → to_wire`` is bit-identical and
seeded goldens that embed store statistics stay reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Wire-format magic prefix (Registry Store, version 1).
MAGIC = b"BFRS1\n"


class StoreError(RuntimeError):
    """The durable state could not be parsed or replayed."""


def _encode(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()


@dataclass(frozen=True)
class WalRecord:
    """One durably logged state-changing operation."""

    seq: int
    op: str
    args: Dict[str, object] = field(default_factory=dict)

    def to_meta(self) -> dict:
        return {"seq": self.seq, "op": self.op, "args": dict(self.args)}

    @classmethod
    def from_meta(cls, meta: dict) -> "WalRecord":
        return cls(seq=meta["seq"], op=meta["op"],
                   args=dict(meta["args"]))

    @property
    def nbytes(self) -> int:
        """Encoded size of this record on the durable medium."""
        return len(_encode(self.to_meta()))


class RegistryStore:
    """The Registry's durable medium: WAL, snapshots, epoch counter."""

    def __init__(self) -> None:
        #: Last state snapshot (a deterministic plain-JSON dict built by
        #: ``AcceleratorsRegistry.snapshot_state``), or ``None``.
        self.snapshot_state: Optional[dict] = None
        #: Highest WAL sequence folded into the snapshot.
        self.snapshot_seq = 0
        #: Log suffix after the snapshot, in append order.
        self.wal: List[WalRecord] = []
        #: Last assigned sequence number (monotonic across snapshots).
        self.seq = 0
        #: Highest fencing epoch durably recorded.
        self.epoch = 0
        # -- statistics (all deterministic, golden-safe) -------------------
        self.appends = 0
        self.appended_bytes = 0
        self.snapshots_taken = 0
        self.truncated_records = 0

    # -- logging ------------------------------------------------------------
    def append(self, op: str, **args: object) -> WalRecord:
        """Durably log one operation; returns the sequenced record."""
        self.seq += 1
        record = WalRecord(seq=self.seq, op=op, args=args)
        self.wal.append(record)
        self.appends += 1
        self.appended_bytes += record.nbytes
        if op == "epoch":
            self.epoch = max(self.epoch, int(args["epoch"]))
        return record

    def record_epoch(self, epoch: int) -> WalRecord:
        """Log a Registry (re)start; the fencing token survives crashes."""
        return self.append("epoch", epoch=int(epoch))

    def take_snapshot(self, state: dict) -> None:
        """Fold the full state into a snapshot and truncate the WAL."""
        self.snapshot_state = state
        self.snapshot_seq = self.seq
        self.snapshots_taken += 1
        self.truncated_records += len(self.wal)
        self.wal = []

    # -- recovery ------------------------------------------------------------
    def replay(self) -> Tuple[Optional[dict], List[WalRecord]]:
        """What a restart reads back: (snapshot, WAL suffix in order)."""
        return self.snapshot_state, list(self.wal)

    def truncate(self, seq: int) -> int:
        """Drop every WAL record after ``seq`` (a lost, unsynced tail).

        Models a crash that outruns the log (or a lagging warm-standby
        copy).  Returns how many records were lost.
        """
        kept = [record for record in self.wal if record.seq <= seq]
        lost = len(self.wal) - len(kept)
        self.wal = kept
        if kept:
            self.seq = kept[-1].seq
        elif self.snapshot_state is not None:
            self.seq = self.snapshot_seq
        else:
            self.seq = min(self.seq, max(seq, 0))
        self.epoch = 0
        for record in kept:
            if record.op == "epoch":
                self.epoch = max(self.epoch, int(record.args["epoch"]))
        if self.snapshot_state is not None:
            self.epoch = max(self.epoch,
                             int(self.snapshot_state.get("epoch", 0)))
        return lost

    # -- replication (warm standby) ------------------------------------------
    def records_since(self, seq: int) -> List[WalRecord]:
        """WAL records strictly newer than ``seq``, in order."""
        return [record for record in self.wal if record.seq > seq]

    def delta_since(self, seq: int) -> Tuple[Optional[dict],
                                             List[WalRecord], int]:
        """What a replica at ``seq`` must fetch to catch up.

        Returns ``(snapshot_or_None, records, nbytes)``: the snapshot is
        included only when the replica's position predates it (the leader
        truncated past the replica), and ``nbytes`` is the wire size of
        everything shipped.
        """
        snapshot = None
        if self.snapshot_state is not None and seq < self.snapshot_seq:
            snapshot = self.snapshot_state
            records = list(self.wal)
        else:
            records = self.records_since(seq)
        nbytes = (len(_encode(snapshot)) if snapshot is not None else 0)
        nbytes += sum(record.nbytes for record in records)
        return snapshot, records, nbytes

    def ingest_delta(self, snapshot: Optional[dict],
                     records: List[WalRecord],
                     snapshot_seq: int = 0, epoch: int = 0) -> int:
        """Apply a leader delta to this (replica) store; returns #records."""
        if snapshot is not None:
            self.snapshot_state = json.loads(_encode(snapshot).decode())
            self.snapshot_seq = snapshot_seq
            self.wal = []
            self.seq = max(self.seq, snapshot_seq)
        applied = 0
        for record in records:
            if record.seq <= self.seq:
                continue  # duplicate delivery; ingest is idempotent
            self.wal.append(record)
            self.seq = record.seq
            if record.op == "epoch":
                self.epoch = max(self.epoch, int(record.args["epoch"]))
            applied += 1
        self.epoch = max(self.epoch, epoch)
        return applied

    # -- wire format ----------------------------------------------------------
    def to_wire(self) -> bytes:
        """Serialize: MAGIC + 8-byte length + sorted-keys compact JSON."""
        meta = {
            "epoch": self.epoch,
            "seq": self.seq,
            "snapshot": self.snapshot_state,
            "snapshot_seq": self.snapshot_seq,
            "wal": [record.to_meta() for record in self.wal],
        }
        encoded = _encode(meta)
        return b"".join([MAGIC, len(encoded).to_bytes(8, "big"), encoded])

    @classmethod
    def from_wire(cls, data: bytes) -> "RegistryStore":
        if not data.startswith(MAGIC):
            raise StoreError("not a registry store image (bad magic)")
        cursor = len(MAGIC)
        meta_len = int.from_bytes(data[cursor:cursor + 8], "big")
        cursor += 8
        try:
            meta = json.loads(data[cursor:cursor + meta_len])
        except ValueError as exc:
            raise StoreError(f"corrupt store image: {exc}") from None
        store = cls()
        store.epoch = meta["epoch"]
        store.seq = meta["seq"]
        store.snapshot_state = meta["snapshot"]
        store.snapshot_seq = meta["snapshot_seq"]
        store.wal = [WalRecord.from_meta(m) for m in meta["wal"]]
        return store

    def clone(self) -> "RegistryStore":
        """Deep copy through the wire format (replica bootstrap)."""
        return RegistryStore.from_wire(self.to_wire())

    @property
    def wire_nbytes(self) -> int:
        return len(self.to_wire())

    def __len__(self) -> int:
        return len(self.wal)

"""Warm-standby Registry replica: WAL tailing and leader-lease takeover.

``REPRO_REGISTRY=replicated`` keeps a second copy of the durable store on
another host.  A :class:`WarmStandby` process periodically pulls the
leader's WAL delta over the simulated network (paying real transfer time
for the shipped bytes, so replication lag is a function of load and link
speed) and, when the leader stops being seen for longer than its lease,
restarts the Registry from the *standby's* store copy — possibly missing
a lost tail of un-replicated records, which the epoch-fenced
reconciliation pass then heals against board-reported ground truth.

The takeover path reuses :meth:`AcceleratorsRegistry.restart` with the
replica log substituted via its ``store`` argument: the recovered process
runs at a strictly higher epoch than anything the dead leader logged, so
any zombie command from the old incarnation is fenced at the Device
Managers (:class:`~repro.core.device_manager.manager.StaleEpochError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...rpc import Network
from ...sim import Environment, Interrupt
from ..device_manager.manager import DeviceManager
from .health import REGISTRY_HOST
from .store import RegistryStore

#: Network identity of the standby replica host.
STANDBY_HOST = "registry-standby"


@dataclass(frozen=True)
class StandbyPolicy:
    """Replication and takeover knobs for the warm standby."""

    #: Seconds between WAL-delta pulls from the leader.
    sync_interval: float = 0.25
    #: Seconds without a live leader before the standby takes over.
    lease_timeout: float = 1.0


class WarmStandby:
    """A replica that tails the leader's WAL and takes over on its death."""

    def __init__(self, env: Environment, registry, network: Network,
                 managers: Dict[str, DeviceManager],
                 policy: Optional[StandbyPolicy] = None):
        self.env = env
        self.registry = registry
        self.network = network
        self.managers = dict(managers)
        self.policy = policy if policy is not None else StandbyPolicy()
        #: The replica's copy of the durable store (tails the leader WAL).
        self.log = RegistryStore()
        self.leader_host = network.host(REGISTRY_HOST)
        self.host = network.host(STANDBY_HOST)
        # -- statistics ------------------------------------------------------
        self.records_tailed = 0
        self.snapshots_tailed = 0
        self.bytes_tailed = 0
        self.takeovers = 0
        self.takeover_at: Optional[float] = None
        #: WAL records the leader had logged but the replica had not yet
        #: pulled when it took over (the lost tail reconciliation heals).
        self.lag_records_at_takeover = 0
        self.last_leader_seen = env.now
        self._proc = env.process(self._run())

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("standby stopped")

    @property
    def is_leader(self) -> bool:
        """True once this replica's log became the Registry's store."""
        return self.registry.store is self.log

    def _run(self):
        """Process: tail the leader's WAL; take over when its lease dies."""
        try:
            while True:
                yield self.env.timeout(self.policy.sync_interval)
                if self.is_leader:
                    return  # promoted; nothing left to tail
                leader_store = self.registry.store
                if self.registry.alive and leader_store is not None:
                    snapshot, records, nbytes = leader_store.delta_since(
                        self.log.seq
                    )
                    if nbytes:
                        yield from self.network.transfer(
                            self.leader_host, self.host, nbytes
                        )
                        self.bytes_tailed += nbytes
                    if snapshot is not None:
                        self.snapshots_tailed += 1
                    self.records_tailed += self.log.ingest_delta(
                        snapshot, records,
                        snapshot_seq=leader_store.snapshot_seq,
                        epoch=leader_store.epoch,
                    )
                    self.last_leader_seen = self.env.now
                    continue
                down_for = self.env.now - self.last_leader_seen
                if down_for <= self.policy.lease_timeout:
                    continue
                # Leader lease expired: promote the replica's log copy.
                if leader_store is not None:
                    self.lag_records_at_takeover += len(
                        leader_store.records_since(self.log.seq)
                    )
                self.takeovers += 1
                self.takeover_at = self.env.now
                recovery = self.registry.restart(
                    resolver=self.managers, store=self.log
                )
                if recovery is not None:
                    yield recovery
                return
        except Interrupt:
            return

"""The Accelerators Registry (BlastFunction's cluster master)."""

from .allocation import (
    AllocationDecision,
    AllocationError,
    DeviceView,
    MetricFilter,
    allocate,
    filterby_compatibility,
    filterby_metrics,
    not_compatible,
    orderby_metrics_and_acc,
    redistribution_plan,
)
from .gatherer import MetricsGatherer
from .health import REGISTRY_HOST, HealthMonitor
from .registry import (
    MANAGER_ENV,
    REGISTRY_ENV,
    AcceleratorsRegistry,
    RegistryUnavailableError,
)
from .services import (
    DeviceRecord,
    DevicesService,
    FunctionRecord,
    FunctionsService,
    InstanceRecord,
)
from .standby import STANDBY_HOST, StandbyPolicy, WarmStandby
from .store import RegistryStore, StoreError, WalRecord

__all__ = [
    "AcceleratorsRegistry",
    "AllocationDecision",
    "AllocationError",
    "DeviceRecord",
    "DevicesService",
    "DeviceView",
    "FunctionRecord",
    "FunctionsService",
    "HealthMonitor",
    "InstanceRecord",
    "MANAGER_ENV",
    "REGISTRY_ENV",
    "REGISTRY_HOST",
    "RegistryStore",
    "RegistryUnavailableError",
    "STANDBY_HOST",
    "StandbyPolicy",
    "StoreError",
    "WalRecord",
    "WarmStandby",
    "MetricFilter",
    "MetricsGatherer",
    "allocate",
    "filterby_compatibility",
    "filterby_metrics",
    "not_compatible",
    "orderby_metrics_and_acc",
    "redistribution_plan",
]

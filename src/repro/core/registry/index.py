"""Indexed Algorithm 1: lookup + ordered-merge instead of filter + sort.

The brute-force allocator in :mod:`~repro.core.registry.allocation` rebuilds
and re-sorts every :class:`DeviceView` on every allocation — O(n log n) per
admission with n devices, which dominates control-plane cost at fleet
scale.  :class:`DeviceIndex` maintains the same information incrementally:

* devices are bucketed by ``(vendor, platform, available bitstreams)`` —
  compatibility (a substring test plus accelerator availability) is decided
  once per *bucket* per query, not once per device;
* inside a bucket, devices are partitioned by their currently configured
  (effective) bitstream, each partition kept as a list sorted by the
  metric key ``(metric values..., name)`` and maintained with bisect on
  refresh — O(log n) search, memmove insert;
* Algorithm 1's global order — metric values, then the
  accelerator-mismatch tie-breaker, then name — is reproduced lazily with
  ``heapq.merge`` over the matching partitions, injecting each partition's
  (query-dependent, partition-constant) mismatch bit into the merge key.
  The walk stops at the first compatible-or-redistributable device, so the
  common allocation touches a handful of entries.

Equivalence with the oracle is exact, not approximate: the merge key is
the oracle's sort key, metric filters apply the same predicates, and the
``not_compatible`` / ``redistribution_plan`` decisions are delegated to
the oracle's own functions (materializing the full ordered candidate list
only in the rare conflicting-reconfiguration case that needs it).  The
property test in ``tests/core/test_allocation_index.py`` drives both paths
over randomized fleets and asserts identical decisions.

The index holds *views*; keeping them fresh (metrics, bitstreams,
workloads, liveness) is the Registry's job — see
``AcceleratorsRegistry._index_refresh``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Sequence, Tuple

from ...cluster.objects import DeviceQuery
from .allocation import (
    AllocationDecision,
    AllocationError,
    DeviceView,
    MetricFilter,
    not_compatible,
    redistribution_plan,
)

#: Bucket key: everything compatibility filtering depends on.
BucketKey = Tuple[str, str, Tuple[str, ...]]


class _Partition:
    """Devices of one bucket sharing one configured bitstream, sorted."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        #: Sorted list of (sort_key, view); sort_key ends with the device
        #: name, so keys are unique and ties never compare views.
        self.entries: List[Tuple[tuple, DeviceView]] = []

    def add(self, key: tuple, view: DeviceView) -> None:
        insort(self.entries, (key, view))

    def remove(self, key: tuple) -> None:
        index = bisect_left(self.entries, (key,))
        if index < len(self.entries) and self.entries[index][0] == key:
            del self.entries[index]


class DeviceIndex:
    """Incrementally maintained index answering Algorithm 1 queries."""

    def __init__(
        self,
        metrics_order: Sequence[str] = ("connected_functions", "utilization"),
        metrics_filters: Sequence[MetricFilter] = (),
    ):
        self.metrics_order = tuple(metrics_order)
        self.metrics_filters = tuple(metrics_filters)
        #: name -> (bucket key, partition bitstream, sort key, view)
        self._entries: Dict[str, Tuple[BucketKey, Optional[str], tuple,
                                       DeviceView]] = {}
        self._buckets: Dict[BucketKey, Dict[Optional[str], _Partition]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- maintenance -------------------------------------------------------
    def _sort_key(self, view: DeviceView) -> tuple:
        metrics = view.metrics
        return tuple(
            metrics.get(metric, 0.0) for metric in self.metrics_order
        ) + (view.name,)

    def refresh(self, view: DeviceView) -> None:
        """Insert or update one device's view (metrics, bitstream, ...)."""
        self.remove(view.name)
        bucket_key: BucketKey = (
            view.vendor, view.platform, tuple(view.available_bitstreams)
        )
        key = self._sort_key(view)
        partitions = self._buckets.setdefault(bucket_key, {})
        partition = partitions.get(view.bitstream)
        if partition is None:
            partition = partitions[view.bitstream] = _Partition()
        partition.add(key, view)
        self._entries[view.name] = (bucket_key, view.bitstream, key, view)

    def remove(self, name: str) -> None:
        entry = self._entries.pop(name, None)
        if entry is None:
            return
        bucket_key, bitstream, key, _view = entry
        self._buckets[bucket_key][bitstream].remove(key)

    def view(self, name: str) -> Optional[DeviceView]:
        entry = self._entries.get(name)
        return entry[3] if entry is not None else None

    def views(self) -> List[DeviceView]:
        """All indexed views in Algorithm 1's pre-sort (name) order."""
        return [self._entries[name][3] for name in sorted(self._entries)]

    # -- queries -----------------------------------------------------------
    @staticmethod
    def _annotated(entries: List[Tuple[tuple, DeviceView]], mismatch: int):
        """Inject a partition's (constant) mismatch bit into its sort keys.

        A named generator, not an inline genexp: the mismatch bit must be
        bound per partition, and a genexp closing over the loop variable
        would resolve it lazily — every partition would see the last
        partition's bit and the merged order would collapse to name order.
        """
        for key, view in entries:
            yield key[:-1] + (mismatch, key[-1]), view

    def _merged(self, query: DeviceQuery):
        """Iterate (merge key, view) in the oracle's exact global order."""
        accelerator = query.accelerator
        iterators = []
        for (vendor, platform, available), partitions \
                in self._buckets.items():
            if not query.matches_vendor(vendor, platform):
                continue
            if accelerator and accelerator not in available:
                continue
            for bitstream, partition in partitions.items():
                if not partition.entries:
                    continue
                iterators.append(self._annotated(
                    partition.entries, 0 if bitstream == accelerator else 1
                ))
        return heapq.merge(*iterators, key=lambda item: item[0])

    def ordered(self, query: DeviceQuery) -> List[DeviceView]:
        """Filtered candidates in the oracle's final order (for tests)."""
        return [view for view in self._walk(query)]

    def _walk(self, query: DeviceQuery):
        filters = self.metrics_filters
        if not filters:
            for _key, view in self._merged(query):
                yield view
            return
        for _key, view in self._merged(query):
            metrics = view.metrics
            if all(f.predicate(metrics.get(f.metric, 0.0)) for f in filters):
                yield view

    def allocate(self, query: DeviceQuery,
                 node_hint: str) -> AllocationDecision:
        """Algorithm 1 over the index; identical decisions to the oracle."""
        ordered: List[DeviceView] = []
        walk = self._walk(query)
        chosen: Optional[DeviceView] = None
        redistribution: List[Tuple[str, str]] = []
        accelerator = query.accelerator
        for view in walk:
            ordered.append(view)
            if not not_compatible(view, query):
                chosen = view
                break
            if all(acc == accelerator for _name, acc in view.workloads):
                # Reconfiguration displaces nothing: the oracle's plan is
                # trivially the empty move list.
                chosen = view
                break
            # Conflicting workloads: the oracle scans the *full* ordered
            # candidate list for redistribution targets, so materialize it.
            index = len(ordered) - 1
            ordered.extend(walk)
            while index < len(ordered):
                device = ordered[index]
                if not not_compatible(device, query):
                    chosen = device
                    break
                plan = redistribution_plan(device, query, ordered)
                if plan is not None:
                    chosen = device
                    redistribution = plan
                    break
                index += 1
            break

        if chosen is None:
            raise AllocationError(
                f"device not found for accelerator {query.accelerator!r}"
            )
        return AllocationDecision(
            device=chosen,
            node=node_hint or chosen.node,
            needs_reconfiguration=not_compatible(chosen, query),
            redistribution=redistribution,
        )

"""The Accelerators Registry: the master component of BlastFunction.

"It registers functions and devices, it aggregates performance metrics, it
allocates devices to functions and it validates reconfiguration operations"
(Section III-C).  Concretely:

* an **admission hook** on the cluster intercepts pod creation, runs
  Algorithm 1, and patches the pod (Device Manager address env var,
  shared-memory volume, forced node placement);
* a **watch** on the cluster keeps the Functions Service in sync with
  deletions;
* a **reconfiguration validator** installed into every Device Manager
  approves/rejects ``BuildProgram`` requests that would reprogram a board;
* when an allocation requires reconfiguration of a busy device, connected
  instances of other accelerators are **migrated** — the cluster deletes
  their pods and (create-before-delete) replacements land elsewhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ...cluster.apiserver import Cluster
from ...cluster.objects import (
    DeviceQuery,
    Pod,
    PodSpec,
    WatchEvent,
    WatchEventType,
)
from ...metrics import Scraper
from ...sim import Environment
from ..device_manager.manager import DeviceManager
from .allocation import (
    AllocationDecision,
    AllocationError,
    DeviceView,
    MetricFilter,
    allocate,
)
from .gatherer import MetricsGatherer
from .services import DevicesService, FunctionsService, InstanceRecord

#: Pod environment variable carrying the allocated Device Manager address.
MANAGER_ENV = "BF_MANAGER"

#: Migration callback: (instance_name, function_name) -> process generator.
Migrator = Callable[[str, str], object]


class AcceleratorsRegistry:
    """Central controller wiring cluster, devices, functions and metrics."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        managers: Sequence[DeviceManager],
        scraper: Optional[Scraper] = None,
        metrics_order: Sequence[str] = ("connected_functions", "utilization"),
        metrics_filters: Sequence[MetricFilter] = (),
        metrics_window: float = 10.0,
        use_shm: bool = True,
    ):
        self.env = env
        self.cluster = cluster
        self.devices = DevicesService()
        self.functions = FunctionsService()
        self.metrics_order = tuple(metrics_order)
        self.metrics_filters = tuple(metrics_filters)
        self.gatherer = (
            MetricsGatherer(scraper, metrics_window) if scraper else None
        )
        #: Mount shared-memory volumes into allocated pods (the paper's
        #: default; disable for the transport ablation).
        self.use_shm = use_shm
        #: Set by the serverless layer to perform create-before-delete moves.
        self.migrator: Optional[Migrator] = None
        self.allocations = 0
        self.migrations = 0
        self.device_failures = 0
        #: Heartbeat/lease monitor, armed by :meth:`enable_health`.
        self.health = None

        for manager in managers:
            self.register_manager(manager)

        cluster.add_admission_hook(self._admit)
        cluster.watch(self._on_watch)

    def register_manager(self, manager: DeviceManager) -> None:
        """Add a Device Manager to the Devices Service (autoscaled nodes)."""
        self.devices.register(manager)
        manager.reconfiguration_validator = self._validate_reconfiguration
        if self.gatherer is not None:
            self.gatherer.scraper.add_target(
                manager.name, manager.metrics, node=manager.node.name
            )
        if self.health is not None:
            self.health.watch_manager(manager)

    def deregister_manager(self, manager_name: str) -> bool:
        """Forget a retired device; refuses while instances are allocated."""
        try:
            record = self.devices.get(manager_name)
        except KeyError:
            return False
        if record.instances:
            return False
        self.devices.remove(manager_name)
        if self.gatherer is not None:
            self.gatherer.scraper.remove_target(manager_name)
        return True

    # -- public API ----------------------------------------------------------
    def register_function(self, name: str, query: DeviceQuery) -> None:
        """Pre-register a function's device requirements."""
        self.functions.register(name, query)

    def device_views(self) -> List[DeviceView]:
        """Snapshot the Devices Service + Metrics Gatherer for Algorithm 1.

        Dead devices are excluded: Algorithm 1 only ever allocates (or
        migrates) onto boards whose lease is current.
        """
        views = []
        for record in self.devices.all():
            if not record.alive:
                continue
            metrics = (
                self.gatherer.device_metrics(record.name)
                if self.gatherer
                else {}
            )
            # The Registry's own Functions Service is authoritative (and
            # fresher than the last scrape) for connected-function counts.
            metrics["connected_functions"] = float(len(record.instances))
            workloads = tuple(
                (inst.name, self.functions.get(inst.function)
                 .device_query.accelerator)
                for inst in self.functions.instances_on_device(record.name)
            )
            views.append(DeviceView(
                name=record.name,
                node=record.node,
                vendor=record.vendor,
                platform=record.platform,
                bitstream=record.effective_bitstream,
                available_bitstreams=record.manager.library.names(),
                metrics=metrics,
                workloads=workloads,
            ))
        return views

    # -- admission (allocation) -------------------------------------------------
    def _admit(self, spec: PodSpec) -> None:
        """Mutating admission: run Algorithm 1 and patch the pod spec."""
        function = self.functions.register(spec.function, spec.device_query)
        query = function.device_query
        decision = allocate(
            query,
            spec.node_name,
            self.device_views(),
            self.metrics_order,
            self.metrics_filters,
        )
        self.allocations += 1

        record = self.devices.get(decision.device.name)
        spec.env[MANAGER_ENV] = record.name
        spec.shm_volume = self.use_shm
        if not spec.node_name:
            spec.node_name = decision.node

        record.instances.add(spec.name)
        self.functions.add_instance(spec.function, InstanceRecord(
            name=spec.name, function=spec.function,
            node=spec.node_name, device=record.name,
        ))

        if decision.needs_reconfiguration:
            record.pending_bitstream = query.accelerator
            if decision.redistribution:
                self._migrate(decision.redistribution)

    def _migrate(self, moves: List) -> None:
        """Kick off create-before-delete migrations of displaced instances."""
        for instance_name, _target in moves:
            instance = self.functions.instance(instance_name)
            if instance is None:
                continue
            self.migrations += 1
            if self.migrator is not None:
                self.env.process(
                    self.migrator(instance_name, instance.function)
                )
            else:
                # No serverless controller attached: plain delete; the
                # deployment layer (if any) recreates.
                self.cluster.delete_pod(instance_name)

    # -- failure detection and recovery ---------------------------------------
    def enable_health(self, network=None, policy=None):
        """Arm the heartbeat/lease protocol between managers and Registry.

        Returns the :class:`~repro.core.registry.health.HealthMonitor`.
        Without this call no health machinery runs at all (the default).
        """
        from .health import HealthMonitor

        if self.health is not None:
            return self.health
        if network is None:
            records = self.devices.all()
            if not records:
                raise ValueError("no managers registered: pass network=")
            network = records[0].manager.network
        self.health = HealthMonitor(self.env, self, network, policy)
        return self.health

    def on_device_failure(self, device_name: str) -> List[str]:
        """Mark a device dead, deallocate it, migrate its instances.

        This is the registry half of the paper's allocation loop applied
        to failures: the dead board leaves the Devices Service's usable
        set, and every instance allocated to it is re-run through
        Algorithm 1 via the create-before-delete migrator.  Returns the
        affected instance names.
        """
        try:
            record = self.devices.get(device_name)
        except KeyError:
            return []
        if not record.alive:
            return []
        record.alive = False
        record.pending_bitstream = None
        self.device_failures += 1
        affected = sorted(record.instances)
        for instance_name in affected:
            instance = self.functions.instance(instance_name)
            if instance is None:
                continue
            self.migrations += 1
            self.env.process(
                self._evacuate(instance_name, instance.function)
            )
        return affected

    def _evacuate(self, instance_name: str, function: str):
        """Process: move one instance off a dead device.

        Algorithm 1 (inside the admission hook the migrator triggers)
        picks the target among live devices; when no compatible device is
        left the pod is shed with a plain delete — graceful degradation,
        the endpoint queue upstream holds requests until capacity returns.
        """
        try:
            if self.migrator is not None:
                yield from self.migrator(instance_name, function)
            else:
                self.cluster.delete_pod(instance_name)
        except Exception:  # noqa: BLE001 - no live target for the move
            self.cluster.delete_pod(instance_name)

    def on_device_recovery(self, device_name: str) -> None:
        """A dead device heartbeats again: return it to the usable set."""
        try:
            record = self.devices.get(device_name)
        except KeyError:
            return
        record.alive = True

    # -- watch ------------------------------------------------------------------
    def _on_watch(self, event: WatchEvent) -> None:
        if event.type is WatchEventType.DELETED:
            pod = event.pod
            instance = self.functions.remove_instance(
                pod.spec.function, pod.name
            )
            if instance and instance.device:
                try:
                    self.devices.get(instance.device).instances.discard(
                        pod.name
                    )
                except KeyError:
                    pass

    # -- reconfiguration validation ------------------------------------------------
    def _validate_reconfiguration(self, client: str, binary: str) -> bool:
        """Approve a Device Manager ``BuildProgram`` that reprograms.

        The requesting instance must be allocated to that device, the
        binary must match its declared accelerator, and no *other* instance
        on the device may need a different accelerator (those should have
        been migrated at allocation time).
        """
        instance = self.functions.instance(client)
        if instance is None or not instance.device:
            return False
        record = self.devices.get(instance.device)
        query = self.functions.get(instance.function).device_query
        if query.accelerator and query.accelerator != binary:
            return False
        for other in self.functions.instances_on_device(record.name):
            if other.name == client:
                continue
            other_acc = self.functions.get(other.function).device_query.accelerator
            if other_acc and other_acc != binary:
                return False
        return True

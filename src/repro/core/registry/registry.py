"""The Accelerators Registry: the master component of BlastFunction.

"It registers functions and devices, it aggregates performance metrics, it
allocates devices to functions and it validates reconfiguration operations"
(Section III-C).  Concretely:

* an **admission hook** on the cluster intercepts pod creation, runs
  Algorithm 1, and patches the pod (Device Manager address env var,
  shared-memory volume, forced node placement);
* a **watch** on the cluster keeps the Functions Service in sync with
  deletions;
* a **reconfiguration validator** installed into every Device Manager
  approves/rejects ``BuildProgram`` requests that would reprogram a board;
* when an allocation requires reconfiguration of a busy device, connected
  instances of other accelerators are **migrated** — the cluster deletes
  their pods and (create-before-delete) replacements land elsewhere.
"""

from __future__ import annotations

import heapq
import math
import os
import time as _time
from typing import Callable, Dict, List, Optional, Sequence

from ...cluster.apiserver import Cluster
from ...cluster.objects import (
    DeviceQuery,
    Pod,
    PodSpec,
    WatchEvent,
    WatchEventType,
)
from ...metrics import MetricsRegistry, Scraper
from ...sim import Environment
from ..device_manager.manager import DeviceManager
from .allocation import (
    AllocationDecision,
    AllocationError,
    DeviceView,
    MetricFilter,
    allocate,
)
from .gatherer import MetricsGatherer
from .index import DeviceIndex
from .services import DeviceRecord, DevicesService, FunctionsService, \
    InstanceRecord

#: Pod environment variable carrying the allocated Device Manager address.
MANAGER_ENV = "BF_MANAGER"

#: Migration callback: (instance_name, function_name) -> process generator.
Migrator = Callable[[str, str], object]

#: Override the allocator implementation ("indexed" | "oracle" | "both")
#: without touching call sites; "both" runs both and asserts equal
#: decisions on every allocation (slow, for debugging).
ALLOCATOR_ENV = "REPRO_ALLOCATOR"

#: Override the reconfiguration-migration mode ("restart" | "live") without
#: touching call sites.  "restart" is the paper's create-before-delete path;
#: "live" checkpoints in-flight state and moves it (docs/live_migration.md).
MIGRATION_ENV = "REPRO_MIGRATION"


class AcceleratorsRegistry:
    """Central controller wiring cluster, devices, functions and metrics."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        managers: Sequence[DeviceManager],
        scraper: Optional[Scraper] = None,
        metrics_order: Sequence[str] = ("connected_functions", "utilization"),
        metrics_filters: Sequence[MetricFilter] = (),
        metrics_window: float = 10.0,
        use_shm: bool = True,
        allocator: str = "indexed",
        migration: str = "restart",
    ):
        self.env = env
        self.cluster = cluster
        self.devices = DevicesService()
        self.functions = FunctionsService()
        self.metrics_order = tuple(metrics_order)
        self.metrics_filters = tuple(metrics_filters)
        self.gatherer = (
            MetricsGatherer(scraper, metrics_window) if scraper else None
        )
        #: Mount shared-memory volumes into allocated pods (the paper's
        #: default; disable for the transport ablation).
        self.use_shm = use_shm
        #: Set by the serverless layer to perform create-before-delete moves.
        self.migrator: Optional[Migrator] = None
        #: Set by the migration plane (:class:`repro.live.LiveMigrator`) to
        #: perform checkpoint/restore moves; only consulted in "live" mode.
        self.live_migrator = None
        self.allocations = 0
        self.migrations = 0
        self.live_migrations = 0
        self.device_failures = 0
        #: Host wall clock accumulated inside Algorithm 1, seconds
        #: (allocation latency = alloc_wall / allocations).
        self.alloc_wall = 0.0
        #: Heartbeat/lease monitor, armed by :meth:`enable_health`.
        self.health = None

        allocator = os.environ.get(ALLOCATOR_ENV, "") or allocator
        if allocator not in ("indexed", "oracle", "both"):
            raise ValueError(f"unknown allocator {allocator!r}")
        self.allocator = allocator

        migration = os.environ.get(MIGRATION_ENV, "") or migration
        if migration not in ("restart", "live"):
            raise ValueError(f"unknown migration mode {migration!r}")
        self.migration_mode = migration

        #: Registry-side metrics, scraped alongside the Device Managers'.
        self.metrics = MetricsRegistry(namespace="registry")
        self._m_migrations = self.metrics.counter(
            "migrations_total",
            "Instances moved off a device (restart or live migration)",
        )
        self._m_live_migrations = self.metrics.counter(
            "live_migrations_total",
            "Instances moved with checkpoint/restore (zero downtime)",
        )
        if scraper is not None:
            scraper.add_target("registry", self.metrics)
        #: Incremental Algorithm 1 index; None in pure-oracle mode.
        self.index: Optional[DeviceIndex] = (
            DeviceIndex(self.metrics_order, self.metrics_filters)
            if allocator != "oracle" else None
        )
        #: Utilization falloff tracking: (valid_until, device) heap plus
        #: the authoritative valid_until per device (heap entries that
        #: disagree are stale and skipped).
        self._falloff: list = []
        self._valid_until: Dict[str, float] = {}
        if self.index is not None and scraper is not None:
            scraper.add_listener(self._on_scrape)

        for manager in managers:
            self.register_manager(manager)

        cluster.add_admission_hook(self._admit)
        cluster.watch(self._on_watch)

    def register_manager(self, manager: DeviceManager) -> None:
        """Add a Device Manager to the Devices Service (autoscaled nodes)."""
        record = self.devices.register(manager)
        manager.reconfiguration_validator = self._validate_reconfiguration
        if self.gatherer is not None:
            self.gatherer.scraper.add_target(
                manager.name, manager.metrics, node=manager.node.name
            )
        if self.health is not None:
            self.health.watch_manager(manager)
        self._index_refresh(record)

    def deregister_manager(self, manager_name: str) -> bool:
        """Forget a retired device; refuses while instances are allocated."""
        try:
            record = self.devices.get(manager_name)
        except KeyError:
            return False
        if record.instances:
            return False
        self.devices.remove(manager_name)
        if self.gatherer is not None:
            self.gatherer.scraper.remove_target(manager_name)
        if self.index is not None:
            self.index.remove(manager_name)
            self._valid_until.pop(manager_name, None)
        return True

    # -- public API ----------------------------------------------------------
    def register_function(self, name: str, query: DeviceQuery) -> None:
        """Pre-register a function's device requirements."""
        self.functions.register(name, query)

    def _view_of(self, record: DeviceRecord,
                 metrics: Optional[Dict[str, float]] = None) -> DeviceView:
        """Build one device's Algorithm 1 snapshot."""
        if metrics is None:
            metrics = (
                self.gatherer.device_metrics(record.name)
                if self.gatherer
                else {}
            )
        # The Registry's own Functions Service is authoritative (and
        # fresher than the last scrape) for connected-function counts.
        metrics["connected_functions"] = float(len(record.instances))
        workloads = tuple(
            (inst.name, self.functions.get(inst.function)
             .device_query.accelerator)
            for inst in self.functions.instances_on_device(record.name)
        )
        return DeviceView(
            name=record.name,
            node=record.node,
            vendor=record.vendor,
            platform=record.platform,
            bitstream=record.effective_bitstream,
            available_bitstreams=record.manager.library.names(),
            metrics=metrics,
            workloads=workloads,
        )

    def device_views(self) -> List[DeviceView]:
        """Snapshot the Devices Service + Metrics Gatherer for Algorithm 1.

        Dead devices are excluded: Algorithm 1 only ever allocates (or
        migrates) onto boards whose lease is current.
        """
        return [
            self._view_of(record)
            for record in self.devices.all()
            if record.alive
        ]

    # -- index maintenance -------------------------------------------------
    def _index_refresh(self, record: Optional[DeviceRecord]) -> None:
        """Rebuild one device's indexed view after any relevant change."""
        if self.index is None or record is None:
            return
        if not record.alive:
            self.index.remove(record.name)
            self._valid_until.pop(record.name, None)
            return
        if self.gatherer is not None:
            utilization, valid_until = (
                self.gatherer.utilization_detail(record.name)
            )
            metrics = {
                "utilization": utilization,
                "connected_functions": 0.0,  # overwritten by _view_of
                "queue_depth": self.gatherer.queue_depth(record.name),
            }
        else:
            metrics = {}
            valid_until = math.inf
        self.index.refresh(self._view_of(record, metrics))
        if valid_until != self._valid_until.get(record.name):
            self._valid_until[record.name] = valid_until
            if not math.isinf(valid_until):
                heapq.heappush(self._falloff, (valid_until, record.name))

    def _refresh_stale(self, now: float) -> None:
        """Re-derive utilization for devices whose cached trailing-window
        rate expired (first in-window sample fell out of the window)."""
        falloff = self._falloff
        while falloff and falloff[0][0] < now:
            valid_until, name = heapq.heappop(falloff)
            if self._valid_until.get(name) != valid_until:
                continue  # superseded by a newer refresh
            try:
                record = self.devices.get(name)
            except KeyError:
                continue
            self._index_refresh(record)

    def _on_scrape(self, now: float) -> None:
        """Scrape listener: fold fresh samples into the allocator index."""
        for record in self.devices.all():
            if record.alive:
                self._index_refresh(record)

    # -- admission (allocation) -------------------------------------------------
    def _allocate(self, query: DeviceQuery,
                  node_hint: str) -> AllocationDecision:
        """Run Algorithm 1 through the configured implementation."""
        start = _time.perf_counter()
        if self.index is not None:
            self._refresh_stale(self.env.now)
            decision = self.index.allocate(query, node_hint)
            if self.allocator == "both":
                oracle = allocate(query, node_hint, self.device_views(),
                                  self.metrics_order, self.metrics_filters)
                assert (
                    decision.device.name == oracle.device.name
                    and decision.node == oracle.node
                    and decision.needs_reconfiguration
                    == oracle.needs_reconfiguration
                    and decision.redistribution == oracle.redistribution
                ), f"allocator divergence: {decision} != {oracle}"
        else:
            decision = allocate(query, node_hint, self.device_views(),
                                self.metrics_order, self.metrics_filters)
        self.alloc_wall += _time.perf_counter() - start
        self.allocations += 1
        return decision

    def _admit(self, spec: PodSpec) -> None:
        """Mutating admission: run Algorithm 1 and patch the pod spec."""
        function = self.functions.register(spec.function, spec.device_query)
        query = function.device_query
        decision = self._allocate(query, spec.node_name)

        record = self.devices.get(decision.device.name)
        spec.env[MANAGER_ENV] = record.name
        spec.shm_volume = self.use_shm
        if not spec.node_name:
            spec.node_name = decision.node

        record.instances.add(spec.name)
        self.functions.add_instance(spec.function, InstanceRecord(
            name=spec.name, function=spec.function,
            node=spec.node_name, device=record.name,
        ))

        if decision.needs_reconfiguration:
            record.pending_bitstream = query.accelerator
            if decision.redistribution:
                self._migrate(record, decision.redistribution)
        self._index_refresh(record)

    def _migrate(self, source: DeviceRecord, moves: List) -> None:
        """Kick off migrations of displaced instances.

        In "restart" mode (the paper's path) each instance is re-created
        through the serverless migrator (create-before-delete).  In "live"
        mode with a migration plane attached, the whole batch is handed to
        the :class:`~repro.live.LiveMigrator`, which drains the source
        device once and checkpoints/restores every victim; the migrator
        calls back into :meth:`complete_live_migration` per instance (and
        falls back to the restart path for unmovable ones).
        """
        live = [
            (instance_name, target) for instance_name, target in moves
            if self.functions.instance(instance_name) is not None
        ]
        if not live:
            return
        if self.migration_mode == "live" and self.live_migrator is not None:
            self.env.process(self.live_migrator.migrate(source.name, live))
            return
        for instance_name, _target in live:
            instance = self.functions.instance(instance_name)
            if instance is None:
                continue
            self.migrations += 1
            self._m_migrations.inc()
            # _evacuate guards the migrator: a move whose replacement fails
            # to start (e.g. its target got reprogrammed meanwhile) degrades
            # to a plain delete instead of crashing the Registry.
            self.env.process(
                self._evacuate(instance_name, instance.function)
            )

    def complete_live_migration(self, instance_name: str,
                                source_name: str, target_name: str) -> None:
        """Bookkeeping after the migration plane moved an instance.

        The pod never restarted — only its accelerator side moved — so the
        cluster object survives; its Device Manager env var is patched to
        the new address and the Registry's indexes are re-pointed.
        """
        source = self.devices.get(source_name)
        target = self.devices.get(target_name)
        source.instances.discard(instance_name)
        target.instances.add(instance_name)
        self.functions.move_instance(instance_name, target_name)
        if instance_name in self.cluster.pods:
            self.cluster.patch_pod(instance_name,
                                   **{MANAGER_ENV: target_name})
        self.migrations += 1
        self.live_migrations += 1
        self._m_migrations.inc()
        self._m_live_migrations.inc()
        self._index_refresh(source)
        self._index_refresh(target)

    # -- failure detection and recovery ---------------------------------------
    def enable_health(self, network=None, policy=None, wheel=None):
        """Arm the heartbeat/lease protocol between managers and Registry.

        Returns the :class:`~repro.core.registry.health.HealthMonitor`.
        Without this call no health machinery runs at all (the default).
        ``wheel`` shares a :class:`~repro.sim.TimerWheel` with other
        periodic work (only used by a coalescing policy).
        """
        from .health import HealthMonitor

        if self.health is not None:
            return self.health
        if network is None:
            records = self.devices.all()
            if not records:
                raise ValueError("no managers registered: pass network=")
            network = records[0].manager.network
        self.health = HealthMonitor(self.env, self, network, policy,
                                    wheel=wheel)
        return self.health

    def on_device_failure(self, device_name: str) -> List[str]:
        """Mark a device dead, deallocate it, migrate its instances.

        This is the registry half of the paper's allocation loop applied
        to failures: the dead board leaves the Devices Service's usable
        set, and every instance allocated to it is re-run through
        Algorithm 1 via the create-before-delete migrator.  Returns the
        affected instance names.
        """
        try:
            record = self.devices.get(device_name)
        except KeyError:
            return []
        if not record.alive:
            return []
        record.alive = False
        record.pending_bitstream = None
        self.device_failures += 1
        self._index_refresh(record)  # drops the dead device from the index
        affected = sorted(record.instances)
        for instance_name in affected:
            instance = self.functions.instance(instance_name)
            if instance is None:
                continue
            self.migrations += 1
            self._m_migrations.inc()
            self.env.process(
                self._evacuate(instance_name, instance.function)
            )
        return affected

    def _evacuate(self, instance_name: str, function: str):
        """Process: move one instance off a dead device.

        Algorithm 1 (inside the admission hook the migrator triggers)
        picks the target among live devices; when no compatible device is
        left the pod is shed with a plain delete — graceful degradation,
        the endpoint queue upstream holds requests until capacity returns.
        """
        try:
            if self.migrator is not None:
                yield from self.migrator(instance_name, function)
            else:
                self.cluster.delete_pod(instance_name)
        except Exception:  # noqa: BLE001 - no live target for the move
            self.cluster.delete_pod(instance_name)

    def on_device_recovery(self, device_name: str) -> None:
        """A dead device heartbeats again: return it to the usable set."""
        try:
            record = self.devices.get(device_name)
        except KeyError:
            return
        record.alive = True
        self._index_refresh(record)

    # -- watch ------------------------------------------------------------------
    def _on_watch(self, event: WatchEvent) -> None:
        if event.type is WatchEventType.DELETED:
            pod = event.pod
            instance = self.functions.remove_instance(
                pod.spec.function, pod.name
            )
            if instance and instance.device:
                try:
                    record = self.devices.get(instance.device)
                except KeyError:
                    return
                record.instances.discard(pod.name)
                self._index_refresh(record)

    # -- reconfiguration validation ------------------------------------------------
    def _validate_reconfiguration(self, client: str, binary: str) -> bool:
        """Approve a Device Manager ``BuildProgram`` that reprograms.

        The requesting instance must be allocated to that device, the
        binary must match its declared accelerator, and no *other* instance
        on the device may need a different accelerator (those should have
        been migrated at allocation time).
        """
        instance = self.functions.instance(client)
        if instance is None or not instance.device:
            return False
        record = self.devices.get(instance.device)
        query = self.functions.get(instance.function).device_query
        if query.accelerator and query.accelerator != binary:
            return False
        for other in self.functions.instances_on_device(record.name):
            if other.name == client:
                continue
            other_acc = self.functions.get(other.function).device_query.accelerator
            if other_acc and other_acc != binary:
                return False
        return True

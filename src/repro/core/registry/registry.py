"""The Accelerators Registry: the master component of BlastFunction.

"It registers functions and devices, it aggregates performance metrics, it
allocates devices to functions and it validates reconfiguration operations"
(Section III-C).  Concretely:

* an **admission hook** on the cluster intercepts pod creation, runs
  Algorithm 1, and patches the pod (Device Manager address env var,
  shared-memory volume, forced node placement);
* a **watch** on the cluster keeps the Functions Service in sync with
  deletions;
* a **reconfiguration validator** installed into every Device Manager
  approves/rejects ``BuildProgram`` requests that would reprogram a board;
* when an allocation requires reconfiguration of a busy device, connected
  instances of other accelerators are **migrated** — the cluster deletes
  their pods and (create-before-delete) replacements land elsewhere.
"""

from __future__ import annotations

import heapq
import json
import math
import os
import time as _time
from typing import Callable, Dict, List, Optional, Sequence

from ...cluster.apiserver import Cluster
from ...cluster.objects import (
    DeviceQuery,
    Pod,
    PodSpec,
    WatchEvent,
    WatchEventType,
)
from ...metrics import MetricsRegistry, Scraper
from ...ocl.errors import CL_REGISTRY_UNAVAILABLE
from ...sim import Environment, Interrupt
from ..device_manager.manager import DeviceManager, DeviceManagerError
from .allocation import (
    AllocationDecision,
    AllocationError,
    DeviceView,
    MetricFilter,
    allocate,
)
from .gatherer import MetricsGatherer
from .index import DeviceIndex
from .services import DeviceRecord, DevicesService, FunctionsService, \
    InstanceRecord
from .store import RegistryStore, WalRecord

#: Pod environment variable carrying the allocated Device Manager address.
MANAGER_ENV = "BF_MANAGER"

#: Migration callback: (instance_name, function_name) -> process generator.
Migrator = Callable[[str, str], object]

#: Override the allocator implementation ("indexed" | "oracle" | "both")
#: without touching call sites; "both" runs both and asserts equal
#: decisions on every allocation (slow, for debugging).
ALLOCATOR_ENV = "REPRO_ALLOCATOR"

#: Override the reconfiguration-migration mode ("restart" | "live") without
#: touching call sites.  "restart" is the paper's create-before-delete path;
#: "live" checkpoints in-flight state and moves it (docs/live_migration.md).
MIGRATION_ENV = "REPRO_MIGRATION"

#: Override the Registry durability mode without touching call sites:
#: "volatile" (the seed behavior — state dies with the process),
#: "durable" (WAL + snapshots in a :class:`RegistryStore`; crash/restart
#: recovers by replay), "replicated" (durable + a warm standby tailing the
#: WAL is expected to drive takeover).  See docs/failure_model.md.
REGISTRY_ENV = "REPRO_REGISTRY"


class RegistryUnavailableError(DeviceManagerError):
    """The Accelerators Registry is down (control-plane blackout).

    Structured and **retryable**: allocation requests that hit a crashed
    Registry fail with ``CL_REGISTRY_UNAVAILABLE`` instead of crashing the
    caller; gateway/controller retry budgets absorb the blackout.
    """

    retryable = True

    def __init__(self, message: str = "accelerators registry unavailable"):
        super().__init__(message, CL_REGISTRY_UNAVAILABLE)


def _query_triple(query: DeviceQuery) -> List[str]:
    return [query.vendor, query.platform, query.accelerator]


class AcceleratorsRegistry:
    """Central controller wiring cluster, devices, functions and metrics."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        managers: Sequence[DeviceManager],
        scraper: Optional[Scraper] = None,
        metrics_order: Sequence[str] = ("connected_functions", "utilization"),
        metrics_filters: Sequence[MetricFilter] = (),
        metrics_window: float = 10.0,
        use_shm: bool = True,
        allocator: str = "indexed",
        migration: str = "restart",
        durability: str = "volatile",
        store: Optional[RegistryStore] = None,
        snapshot_interval: Optional[float] = 5.0,
    ):
        self.env = env
        self.cluster = cluster
        self.devices = DevicesService()
        self.functions = FunctionsService()
        self.metrics_order = tuple(metrics_order)
        self.metrics_filters = tuple(metrics_filters)
        self.gatherer = (
            MetricsGatherer(scraper, metrics_window) if scraper else None
        )
        #: Mount shared-memory volumes into allocated pods (the paper's
        #: default; disable for the transport ablation).
        self.use_shm = use_shm
        #: Set by the serverless layer to perform create-before-delete moves.
        self.migrator: Optional[Migrator] = None
        #: Set by the migration plane (:class:`repro.live.LiveMigrator`) to
        #: perform checkpoint/restore moves; only consulted in "live" mode.
        self.live_migrator = None
        self.allocations = 0
        self.migrations = 0
        self.live_migrations = 0
        self.device_failures = 0
        #: Host wall clock accumulated inside Algorithm 1, seconds
        #: (allocation latency = alloc_wall / allocations).
        self.alloc_wall = 0.0
        #: Heartbeat/lease monitor, armed by :meth:`enable_health`.
        self.health = None

        allocator = os.environ.get(ALLOCATOR_ENV, "") or allocator
        if allocator not in ("indexed", "oracle", "both"):
            raise ValueError(f"unknown allocator {allocator!r}")
        self.allocator = allocator

        migration = os.environ.get(MIGRATION_ENV, "") or migration
        if migration not in ("restart", "live"):
            raise ValueError(f"unknown migration mode {migration!r}")
        self.migration_mode = migration

        durability = os.environ.get(REGISTRY_ENV, "") or durability
        if durability not in ("volatile", "durable", "replicated"):
            raise ValueError(f"unknown registry durability {durability!r}")
        self.durability = durability
        #: Durable medium (WAL + snapshots); ``None`` in volatile mode —
        #: the seed behavior, no logging code runs at all.
        self.store: Optional[RegistryStore] = (
            store if store is not None
            else (RegistryStore() if durability != "volatile" else None)
        )
        #: Fencing token: bumped (and durably recorded) on every (re)start.
        #: Device Managers reject commands carrying an older epoch.
        self.epoch = (self.store.epoch + 1) if self.store is not None else 1
        #: False between :meth:`crash` and the end of :meth:`restart`
        #: replay — the control-plane blackout window.
        self.alive = True
        self.crashes = 0
        self.recoveries = 0
        self.crashed_at: Optional[float] = None
        self.recovered_at: Optional[float] = None
        #: Cumulative control-plane blackout, simulated seconds.
        self.blackout_seconds = 0.0
        #: WAL records read back (and semantic records applied) at restarts.
        self.replayed_ops = 0
        self.replay_applied = 0
        #: Allocation requests refused (CL_REGISTRY_UNAVAILABLE) while down.
        self.denied_admissions = 0
        #: Cluster watch events that arrived while the Registry was dead
        #: (the reconciliation pass heals what they would have recorded).
        self.missed_watch_events = 0
        #: Divergence healed by the post-replay reconciliation pass.
        self.reconciliation: Dict[str, int] = {}
        self._replaying = False
        #: name → manager resolver surviving crashes (Device Manager
        #: addresses live in cluster DNS, not in Registry process memory).
        self._known_managers: Dict[str, DeviceManager] = {}
        #: enable_health arguments, kept to re-arm the monitor on restart.
        self._health_config = None
        self.snapshot_interval = snapshot_interval
        self._snapshot_proc = None

        #: Registry-side metrics, scraped alongside the Device Managers'.
        self.metrics = MetricsRegistry(namespace="registry")
        self._m_migrations = self.metrics.counter(
            "migrations_total",
            "Instances moved off a device (restart or live migration)",
        )
        self._m_live_migrations = self.metrics.counter(
            "live_migrations_total",
            "Instances moved with checkpoint/restore (zero downtime)",
        )
        self._m_epoch = self.metrics.gauge(
            "epoch", "Current Registry fencing epoch (bumps per restart)",
        )
        self._m_blackout = self.metrics.gauge(
            "blackout_seconds_total",
            "Cumulative control-plane blackout (crash until replay done)",
        )
        self._m_replayed = self.metrics.gauge(
            "replayed_ops_total", "WAL records replayed across restarts",
        )
        self._m_epoch.set(self.epoch)
        if scraper is not None:
            scraper.add_target("registry", self.metrics)
        #: Incremental Algorithm 1 index; None in pure-oracle mode.
        self.index: Optional[DeviceIndex] = (
            DeviceIndex(self.metrics_order, self.metrics_filters)
            if allocator != "oracle" else None
        )
        #: Utilization falloff tracking: (valid_until, device) heap plus
        #: the authoritative valid_until per device (heap entries that
        #: disagree are stale and skipped).
        self._falloff: list = []
        self._valid_until: Dict[str, float] = {}
        if self.index is not None and scraper is not None:
            scraper.add_listener(self._on_scrape)

        for manager in managers:
            self.register_manager(manager)
        if self.store is not None:
            self.store.record_epoch(self.epoch)
            if self.snapshot_interval is not None:
                self._snapshot_proc = env.process(self._snapshot_loop())

        cluster.add_admission_hook(self._admit)
        cluster.watch(self._on_watch)

    def register_manager(self, manager: DeviceManager) -> None:
        """Add a Device Manager to the Devices Service (autoscaled nodes)."""
        record = self.devices.register(manager)
        manager.reconfiguration_validator = self._validate_reconfiguration
        self._known_managers[manager.name] = manager
        self._log("register_manager", manager=manager.name)
        if self.gatherer is not None:
            self.gatherer.scraper.add_target(
                manager.name, manager.metrics, node=manager.node.name
            )
        if self.health is not None:
            self.health.watch_manager(manager)
        self._index_refresh(record)

    def deregister_manager(self, manager_name: str) -> bool:
        """Forget a retired device; refuses while instances are allocated."""
        try:
            record = self.devices.get(manager_name)
        except KeyError:
            return False
        if record.instances:
            return False
        self.devices.remove(manager_name)
        self._known_managers.pop(manager_name, None)
        self._log("deregister_manager", manager=manager_name)
        if self.gatherer is not None:
            self.gatherer.scraper.remove_target(manager_name)
        if self.health is not None:
            self.health.unwatch_manager(manager_name)
        if self.index is not None:
            self.index.remove(manager_name)
            self._valid_until.pop(manager_name, None)
        return True

    # -- public API ----------------------------------------------------------
    def register_function(self, name: str, query: DeviceQuery) -> None:
        """Pre-register a function's device requirements."""
        known = self.functions.known(name)
        record = self.functions.register(name, query)
        if not known:
            self._log("register_function", function=name,
                      query=_query_triple(record.device_query))

    def _view_of(self, record: DeviceRecord,
                 metrics: Optional[Dict[str, float]] = None) -> DeviceView:
        """Build one device's Algorithm 1 snapshot."""
        if metrics is None:
            metrics = (
                self.gatherer.device_metrics(record.name)
                if self.gatherer
                else {}
            )
        # The Registry's own Functions Service is authoritative (and
        # fresher than the last scrape) for connected-function counts.
        metrics["connected_functions"] = float(len(record.instances))
        workloads = tuple(
            (inst.name, self.functions.get(inst.function)
             .device_query.accelerator)
            for inst in self.functions.instances_on_device(record.name)
        )
        return DeviceView(
            name=record.name,
            node=record.node,
            vendor=record.vendor,
            platform=record.platform,
            bitstream=record.effective_bitstream,
            available_bitstreams=record.manager.library.names(),
            metrics=metrics,
            workloads=workloads,
        )

    def device_views(self) -> List[DeviceView]:
        """Snapshot the Devices Service + Metrics Gatherer for Algorithm 1.

        Dead devices are excluded: Algorithm 1 only ever allocates (or
        migrates) onto boards whose lease is current.
        """
        return [
            self._view_of(record)
            for record in self.devices.all()
            if record.alive
        ]

    # -- index maintenance -------------------------------------------------
    def _index_refresh(self, record: Optional[DeviceRecord]) -> None:
        """Rebuild one device's indexed view after any relevant change."""
        if self.index is None or record is None:
            return
        if not record.alive:
            self.index.remove(record.name)
            self._valid_until.pop(record.name, None)
            return
        if self.gatherer is not None:
            utilization, valid_until = (
                self.gatherer.utilization_detail(record.name)
            )
            metrics = {
                "utilization": utilization,
                "connected_functions": 0.0,  # overwritten by _view_of
                "queue_depth": self.gatherer.queue_depth(record.name),
            }
        else:
            metrics = {}
            valid_until = math.inf
        self.index.refresh(self._view_of(record, metrics))
        if valid_until != self._valid_until.get(record.name):
            self._valid_until[record.name] = valid_until
            if not math.isinf(valid_until):
                heapq.heappush(self._falloff, (valid_until, record.name))

    def _refresh_stale(self, now: float) -> None:
        """Re-derive utilization for devices whose cached trailing-window
        rate expired (first in-window sample fell out of the window)."""
        falloff = self._falloff
        while falloff and falloff[0][0] < now:
            valid_until, name = heapq.heappop(falloff)
            if self._valid_until.get(name) != valid_until:
                continue  # superseded by a newer refresh
            try:
                record = self.devices.get(name)
            except KeyError:
                continue
            self._index_refresh(record)

    def _on_scrape(self, now: float) -> None:
        """Scrape listener: fold fresh samples into the allocator index."""
        for record in self.devices.all():
            if record.alive:
                self._index_refresh(record)

    # -- admission (allocation) -------------------------------------------------
    def _allocate(self, query: DeviceQuery,
                  node_hint: str) -> AllocationDecision:
        """Run Algorithm 1 through the configured implementation."""
        start = _time.perf_counter()
        if self.index is not None:
            self._refresh_stale(self.env.now)
            decision = self.index.allocate(query, node_hint)
            if self.allocator == "both":
                oracle = allocate(query, node_hint, self.device_views(),
                                  self.metrics_order, self.metrics_filters)
                assert (
                    decision.device.name == oracle.device.name
                    and decision.node == oracle.node
                    and decision.needs_reconfiguration
                    == oracle.needs_reconfiguration
                    and decision.redistribution == oracle.redistribution
                ), f"allocator divergence: {decision} != {oracle}"
        else:
            decision = allocate(query, node_hint, self.device_views(),
                                self.metrics_order, self.metrics_filters)
        self.alloc_wall += _time.perf_counter() - start
        self.allocations += 1
        return decision

    def _admit(self, spec: PodSpec) -> None:
        """Mutating admission: run Algorithm 1 and patch the pod spec."""
        if not self.alive:
            # Control-plane blackout: refuse with a structured retryable
            # error instead of crashing the caller's env.run.
            self.denied_admissions += 1
            raise RegistryUnavailableError(
                f"registry down, cannot admit {spec.name!r}"
            )
        known = self.functions.known(spec.function)
        function = self.functions.register(spec.function, spec.device_query)
        if not known:
            self._log("register_function", function=spec.function,
                      query=_query_triple(function.device_query))
        query = function.device_query
        decision = self._allocate(query, spec.node_name)

        record = self.devices.get(decision.device.name)
        spec.env[MANAGER_ENV] = record.name
        spec.shm_volume = self.use_shm
        if not spec.node_name:
            spec.node_name = decision.node

        record.instances.add(spec.name)
        self.functions.add_instance(spec.function, InstanceRecord(
            name=spec.name, function=spec.function,
            node=spec.node_name, device=record.name,
        ))
        self._log(
            "admit", instance=spec.name, function=spec.function,
            node=spec.node_name, device=record.name,
            pending=(query.accelerator if decision.needs_reconfiguration
                     else None),
        )

        if decision.needs_reconfiguration:
            record.pending_bitstream = query.accelerator
            if decision.redistribution:
                self._migrate(record, decision.redistribution)
        self._index_refresh(record)

    def _migrate(self, source: DeviceRecord, moves: List) -> None:
        """Kick off migrations of displaced instances.

        In "restart" mode (the paper's path) each instance is re-created
        through the serverless migrator (create-before-delete).  In "live"
        mode with a migration plane attached, the whole batch is handed to
        the :class:`~repro.live.LiveMigrator`, which drains the source
        device once and checkpoints/restores every victim; the migrator
        calls back into :meth:`complete_live_migration` per instance (and
        falls back to the restart path for unmovable ones).
        """
        live = [
            (instance_name, target) for instance_name, target in moves
            if self.functions.instance(instance_name) is not None
        ]
        if not live:
            return
        if self.migration_mode == "live" and self.live_migrator is not None:
            self.env.process(self.live_migrator.migrate(source.name, live))
            return
        for instance_name, _target in live:
            instance = self.functions.instance(instance_name)
            if instance is None:
                continue
            self.migrations += 1
            self._m_migrations.inc()
            # _evacuate guards the migrator: a move whose replacement fails
            # to start (e.g. its target got reprogrammed meanwhile) degrades
            # to a plain delete instead of crashing the Registry.
            self.env.process(
                self._evacuate(instance_name, instance.function)
            )

    def complete_live_migration(self, instance_name: str,
                                source_name: str, target_name: str) -> None:
        """Bookkeeping after the migration plane moved an instance.

        The pod never restarted — only its accelerator side moved — so the
        cluster object survives; its Device Manager env var is patched to
        the new address and the Registry's indexes are re-pointed.
        """
        source = self.devices.get(source_name)
        target = self.devices.get(target_name)
        source.instances.discard(instance_name)
        target.instances.add(instance_name)
        self.functions.move_instance(instance_name, target_name)
        self._log("move_instance", instance=instance_name,
                  device=target_name)
        if instance_name in self.cluster.pods:
            self.cluster.patch_pod(instance_name,
                                   **{MANAGER_ENV: target_name})
        self.migrations += 1
        self.live_migrations += 1
        self._m_migrations.inc()
        self._m_live_migrations.inc()
        self._index_refresh(source)
        self._index_refresh(target)

    # -- failure detection and recovery ---------------------------------------
    def enable_health(self, network=None, policy=None, wheel=None):
        """Arm the heartbeat/lease protocol between managers and Registry.

        Returns the :class:`~repro.core.registry.health.HealthMonitor`.
        Without this call no health machinery runs at all (the default).
        ``wheel`` shares a :class:`~repro.sim.TimerWheel` with other
        periodic work (only used by a coalescing policy).
        """
        from .health import HealthMonitor

        if self.health is not None:
            return self.health
        if network is None:
            records = self.devices.all()
            if not records:
                raise ValueError("no managers registered: pass network=")
            network = records[0].manager.network
        self._health_config = (network, policy, wheel)
        self.health = HealthMonitor(self.env, self, network, policy,
                                    wheel=wheel)
        return self.health

    def on_device_failure(self, device_name: str) -> List[str]:
        """Mark a device dead, deallocate it, migrate its instances.

        This is the registry half of the paper's allocation loop applied
        to failures: the dead board leaves the Devices Service's usable
        set, and every instance allocated to it is re-run through
        Algorithm 1 via the create-before-delete migrator.  Returns the
        affected instance names.
        """
        try:
            record = self.devices.get(device_name)
        except KeyError:
            return []
        if not record.alive:
            return []
        record.alive = False
        record.pending_bitstream = None
        self.device_failures += 1
        self._log("device_dead", manager=device_name)
        self._index_refresh(record)  # drops the dead device from the index
        affected = sorted(record.instances)
        for instance_name in affected:
            instance = self.functions.instance(instance_name)
            if instance is None:
                continue
            self.migrations += 1
            self._m_migrations.inc()
            self.env.process(
                self._evacuate(instance_name, instance.function)
            )
        return affected

    def _evacuate(self, instance_name: str, function: str):
        """Process: move one instance off a dead device.

        Algorithm 1 (inside the admission hook the migrator triggers)
        picks the target among live devices; when no compatible device is
        left the pod is shed with a plain delete — graceful degradation,
        the endpoint queue upstream holds requests until capacity returns.
        """
        try:
            if self.migrator is not None:
                yield from self.migrator(instance_name, function)
            else:
                self.cluster.delete_pod(instance_name)
        except Exception:  # noqa: BLE001 - no live target for the move
            self.cluster.delete_pod(instance_name)

    def on_device_recovery(self, device_name: str) -> None:
        """A dead device heartbeats again: return it to the usable set."""
        try:
            record = self.devices.get(device_name)
        except KeyError:
            return
        if not record.alive:
            self._log("device_alive", manager=device_name)
        record.alive = True
        self._index_refresh(record)

    # -- watch ------------------------------------------------------------------
    def _on_watch(self, event: WatchEvent) -> None:
        if not self.alive:
            # A dead Registry sees nothing; the post-restart reconciliation
            # pass heals whatever these events would have recorded.
            self.missed_watch_events += 1
            return
        if event.type is WatchEventType.DELETED:
            pod = event.pod
            instance = self.functions.remove_instance(
                pod.spec.function, pod.name
            )
            if instance is not None:
                self._log("remove_instance", function=pod.spec.function,
                          instance=pod.name)
            if instance and instance.device:
                try:
                    record = self.devices.get(instance.device)
                except KeyError:
                    return
                record.instances.discard(pod.name)
                self._index_refresh(record)

    # -- reconfiguration validation ------------------------------------------------
    def _validate_reconfiguration(self, client: str, binary: str) -> bool:
        """Approve a Device Manager ``BuildProgram`` that reprograms.

        The requesting instance must be allocated to that device, the
        binary must match its declared accelerator, and no *other* instance
        on the device may need a different accelerator (those should have
        been migrated at allocation time).
        """
        if not self.alive:
            # Surfaced to the client as a structured CL_REGISTRY_UNAVAILABLE
            # build failure (retryable) rather than a silent denial.
            raise RegistryUnavailableError(
                f"registry down, cannot validate build for {client!r}"
            )
        instance = self.functions.instance(client)
        if instance is None or not instance.device:
            return False
        record = self.devices.get(instance.device)
        query = self.functions.get(instance.function).device_query
        if query.accelerator and query.accelerator != binary:
            return False
        for other in self.functions.instances_on_device(record.name):
            if other.name == client:
                continue
            other_acc = self.functions.get(other.function).device_query.accelerator
            if other_acc and other_acc != binary:
                return False
        return True

    # -- durability: WAL, snapshots, crash/restart, reconciliation -----------
    #: Simulated cost of applying one replayed WAL record.
    REPLAY_SECONDS_PER_OP = 20e-6
    #: Simulated snapshot read bandwidth (bytes/second) at restart.
    SNAPSHOT_LOAD_BYTES_PER_SECOND = 1e9

    def _log(self, op: str, **args: object) -> None:
        """Append one operation to the WAL (no-op in volatile mode or
        while the log itself is being replayed)."""
        if self.store is not None and not self._replaying:
            self.store.append(op, **args)

    def snapshot_state(self) -> dict:
        """Deterministic full-state snapshot (plain JSON-clean dict)."""
        devices = {
            record.name: {
                "alive": record.alive,
                "pending_bitstream": record.pending_bitstream,
                "instances": sorted(record.instances),
            }
            for record in self.devices.all()
        }
        functions = {
            fn.name: {
                "seq": fn.seq,
                "query": _query_triple(fn.device_query),
                "instances": {
                    inst.name: {
                        "node": inst.node, "device": inst.device,
                        "function_seq": inst.function_seq, "seq": inst.seq,
                    }
                    for inst in fn.instances.values()
                },
            }
            for fn in self.functions.all()
        }
        return {
            "epoch": self.epoch,
            "function_seq": self.functions._function_seq,
            "instance_seq": self.functions._instance_seq,
            "devices": devices,
            "functions": functions,
        }

    def _snapshot_loop(self):
        """Process: periodically fold the WAL into a snapshot."""
        try:
            while True:
                yield self.env.timeout(self.snapshot_interval)
                if self.alive and self.store is not None:
                    self.store.take_snapshot(self.snapshot_state())
        except Interrupt:
            return

    def _install_state(self, state: dict,
                       resolver: Dict[str, DeviceManager]) -> None:
        """Rebuild both services from a snapshot (replay prologue)."""
        for name in sorted(state["devices"]):
            cell = state["devices"][name]
            manager = resolver.get(name)
            if manager is None:
                continue  # address lost; reconciliation may re-adopt it
            record = self.devices.register(manager)
            manager.reconfiguration_validator = (
                self._validate_reconfiguration
            )
            self._known_managers[name] = manager
            record.alive = cell["alive"]
            record.pending_bitstream = cell["pending_bitstream"]
            record.instances = set(cell["instances"])
        for fn_name, cell in sorted(state["functions"].items(),
                                    key=lambda kv: kv[1]["seq"]):
            record = self.functions.register(
                fn_name, DeviceQuery(*cell["query"])
            )
            record.seq = cell["seq"]
            for inst_name, inst in sorted(cell["instances"].items(),
                                          key=lambda kv: kv[1]["seq"]):
                self.functions.restore_instance(InstanceRecord(
                    name=inst_name, function=fn_name, node=inst["node"],
                    device=inst["device"],
                    function_seq=inst["function_seq"], seq=inst["seq"],
                ))
        self.functions._function_seq = max(
            self.functions._function_seq, state["function_seq"]
        )
        self.functions._instance_seq = max(
            self.functions._instance_seq, state["instance_seq"]
        )

    def _apply_record(self, record: WalRecord,
                      resolver: Dict[str, DeviceManager]) -> bool:
        """Apply one replayed WAL record; idempotent (re-applying a record
        the state already reflects is a no-op).  Returns True if applied."""
        op, args = record.op, record.args
        if op == "epoch":
            return False
        if op == "register_manager":
            name = args["manager"]
            if name in self.devices:
                return False
            manager = resolver.get(name)
            if manager is None:
                return False
            self.devices.register(manager)
            manager.reconfiguration_validator = (
                self._validate_reconfiguration
            )
            self._known_managers[name] = manager
            return True
        if op == "deregister_manager":
            name = args["manager"]
            if name not in self.devices:
                return False
            self.devices.remove(name)
            return True
        if op == "register_function":
            name = args["function"]
            if self.functions.known(name):
                return False
            self.functions.register(name, DeviceQuery(*args["query"]))
            return True
        if op == "admit":
            instance = args["instance"]
            if self.functions.instance(instance) is not None:
                return False
            function = args["function"]
            if not self.functions.known(function):
                return False  # its register_function record was lost
            self.functions.add_instance(function, InstanceRecord(
                name=instance, function=function,
                node=args["node"], device=args["device"],
            ))
            if args["device"] in self.devices:
                device = self.devices.get(args["device"])
                device.instances.add(instance)
                if args.get("pending"):
                    device.pending_bitstream = args["pending"]
            return True
        if op == "remove_instance":
            instance = self.functions.remove_instance(
                args["function"], args["instance"]
            )
            if instance is None:
                return False
            if instance.device and instance.device in self.devices:
                self.devices.get(instance.device).instances.discard(
                    args["instance"]
                )
            return True
        if op == "move_instance":
            instance = self.functions.instance(args["instance"])
            if instance is None or instance.device == args["device"]:
                return False
            if instance.device and instance.device in self.devices:
                self.devices.get(instance.device).instances.discard(
                    args["instance"]
                )
            self.functions.move_instance(args["instance"], args["device"])
            if args["device"] in self.devices:
                self.devices.get(args["device"]).instances.add(
                    args["instance"]
                )
            return True
        if op in ("device_dead", "device_alive"):
            name = args["manager"]
            if name not in self.devices:
                return False
            device = self.devices.get(name)
            alive = op == "device_alive"
            if device.alive == alive:
                return False
            device.alive = alive
            if not alive:
                device.pending_bitstream = None
            return True
        return False  # unknown op: forward-compatible skip

    def crash(self) -> None:
        """Fail-stop the Registry process.

        Both services, the allocator index and the health monitor die with
        the process; the admission hook and watch registrations survive on
        the cluster side but refuse/ignore work until :meth:`restart`
        replays the durable store.  In volatile mode the state is simply
        gone (there is nothing to restart from).
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.crashed_at = self.env.now
        if self.health is not None:
            self.health.stop()
            self.health = None
        if self._snapshot_proc is not None and self._snapshot_proc.is_alive:
            self._snapshot_proc.interrupt("registry crashed")
        self._snapshot_proc = None
        self.devices = DevicesService()
        self.functions = FunctionsService()
        if self.index is not None:
            self.index = DeviceIndex(self.metrics_order,
                                     self.metrics_filters)
        self._falloff = []
        self._valid_until = {}

    def restart(self, resolver: Optional[Dict[str, DeviceManager]] = None,
                store: Optional[RegistryStore] = None):
        """Restart a crashed Registry from its durable store.

        Returns the recovery process (joinable): epoch bump → snapshot +
        WAL replay (paying the simulated replay time — the blackout ends
        when replay finishes) → health re-arm → reconciliation against
        DM-reported ground truth.  ``store`` substitutes a different log
        copy (the warm standby's, possibly lagging); ``resolver`` overrides
        the manager-name → :class:`DeviceManager` address book.
        """
        if self.alive:
            return None
        if store is not None:
            self.store = store
        if self.store is None:
            raise RuntimeError(
                "volatile registry has no durable store to restart from"
            )
        return self.env.process(self._recover(resolver))

    def _recover(self, resolver: Optional[Dict[str, DeviceManager]] = None):
        """Process: replay the store, then reconcile with the boards."""
        resolver = dict(resolver) if resolver is not None \
            else dict(self._known_managers)
        snapshot, records = self.store.replay()
        snapshot_bytes = (
            len(json.dumps(snapshot, sort_keys=True,
                           separators=(",", ":")).encode())
            if snapshot is not None else 0
        )
        yield self.env.timeout(
            snapshot_bytes / self.SNAPSHOT_LOAD_BYTES_PER_SECOND
            + self.REPLAY_SECONDS_PER_OP * len(records)
        )
        self.epoch = self.store.epoch + 1
        self._replaying = True
        try:
            if snapshot is not None:
                self._install_state(snapshot, resolver)
            for record in records:
                if self._apply_record(record, resolver):
                    self.replay_applied += 1
        finally:
            self._replaying = False
        self.replayed_ops += len(records)
        self.store.record_epoch(self.epoch)
        # Replay done: the control plane serves again (blackout over).
        self.alive = True
        self.recoveries += 1
        self.recovered_at = self.env.now
        if self.crashed_at is not None:
            self.blackout_seconds += self.env.now - self.crashed_at
        self._m_epoch.set(self.epoch)
        self._m_blackout.set(self.blackout_seconds)
        self._m_replayed.set(self.replayed_ops)
        for record in self.devices.all():
            self._index_refresh(record)
        if self._health_config is not None:
            network, policy, wheel = self._health_config
            self._health_config = None
            self.enable_health(network=network, policy=policy, wheel=wheel)
        yield from self._reconcile(resolver)

    def _reconcile(self, resolver: Dict[str, DeviceManager]):
        """Process: cross-check replayed state against ground truth.

        The boards are authoritative: every known manager is probed with
        an epoch-fenced ``report_state`` command (paying control-message
        network costs), the cluster's pod set is compared with the
        Functions Service, and divergence heals through the existing
        Algorithm-1 / ``_evacuate`` paths.
        """
        from ...rpc.transport import CONTROL_MESSAGE_BYTES
        from .health import REGISTRY_HOST

        diffs = {key: 0 for key in (
            "adopted_devices", "dead_devices", "revived_devices",
            "adopted_instances", "dropped_instances", "moved_instances",
            "evacuated_instances", "orphan_sessions",
        )}
        for name in sorted(resolver):
            manager = resolver[name]
            network = manager.network
            registry_host = network.host(REGISTRY_HOST)
            yield from network.transfer(registry_host, manager.node,
                                        CONTROL_MESSAGE_BYTES)
            try:
                report = manager.registry_command(self.epoch, "report_state")
            except DeviceManagerError:
                report = None
            yield from network.transfer(manager.node, registry_host,
                                        CONTROL_MESSAGE_BYTES)
            if report is None:
                # Dead manager process: nothing answered the probe.
                if name in self.devices and self.devices.get(name).alive:
                    device = self.devices.get(name)
                    device.alive = False
                    device.pending_bitstream = None
                    diffs["dead_devices"] += 1
                    self._log("device_dead", manager=name)
                continue
            if name not in self.devices:
                self.devices.register(manager)
                manager.reconfiguration_validator = (
                    self._validate_reconfiguration
                )
                self._known_managers[name] = manager
                diffs["adopted_devices"] += 1
                self._log("register_manager", manager=name)
            device = self.devices.get(name)
            if report["alive"] and not device.alive:
                device.alive = True
                diffs["revived_devices"] += 1
                self._log("device_alive", manager=name)
            elif not report["alive"] and device.alive:
                device.alive = False
                device.pending_bitstream = None
                diffs["dead_devices"] += 1
                self._log("device_dead", manager=name)
            for client in report["clients"]:
                if self.functions.instance(client) is None:
                    diffs["orphan_sessions"] += 1

        # Cluster pods vs the replayed Functions Service.
        pods = self.cluster.pods
        for device in self.devices.all():
            for instance_name in sorted(device.instances):
                pod = pods.get(instance_name)
                instance = self.functions.instance(instance_name)
                if pod is None:
                    # The pod died while the Registry was dark.
                    device.instances.discard(instance_name)
                    if instance is not None:
                        self.functions.remove_instance(
                            instance.function, instance_name
                        )
                        self._log("remove_instance",
                                  function=instance.function,
                                  instance=instance_name)
                    diffs["dropped_instances"] += 1
                    continue
                actual = pod.spec.env.get(MANAGER_ENV, "")
                if actual and actual != device.name:
                    device.instances.discard(instance_name)
                    if actual in self.devices:
                        self.devices.get(actual).instances.add(
                            instance_name
                        )
                    self.functions.move_instance(instance_name, actual)
                    self._log("move_instance", instance=instance_name,
                              device=actual)
                    diffs["moved_instances"] += 1
        for pod_name in sorted(pods):
            pod = pods[pod_name]
            allocated = pod.spec.env.get(MANAGER_ENV, "")
            if not allocated or self.functions.instance(pod_name) is not None:
                continue
            # An allocation the replayed log never heard of (lost tail).
            if not self.functions.known(pod.spec.function):
                self.functions.register(pod.spec.function,
                                        pod.spec.device_query)
                self._log("register_function", function=pod.spec.function,
                          query=_query_triple(pod.spec.device_query))
            node = pod.spec.node_name or (pod.node.name if pod.node else "")
            self.functions.add_instance(pod.spec.function, InstanceRecord(
                name=pod_name, function=pod.spec.function,
                node=node, device=allocated,
            ))
            pending = None
            if allocated in self.devices:
                device = self.devices.get(allocated)
                device.instances.add(pod_name)
                # Reconstruct the admission's reconfiguration promise: the
                # adopted instance needs its accelerator on the device, so
                # a lost pending_bitstream must be re-established too.
                accelerator = pod.spec.device_query.accelerator
                if accelerator and device.effective_bitstream != accelerator:
                    device.pending_bitstream = accelerator
                    pending = accelerator
            self._log("admit", instance=pod_name,
                      function=pod.spec.function, node=node,
                      device=allocated, pending=pending)
            diffs["adopted_instances"] += 1

        # Instances stranded on dead devices: the usual failure path.
        for device in self.devices.all():
            if device.alive:
                continue
            for instance_name in sorted(device.instances):
                instance = self.functions.instance(instance_name)
                if instance is None:
                    continue
                self.migrations += 1
                self._m_migrations.inc()
                diffs["evacuated_instances"] += 1
                self.env.process(
                    self._evacuate(instance_name, instance.function)
                )
        for device in self.devices.all():
            self._index_refresh(device)
        for key, value in diffs.items():
            self.reconciliation[key] = (
                self.reconciliation.get(key, 0) + value
            )

"""Devices Service and Functions Service (Section III-C).

"The Devices Service collects and manages information about the devices
(e.g. platform, configured bitstream and connected instances).  The
Functions Service contains data about the serverless functions (e.g.
identifier, location, device, created instances)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ...cluster.objects import DeviceQuery
from ..device_manager.manager import DeviceManager


@dataclass
class DeviceRecord:
    """Registry-side view of one Device Manager / board."""

    name: str                       # device manager name, e.g. "dm-B"
    node: str
    vendor: str
    platform: str
    manager: DeviceManager
    #: Bitstream a pending allocation will program (clears once applied).
    pending_bitstream: Optional[str] = None
    #: Instance names currently allocated to this device.
    instances: Set[str] = field(default_factory=set)
    #: False once the Registry marks the device dead (lease expired);
    #: Algorithm 1 never considers dead devices.
    alive: bool = True

    @property
    def configured_bitstream(self) -> Optional[str]:
        return self.manager.configured_bitstream

    @property
    def effective_bitstream(self) -> Optional[str]:
        """What the device will run once pending work lands."""
        if self.pending_bitstream is not None:
            if self.configured_bitstream == self.pending_bitstream:
                # The reconfiguration happened; forget the pending marker.
                self.pending_bitstream = None
                return self.configured_bitstream
            return self.pending_bitstream
        return self.configured_bitstream


class DevicesService:
    """Inventory of the cluster's accelerator devices."""

    def __init__(self) -> None:
        self._devices: Dict[str, DeviceRecord] = {}

    def register(self, manager: DeviceManager) -> DeviceRecord:
        info = manager.library  # vendor/platform come from the bitstreams
        # All bitstreams in the standard library share vendor/platform.
        sample = info.get(info.names()[0]) if len(info) else None
        record = DeviceRecord(
            name=manager.name,
            node=manager.node.name,
            vendor=sample.vendor if sample else "",
            platform=sample.platform if sample else "",
            manager=manager,
        )
        self._devices[record.name] = record
        return record

    def get(self, name: str) -> DeviceRecord:
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"unknown device {name!r}") from None

    def remove(self, name: str) -> Optional[DeviceRecord]:
        """Forget a device (node retired by the autoscaler)."""
        return self._devices.pop(name, None)

    def all(self) -> List[DeviceRecord]:
        return sorted(self._devices.values(), key=lambda d: d.name)

    def on_node(self, node: str) -> List[DeviceRecord]:
        return [d for d in self.all() if d.node == node]

    def __len__(self) -> int:
        return len(self._devices)


@dataclass
class InstanceRecord:
    """One function instance (pod) and its allocation."""

    name: str
    function: str
    node: str = ""
    device: str = ""


@dataclass
class FunctionRecord:
    """One registered serverless function."""

    name: str
    device_query: DeviceQuery
    instances: Dict[str, InstanceRecord] = field(default_factory=dict)


class FunctionsService:
    """Inventory of registered functions and their instances."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionRecord] = {}

    def register(self, name: str, device_query: DeviceQuery) -> FunctionRecord:
        record = self._functions.get(name)
        if record is None:
            record = FunctionRecord(name, device_query)
            self._functions[name] = record
        return record

    def get(self, name: str) -> FunctionRecord:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None

    def add_instance(self, function: str, instance: InstanceRecord) -> None:
        self.get(function).instances[instance.name] = instance

    def remove_instance(self, function: str, instance_name: str
                        ) -> Optional[InstanceRecord]:
        record = self._functions.get(function)
        if record is None:
            return None
        return record.instances.pop(instance_name, None)

    def instance(self, instance_name: str) -> Optional[InstanceRecord]:
        for record in self._functions.values():
            found = record.instances.get(instance_name)
            if found is not None:
                return found
        return None

    def all(self) -> List[FunctionRecord]:
        return sorted(self._functions.values(), key=lambda f: f.name)

    def instances_on_device(self, device: str) -> List[InstanceRecord]:
        return [
            inst
            for record in self._functions.values()
            for inst in record.instances.values()
            if inst.device == device
        ]

"""Devices Service and Functions Service (Section III-C).

"The Devices Service collects and manages information about the devices
(e.g. platform, configured bitstream and connected instances).  The
Functions Service contains data about the serverless functions (e.g.
identifier, location, device, created instances)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ...cluster.objects import DeviceQuery
from ..device_manager.manager import DeviceManager


@dataclass
class DeviceRecord:
    """Registry-side view of one Device Manager / board."""

    name: str                       # device manager name, e.g. "dm-B"
    node: str
    vendor: str
    platform: str
    manager: DeviceManager
    #: Bitstream a pending allocation will program (clears once applied).
    pending_bitstream: Optional[str] = None
    #: Instance names currently allocated to this device.
    instances: Set[str] = field(default_factory=set)
    #: False once the Registry marks the device dead (lease expired);
    #: Algorithm 1 never considers dead devices.
    alive: bool = True

    @property
    def configured_bitstream(self) -> Optional[str]:
        return self.manager.configured_bitstream

    @property
    def effective_bitstream(self) -> Optional[str]:
        """What the device will run once pending work lands."""
        if self.pending_bitstream is not None:
            if self.configured_bitstream == self.pending_bitstream:
                # The reconfiguration happened; forget the pending marker.
                self.pending_bitstream = None
                return self.configured_bitstream
            return self.pending_bitstream
        return self.configured_bitstream


class DevicesService:
    """Inventory of the cluster's accelerator devices."""

    def __init__(self) -> None:
        self._devices: Dict[str, DeviceRecord] = {}
        self._sorted: Optional[List[DeviceRecord]] = None

    def register(self, manager: DeviceManager) -> DeviceRecord:
        info = manager.library  # vendor/platform come from the bitstreams
        # All bitstreams in the standard library share vendor/platform.
        sample = info.get(info.names()[0]) if len(info) else None
        record = DeviceRecord(
            name=manager.name,
            node=manager.node.name,
            vendor=sample.vendor if sample else "",
            platform=sample.platform if sample else "",
            manager=manager,
        )
        self._devices[record.name] = record
        self._sorted = None
        return record

    def get(self, name: str) -> DeviceRecord:
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"unknown device {name!r}") from None

    def remove(self, name: str) -> Optional[DeviceRecord]:
        """Forget a device (node retired by the autoscaler)."""
        self._sorted = None
        return self._devices.pop(name, None)

    def all(self) -> List[DeviceRecord]:
        # Cached between membership changes: re-sorting the whole fleet on
        # every device_views() call is O(n log n) per allocation at scale.
        if self._sorted is None:
            self._sorted = sorted(self._devices.values(),
                                  key=lambda d: d.name)
        return list(self._sorted)

    def on_node(self, node: str) -> List[DeviceRecord]:
        return [d for d in self.all() if d.node == node]

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __len__(self) -> int:
        return len(self._devices)


@dataclass
class InstanceRecord:
    """One function instance (pod) and its allocation."""

    name: str
    function: str
    node: str = ""
    device: str = ""
    #: Registration order of the owning function and insertion order of the
    #: instance, assigned by the Functions Service.  Together they
    #: reconstruct the legacy full-scan iteration order (functions in
    #: registration order, instances in insertion order) from the
    #: per-device index without walking every function.
    function_seq: int = 0
    seq: int = 0


@dataclass
class FunctionRecord:
    """One registered serverless function."""

    name: str
    device_query: DeviceQuery
    instances: Dict[str, InstanceRecord] = field(default_factory=dict)
    #: Registration order within the Functions Service.
    seq: int = 0


class FunctionsService:
    """Inventory of registered functions and their instances.

    Instance lookups are indexed: by name (the Device Manager's
    reconfiguration validator resolves its client on every BuildProgram)
    and by device (Algorithm 1 asks for a device's workloads on every
    allocation) — both were full scans over every registered function.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionRecord] = {}
        self._by_name: Dict[str, InstanceRecord] = {}
        self._by_device: Dict[str, Dict[str, InstanceRecord]] = {}
        self._function_seq = 0
        self._instance_seq = 0

    def register(self, name: str, device_query: DeviceQuery) -> FunctionRecord:
        record = self._functions.get(name)
        if record is None:
            self._function_seq += 1
            record = FunctionRecord(name, device_query,
                                    seq=self._function_seq)
            self._functions[name] = record
        return record

    def get(self, name: str) -> FunctionRecord:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None

    def known(self, name: str) -> bool:
        return name in self._functions

    def add_instance(self, function: str, instance: InstanceRecord) -> None:
        record = self.get(function)
        self._instance_seq += 1
        instance.function_seq = record.seq
        instance.seq = self._instance_seq
        record.instances[instance.name] = instance
        self._by_name[instance.name] = instance
        if instance.device:
            self._by_device.setdefault(instance.device, {})[
                instance.name] = instance

    def remove_instance(self, function: str, instance_name: str
                        ) -> Optional[InstanceRecord]:
        record = self._functions.get(function)
        if record is None:
            return None
        instance = record.instances.pop(instance_name, None)
        if instance is not None:
            self._by_name.pop(instance_name, None)
            on_device = self._by_device.get(instance.device)
            if on_device is not None:
                on_device.pop(instance_name, None)
        return instance

    def move_instance(self, instance_name: str,
                      device: str) -> Optional[InstanceRecord]:
        """Reassign an instance to another device, keeping indexes in sync.

        Used by live migration: the pod (and its node) stay put, only the
        accelerator side moves, so this touches the device index alone.
        """
        instance = self._by_name.get(instance_name)
        if instance is None:
            return None
        if instance.device:
            on_device = self._by_device.get(instance.device)
            if on_device is not None:
                on_device.pop(instance_name, None)
        instance.device = device
        if device:
            self._by_device.setdefault(device, {})[instance_name] = instance
        return instance

    def restore_instance(self, instance: InstanceRecord) -> None:
        """Re-attach a replayed instance with its original sequence numbers.

        Unlike :meth:`add_instance` this does not mint new sequence
        numbers — snapshot replay must reproduce the exact iteration order
        the pre-crash Registry would have used — but the internal counters
        are advanced past the restored values so post-recovery admissions
        keep sequencing monotonically.
        """
        record = self.get(instance.function)
        record.instances[instance.name] = instance
        self._by_name[instance.name] = instance
        if instance.device:
            self._by_device.setdefault(instance.device, {})[
                instance.name] = instance
        self._instance_seq = max(self._instance_seq, instance.seq)
        self._function_seq = max(self._function_seq, instance.function_seq)

    def instance(self, instance_name: str) -> Optional[InstanceRecord]:
        return self._by_name.get(instance_name)

    def all(self) -> List[FunctionRecord]:
        return sorted(self._functions.values(), key=lambda f: f.name)

    def instances_on_device(self, device: str) -> List[InstanceRecord]:
        # Sorting by (function registration, instance insertion) replays
        # the legacy all-functions scan order exactly.
        return sorted(
            self._by_device.get(device, {}).values(),
            key=lambda inst: (inst.function_seq, inst.seq),
        )

"""Heartbeat/lease protocol between Device Managers and the Registry.

Every Device Manager renews a lease by sending a heartbeat control message
to the Registry's well-known endpoint.  Heartbeats ride the same simulated
network as everything else, so partitions and message loss from the fault
plane delay or eat them — exactly how a real lease protocol misfires.

A manager only heartbeats while its server process is alive *and* its board
responds; a crashed manager or a locked-up board stops beating, the lease
expires after :attr:`~repro.faults.HealthPolicy.lease_timeout`, and the
Registry marks the device dead — deallocating it and migrating its
instances through Algorithm 1.  A later heartbeat (restart/recovery)
revives the device.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...faults import HealthPolicy
from ...rpc import Message, Network, RpcEndpoint, make_transport
from ...sim import Environment, Interrupt

#: Network identity of the Registry (the cluster master node).
REGISTRY_HOST = "registry"

HEARTBEAT = "Heartbeat"


class HealthMonitor:
    """Lease bookkeeping on the Registry side plus per-manager beaters.

    Two modes, selected by :attr:`~repro.faults.HealthPolicy.coalesce`:

    * **per-board** (default): every manager runs its own heartbeat
      process and every beat is a control message on the simulated
      network — full fault-plane fidelity, O(boards) DES events per
      heartbeat interval;
    * **coalesced**: one shared :class:`~repro.sim.TimerWheel` tick renews
      every healthy manager's lease and runs the expiry check — O(1)
      periodic events regardless of fleet size.  Failure detection
      semantics (lease age vs ``lease_timeout``, revival on recovery) are
      unchanged, but heartbeats no longer traverse the network, so
      message-level faults cannot delay them.
    """

    def __init__(self, env: Environment, registry, network: Network,
                 policy: HealthPolicy | None = None, wheel=None):
        self.env = env
        self.registry = registry
        self.network = network
        self.policy = policy if policy is not None else HealthPolicy()
        self.host = network.host(REGISTRY_HOST)
        self.inbox = RpcEndpoint(env, "registry/heartbeats")
        #: Last lease renewal per device, simulation seconds.
        self.last_seen: Dict[str, float] = {}
        #: (time, device) log of detected failures / recoveries.
        self.failures_detected: List[Tuple[float, str]] = []
        self.recoveries_detected: List[Tuple[float, str]] = []
        self._procs = []
        self._managers = []
        #: Per-manager heartbeat sender (per-board mode), for unwatching.
        self._beaters: Dict[str, object] = {}
        self.wheel = None
        self._subscription = None
        if self.policy.coalesce:
            from ...sim import TimerWheel

            self.wheel = wheel if wheel is not None else TimerWheel(
                env, self.policy.heartbeat_interval
            )
            self._subscription = self.wheel.every(
                self.wheel.ticks_for(self.policy.heartbeat_interval),
                self._tick,
            )
        for record in registry.devices.all():
            self.watch_manager(record.manager)
        self._procs.append(env.process(self._receiver()))
        if not self.policy.coalesce:
            self._procs.append(env.process(self._checker()))

    def stop(self) -> None:
        for process in self._procs:
            if process.is_alive:
                process.interrupt("health monitor stopped")
        if self.wheel is not None and self._subscription is not None:
            self.wheel.cancel(self._subscription)
            self._subscription = None

    def watch_manager(self, manager) -> None:
        """Start a heartbeat sender on a manager's node."""
        self.last_seen[manager.name] = self.env.now
        self._managers.append(manager)
        if self.policy.coalesce:
            return  # the shared wheel tick covers this manager
        transport = make_transport(self.env, self.network, manager.node,
                                   self.host)
        beater = self.env.process(self._beat(manager, transport))
        self._procs.append(beater)
        self._beaters[manager.name] = beater

    def unwatch_manager(self, manager_name: str) -> None:
        """Forget a deregistered manager: drop its lease and kill its beater.

        Without this, a removed manager leaves a ``last_seen`` entry that
        the lease checker expires forever after, and (in per-board mode) a
        heartbeat process that keeps renewing a lease nobody owns.
        """
        self.last_seen.pop(manager_name, None)
        self._managers = [m for m in self._managers
                          if m.name != manager_name]
        beater = self._beaters.pop(manager_name, None)
        if beater is not None:
            if beater.is_alive:
                beater.interrupt("manager deregistered")
            if beater in self._procs:
                self._procs.remove(beater)

    # -- coalesced mode ------------------------------------------------------
    def _tick(self) -> None:
        """One wheel tick: renew healthy leases, then expire stale ones."""
        now = self.env.now
        for manager in self._managers:
            if not (manager.healthy and manager.board.alive):
                continue
            self.last_seen[manager.name] = now
            try:
                record = self.registry.devices.get(manager.name)
            except KeyError:
                continue
            if not record.alive:
                self.recoveries_detected.append((now, manager.name))
                self.registry.on_device_recovery(manager.name)
        self._check_leases(now)

    def _check_leases(self, now: float) -> None:
        for name, seen in sorted(self.last_seen.items()):
            if now - seen <= self.policy.lease_timeout:
                continue
            try:
                record = self.registry.devices.get(name)
            except KeyError:
                continue
            if record.alive:
                self.failures_detected.append((now, name))
                self.registry.on_device_failure(name)

    # -- processes -----------------------------------------------------------
    def _beat(self, manager, transport):
        """Process: renew one manager's lease while it is actually healthy."""
        try:
            while True:
                yield self.env.timeout(self.policy.heartbeat_interval)
                if manager.healthy and manager.board.alive:
                    yield from transport.deliver_to_server(
                        self.inbox,
                        Message(method=HEARTBEAT, sender=manager.name),
                    )
        except Interrupt:
            return

    def _receiver(self):
        """Process: renew leases; revive devices that beat after death."""
        try:
            while True:
                message: Message = yield self.inbox.inbox.get()
                name = message.sender
                self.last_seen[name] = self.env.now
                try:
                    record = self.registry.devices.get(name)
                except KeyError:
                    continue
                if not record.alive:
                    self.recoveries_detected.append((self.env.now, name))
                    self.registry.on_device_recovery(name)
        except Interrupt:
            return

    def _checker(self):
        """Process: expire stale leases and trigger failure handling."""
        try:
            while True:
                yield self.env.timeout(self.policy.heartbeat_interval)
                self._check_leases(self.env.now)
        except Interrupt:
            return

"""Client↔Device-Manager connection: stream, completion queue, dispatcher.

Mirrors Figure 2 of the paper:

* an ordered **outbound stream** carries command-queue calls (and write
  payloads) to the manager — the sender process pays the transport costs,
  so per-call control latency and data-plane copies land on the simulated
  clock exactly once, in order;
* a **completion queue** receives the manager's asynchronous notifications;
* the **connection thread** (dispatcher process) pulls notifications,
  retrieves the event state machine by tag and advances it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ...faults import RetryPolicy
from ...ocl.errors import CL_DEVICE_MIGRATING, CL_DEVICE_NOT_AVAILABLE
from ...rpc import (
    Message,
    Network,
    NetworkHost,
    RpcEndpoint,
    RpcError,
    RpcTimeout,
    Transport,
    make_transport,
    new_request_id,
    unary_call,
)
from ...sim import Environment, Event, Interrupt, Store
from ..device_manager import protocol
from .events import RemoteEventMachine


@dataclass
class _StreamItem:
    """One outbound stream element."""

    message: Message
    data_nbytes: int = 0
    #: Gates: events to wait for before transmitting (e.g. buffer handles
    #: still being created server-side, or cross-queue wait lists).
    gates: tuple = ()
    #: Late payload binding: called just before transmission so remote ids
    #: resolved by the gates can be filled in.
    finalize: Optional[Any] = None


class Connection:
    """One client's connection to one Device Manager."""

    def __init__(
        self,
        env: Environment,
        client_name: str,
        network: Network,
        client_host: NetworkHost,
        manager_endpoint: RpcEndpoint,
        manager_host: NetworkHost,
        prefer_shm: bool = True,
        recovery: Optional[RetryPolicy] = None,
    ):
        self.env = env
        self.client_name = client_name
        #: ``None`` (default) = no deadlines, no retries, no op guards —
        #: the exact pre-recovery behavior.  A :class:`RetryPolicy` arms
        #: idempotent retries for unary calls and a per-op deadline that
        #: resolves stuck event machines to an error.
        self.recovery = recovery
        self.retries = 0
        self.network = network
        self.client_host = client_host
        self._prefer_shm = prefer_shm
        self.manager_endpoint = manager_endpoint
        self.transport: Transport = make_transport(
            env, network, client_host, manager_host, prefer_shm=prefer_shm
        )
        self.completion_queue = RpcEndpoint(
            env, f"{client_name}/completions"
        )
        self._machines: Dict[Any, RemoteEventMachine] = {}
        self._outbound: Store = Store(env)
        self._sender_proc = env.process(self._sender())
        self._dispatcher_proc = env.process(self._dispatcher())
        self.connected = False
        # -- live-migration stream state (see docs/live_migration.md) -------
        #: While True the sender holds items untransmitted; queued and
        #: in-hand items flow to the (possibly rebound) endpoint on resume.
        self._paused = False
        self._stream_resume: Optional[Event] = None
        self._sender_busy = False
        #: Endpoint rebinds performed on this connection (observability).
        self.rebinds = 0

    # -- lifecycle -----------------------------------------------------------
    def connect(self):
        """Process: register this client with the Device Manager."""
        yield from self.call(protocol.CONNECT, {
            "transport": self.transport,
            "completion_queue": self.completion_queue,
        })
        self.connected = True
        return self

    def disconnect(self):
        """Process: tear down the session server-side and stop workers."""
        if self.connected:
            yield from self.call(protocol.DISCONNECT, {})
            self.connected = False
        self.close()

    def close(self) -> None:
        for process in (self._sender_proc, self._dispatcher_proc):
            if process.is_alive:
                process.interrupt("connection closed")
        # Any machine still in flight can never hear back once the
        # dispatcher stops: resolve it to a structured error, not a hang.
        for machine in list(self._machines.values()):
            machine.on_notification(Message(
                method=protocol.OP_FAILED,
                payload={"error": "connection closed with operation in "
                                  "flight", "code": CL_DEVICE_NOT_AVAILABLE},
                sender="local", tag=machine.tag,
            ))
        self._machines.clear()

    # -- live migration -------------------------------------------------------
    #: Poll period while waiting for the sender to finish its in-flight item.
    PAUSE_POLL = 100e-6

    def pause_stream(self):
        """Process: quiesce the outbound stream at an item boundary.

        Sets the pause flag (the sender parks *before* transmitting its
        next item, so nothing is torn mid-message) and waits until any
        item currently on the wire has finished sending.  The paused items
        stay queued client-side and transmit after :meth:`resume_stream` —
        against the rebound endpoint if :meth:`rebind` ran in between.
        """
        if not self._paused:
            self._paused = True
            self._stream_resume = Event(self.env)
        while True:
            yield self.env.timeout(self.PAUSE_POLL)
            if not self._sender_busy:
                return

    def resume_stream(self) -> None:
        """Release a paused stream; held items transmit immediately."""
        self._paused = False
        event, self._stream_resume = self._stream_resume, None
        if event is not None and not event.triggered:
            event.succeed()

    def rebind(self, manager_endpoint: RpcEndpoint,
               manager_host: NetworkHost,
               prefer_shm: Optional[bool] = None) -> Transport:
        """Point this connection at a new Device Manager (live migration).

        Must be called with the stream paused.  Every queued item, every
        later unary call and every outstanding event machine's traffic
        flows over a fresh transport to the new endpoint; the dispatcher
        routes completions by tag, so machines restored server-side
        resolve on the new manager without the client observing an error.
        """
        if prefer_shm is None:
            prefer_shm = self._prefer_shm
        self.manager_endpoint = manager_endpoint
        self.transport = make_transport(
            self.env, self.network, self.client_host, manager_host,
            prefer_shm=prefer_shm,
        )
        self.rebinds += 1
        return self.transport

    # -- unary (context and information) calls ----------------------------------
    def call(self, method: str, payload: dict):
        """Process: synchronous unary call to the manager.

        With a recovery policy armed the call carries a gRPC-style
        deadline and is retried with exponential backoff under a stable
        request id, so the manager can dedupe re-executions; an error
        *reply* is a definitive answer and is never retried — except
        ``CL_DEVICE_MIGRATING``, which means the manager refused to
        execute at all: the call replays once the migration settles,
        reaching the rebound endpoint.
        """
        while True:
            try:
                result = yield from self._call_once(method, payload)
                return result
            except RpcError as exc:
                if getattr(exc, "code", None) != CL_DEVICE_MIGRATING:
                    raise
                self.retries += 1
                yield from self._await_migration()

    def _await_migration(self):
        """Process: wait until this connection's live migration settles."""
        while True:
            if self._paused and self._stream_resume is not None:
                yield self._stream_resume
            else:
                # Rejected before the migrator paused this connection:
                # back off until the pause/resume cycle happens (or the
                # server stops rejecting us).
                yield self.env.timeout(10 * self.PAUSE_POLL)
            if not self._paused:
                return

    def _call_once(self, method: str, payload: dict):
        policy = self.recovery
        if policy is None:
            result = yield from unary_call(
                self.transport, self.manager_endpoint, method, payload,
                sender=self.client_name,
            )
            return result
        request_id = new_request_id()
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self.retries += 1
                yield self.env.timeout(policy.backoff(attempt - 1))
            try:
                result = yield from unary_call(
                    self.transport, self.manager_endpoint, method, payload,
                    sender=self.client_name, timeout=policy.deadline,
                    request_id=request_id,
                )
                return result
            except RpcTimeout as exc:
                last_error = exc
        raise last_error

    def call_async(self, method: str, payload: dict) -> Event:
        """Issue a unary call in the background; returns an event with the
        result (used for eager resource creation, see the remote driver)."""
        done = Event(self.env)

        def runner():
            try:
                result = yield from self.call(method, payload)
            except Exception as exc:  # noqa: BLE001 - forwarded to waiter
                done.fail(exc)
                done.defused = True
            else:
                done.succeed(result)

        self.env.process(runner())
        return done

    # -- streamed command-queue calls ---------------------------------------
    def register_machine(self, machine: RemoteEventMachine) -> None:
        self._machines[machine.tag] = machine
        policy = self.recovery
        if policy is not None and policy.op_deadline is not None:
            self.env.process(self._op_guard(machine.tag, policy.op_deadline))

    def _op_guard(self, tag: Any, deadline: float):
        """Process: resolve an op stuck past its deadline to an error.

        The guard simply wakes at the deadline; if the machine already
        reached COMPLETE/FAILED it was forgotten and this is a no-op, so
        no cancellation bookkeeping is needed.
        """
        yield self.env.timeout(deadline)
        if tag in self._machines:
            self._fail_machine(
                tag, f"operation deadline of {deadline}s exceeded",
                code=CL_DEVICE_NOT_AVAILABLE,
            )

    def forget(self, tag: Any) -> None:
        self._machines.pop(tag, None)

    def machine(self, tag: Any) -> Optional[RemoteEventMachine]:
        return self._machines.get(tag)

    @property
    def inflight(self) -> int:
        return len(self._machines)

    def stream_send(self, method: str, payload: dict, tag: Any = None) -> None:
        """Queue a control message on the ordered outbound stream."""
        message = Message(method=method, payload=payload,
                          sender=self.client_name, tag=tag)
        self._outbound.put(_StreamItem(message))

    def stream_send_op(self, method: str, finalize, tag: Any,
                       gates: list) -> None:
        """Queue a command-queue call whose payload resolves at send time.

        ``finalize`` is called once all ``gates`` have triggered; if a gate
        fails (e.g. the referenced buffer could not be allocated) the call's
        event state machine is failed locally instead of transmitting.
        """
        message = Message(method=method, payload={},
                          sender=self.client_name, tag=tag)
        self._outbound.put(
            _StreamItem(message, gates=tuple(gates), finalize=finalize)
        )

    def stream_write_data(self, tag: Any, data: Any,
                          nbytes: int) -> None:
        """Queue a bulk write payload (the BUFFER step) on the stream.

        ``data`` is any bytes-like object (bytes, memoryview, numpy array)
        or ``None`` in timing-only mode; it rides the stream uncopied and
        is written into device DDR by the manager — the write path's
        single real copy.
        """
        message = Message(method=protocol.WRITE_DATA,
                          payload={"data": data},
                          sender=self.client_name, tag=tag)
        self._outbound.put(_StreamItem(message, data_nbytes=nbytes))

    # -- worker processes -----------------------------------------------------
    def _sender(self):
        """Transmit stream items in order, paying transport costs."""
        try:
            while True:
                item: _StreamItem = yield self._outbound.get()
                if not (yield from self._resolve_gates(item)):
                    continue
                while self._paused:
                    # Live migration: hold the item untransmitted; on
                    # resume it goes to whatever endpoint/transport the
                    # connection is bound to by then.
                    yield self._stream_resume
                self._sender_busy = True
                try:
                    if item.finalize is not None:
                        try:
                            item.message.payload = item.finalize()
                        except Exception as exc:  # noqa: BLE001
                            self._fail_machine(item.message.tag, str(exc))
                            continue
                    if item.data_nbytes > 0:
                        yield from self.transport.data_to_server(
                            item.data_nbytes)
                        # Bulk payloads ride the data plane; a slim control
                        # message still announces them.
                    yield from self.transport.deliver_to_server(
                        self.manager_endpoint, item.message)
                finally:
                    self._sender_busy = False
        except Interrupt:
            return

    def _resolve_gates(self, item: _StreamItem):
        """Process: wait for an item's gates; False if any gate failed."""
        for gate in item.gates:
            if gate.triggered and gate.ok:
                continue
            try:
                yield gate
            except Exception as exc:  # noqa: BLE001 - routed to the machine
                self._fail_machine(item.message.tag, str(exc))
                return False
        return True

    def _fail_machine(self, tag: Any, error: str,
                      code: Optional[int] = None) -> None:
        machine = self._machines.get(tag)
        if machine is not None:
            machine.on_notification(Message(
                method=protocol.OP_FAILED,
                payload={"error": error, "code": code},
                sender="local", tag=tag,
            ))

    def _dispatcher(self):
        """The connection thread: route notifications to state machines."""
        try:
            while True:
                message: Message = yield self.completion_queue.inbox.get()
                machine = self._machines.get(message.tag)
                if machine is not None:
                    machine.on_notification(message)
                # Unknown tags: the machine already failed/completed; drop.
        except Interrupt:
            return

"""Event state machines of the Remote OpenCL Library.

Every asynchronous OpenCL call is driven by "a set of subsequent
asynchronous calls to the device manager service, a state machine to control
the steps that the event must follow and an OpenCL status for the event"
(Section III-A).  The canonical example from the paper is
``clEnqueueReadBuffer`` with four states: INIT (send call metadata), FIRST
(command enqueued by the manager), BUFFER (payload moves when the manager is
available) and COMPLETE.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from ...ocl.errors import CLError, CL_INVALID_OPERATION
from ...ocl.objects import CLEvent
from ...ocl.types import ExecutionStatus
from ..device_manager import protocol
from ...rpc import Message

if TYPE_CHECKING:  # pragma: no cover
    from .connection import Connection


class FsmState(enum.Enum):
    """States of a remote call's event state machine (paper's naming)."""

    INIT = "INIT"
    FIRST = "FIRST"
    BUFFER = "BUFFER"
    COMPLETE = "COMPLETE"
    FAILED = "FAILED"


class RemoteEventMachine:
    """Drives one remote command's lifecycle and its OpenCL event status.

    The machine's *tag* (the event id — "the pointer to the newly created
    event" in the paper) travels with every request and notification so the
    connection thread can route completions back here.
    """

    def __init__(self, connection: "Connection", cl_event: CLEvent,
                 write_payload: Optional[bytes] = None,
                 write_nbytes: int = 0):
        self.connection = connection
        self.cl_event = cl_event
        self.state = FsmState.INIT
        self._write_payload = write_payload
        self._write_nbytes = write_nbytes
        self.tag = cl_event.id

    @property
    def is_write(self) -> bool:
        return self._write_nbytes > 0 or self._write_payload is not None

    @property
    def terminal(self) -> bool:
        return self.state in (FsmState.COMPLETE, FsmState.FAILED)

    def on_notification(self, message: Message) -> None:
        """Advance on a Device Manager notification (connection thread)."""
        if self.terminal:
            # COMPLETE/FAILED are absorbing: duplicated or straggling
            # notifications after the event resolved are dropped.
            return
        if message.method == protocol.OP_ENQUEUED:
            self._on_enqueued()
        elif message.method == protocol.OP_COMPLETE:
            self._on_complete(message.payload.get("data"))
        elif message.method == protocol.OP_FAILED:
            self._on_failed(message.payload.get("error", "remote failure"),
                            message.payload.get("code"))
        else:
            self._on_failed(f"unexpected notification {message.method!r}")

    # -- transitions ------------------------------------------------------
    def _on_enqueued(self) -> None:
        if self.state is not FsmState.INIT:
            return self._protocol_error("FIRST", "INIT")
        if self.is_write:
            # BUFFER step: send the payload now that the manager is ready.
            self.state = FsmState.BUFFER
            self.connection.stream_write_data(
                self.tag, self._write_payload, self._write_nbytes
            )
        else:
            self.state = FsmState.FIRST
        if self.cl_event.status == int(ExecutionStatus.QUEUED):
            self.cl_event.set_status(ExecutionStatus.SUBMITTED)

    def _on_complete(self, data) -> None:
        if self.state not in (FsmState.FIRST, FsmState.BUFFER, FsmState.INIT):
            return self._protocol_error("COMPLETE", "FIRST/BUFFER")
        self.state = FsmState.COMPLETE
        if self.cl_event.status == int(ExecutionStatus.SUBMITTED):
            self.cl_event.set_status(ExecutionStatus.RUNNING)
        elif self.cl_event.status == int(ExecutionStatus.QUEUED):
            self.cl_event.set_status(ExecutionStatus.SUBMITTED)
            self.cl_event.set_status(ExecutionStatus.RUNNING)
        self.cl_event.complete(data)
        self.connection.forget(self.tag)

    def _on_failed(self, error: str, code: Optional[int] = None) -> None:
        self.state = FsmState.FAILED
        self.cl_event.fail(CLError(
            code if code is not None else CL_INVALID_OPERATION, error))
        self.connection.forget(self.tag)

    def _protocol_error(self, got: str, expected: str) -> None:
        self._on_failed(
            f"protocol violation: {got} notification in state "
            f"{self.state.value} (expected {expected})"
        )

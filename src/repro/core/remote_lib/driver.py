"""The Remote OpenCL Library's driver: OpenCL calls → Device Manager RPC.

Implements the same :class:`~repro.ocl.objects.Driver` interface as the
native vendor runtime, which is the paper's *transparency* property: host
code cannot tell which one it is linked against.

Control-plane resource creation (buffers, kernels) is *eager-asynchronous*:
the call returns immediately with a handle whose remote identity resolves in
the background; command-queue operations referencing the handle are gated on
that resolution inside the ordered outbound stream, so timing and ordering
are preserved without infecting host code with extra blocking points.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...fpga.bitstream import BitstreamLibrary
from ...ocl.errors import (
    CLError,
    CL_BUILD_PROGRAM_FAILURE,
    CL_INVALID_KERNEL_NAME,
    CL_INVALID_VALUE,
    CL_MEM_OBJECT_ALLOCATION_FAILURE,
)
from ...ocl.objects import Command, CommandQueue, Driver, MemBuffer, Platform
from ...ocl.types import CommandType, DeviceType
from ...rpc import RpcError
from ...sim import Environment, Event
from ..device_manager import protocol
from .connection import Connection
from .events import RemoteEventMachine


class RemoteHandle:
    """Client-side handle to a server-side resource, resolved eagerly."""

    def __init__(self, env: Environment):
        self.remote_id: Optional[int] = None
        self.ready: Event = Event(env)
        self.error: Optional[Exception] = None
        self.freed = False

    def resolve(self, remote_id: int) -> None:
        self.remote_id = remote_id
        self.ready.succeed(remote_id)

    def reject(self, error: Exception) -> None:
        self.error = error
        self.ready.fail(error)
        self.ready.defused = True


class RemoteDriver(Driver):
    """Driver backed by a BlastFunction Device Manager connection."""

    def __init__(
        self,
        connection: Connection,
        library: BitstreamLibrary,
        platform_info: Dict[str, Any],
        device_info: Dict[str, Any],
    ):
        self.env = connection.env
        self.connection = connection
        self.library = library
        self._platform_info = dict(platform_info)
        self._device_info = dict(device_info)
        self._kernel_handles: Dict[int, RemoteHandle] = {}

    # -- info ----------------------------------------------------------------
    def platform_info(self) -> Dict[str, str]:
        return dict(self._platform_info)

    def device_info(self) -> Dict[str, Any]:
        info = dict(self._device_info)
        info.setdefault("type", DeviceType.ACCELERATOR)
        return info

    def host_sync_delay(self) -> float:
        # Remote overheads are paid explicitly on the message paths.
        return 0.0

    # -- control plane ---------------------------------------------------------
    def create_buffer(self, buffer: MemBuffer) -> None:
        handle = RemoteHandle(self.env)
        buffer.handle = handle
        payload = {"size": buffer.size}
        if buffer._init_data is not None:
            # COPY_HOST_PTR: the manager stages the initial contents at
            # allocation (setup path; benchmarked flows use enqueued writes).
            payload["data"] = buffer._init_data
        result_event = self.connection.call_async(
            protocol.CREATE_BUFFER, payload
        )
        self._bind(result_event, handle, key="buffer_id")

    def release_buffer(self, buffer: MemBuffer) -> None:
        handle: RemoteHandle = buffer.handle
        if handle is None or handle.freed:
            return
        handle.freed = True

        def release_when_ready():
            if not handle.ready.triggered:
                try:
                    yield handle.ready
                except CLError:
                    return  # creation failed: nothing to release
            if handle.error is None:
                try:
                    yield from self.connection.call(
                        protocol.RELEASE_BUFFER,
                        {"buffer_id": handle.remote_id},
                    )
                except RpcError:
                    # The manager already dropped it (e.g. a full board
                    # reprogram invalidated every buffer): releasing a
                    # stale handle is not a client-visible error.
                    pass

        self.env.process(release_when_ready())

    def kernel_arg_count(self, kernel) -> int:
        """Arity from the shipped kernel metadata; registers the kernel
        server-side in the background."""
        binary = kernel.program.binary_name
        try:
            spec = self.library.get(binary).kernel(kernel.name)
        except KeyError as exc:
            raise CLError(CL_INVALID_KERNEL_NAME, str(exc)) from exc
        handle = RemoteHandle(self.env)
        self._kernel_handles[kernel.id] = handle
        result_event = self.connection.call_async(
            protocol.CREATE_KERNEL, {"binary": binary, "name": kernel.name}
        )
        self._bind(result_event, handle, key="kernel_id")
        return len(spec.args)

    def _bind(self, result_event: Event, handle: RemoteHandle,
              key: str) -> None:
        def binder():
            try:
                result = yield result_event
            except RpcError as exc:
                code = getattr(exc, "code", None)
                handle.reject(CLError(
                    code if code is not None
                    else CL_MEM_OBJECT_ALLOCATION_FAILURE,
                    str(exc),
                ))
            else:
                handle.resolve(int(result[key]))

        self.env.process(binder())

    # -- programming -------------------------------------------------------------
    def build_program(self, program):
        """Process: ask the manager to (re)configure the board."""
        try:
            yield from self.connection.call(
                protocol.BUILD_PROGRAM, {"binary": program.binary_name}
            )
        except RpcError as exc:
            code = getattr(exc, "code", None)
            raise CLError(
                code if code is not None else CL_BUILD_PROGRAM_FAILURE,
                str(exc),
            ) from exc
        return program

    # -- command plane ------------------------------------------------------------
    def create_queue(self, queue: CommandQueue) -> None:
        pass  # queues are identified by id in the wire protocol

    def release_queue(self, queue: CommandQueue) -> None:
        pass

    def enqueue(self, queue: CommandQueue, command: Command) -> None:
        event = command.event
        gates = [dep.completion for dep in command.wait_for
                 if not dep.is_complete]

        if command.type is CommandType.WRITE_BUFFER:
            machine = RemoteEventMachine(
                self.connection, event,
                write_payload=command.data, write_nbytes=command.nbytes,
            )
            assert command.buffer is not None
            handle: RemoteHandle = command.buffer.handle
            payload = {"queue": queue.id, "nbytes": command.nbytes,
                       "offset": command.offset}
            self._send_op(protocol.ENQUEUE_WRITE, machine, payload,
                          gates, buffer_handle=handle)
        elif command.type is CommandType.READ_BUFFER:
            machine = RemoteEventMachine(self.connection, event)
            assert command.buffer is not None
            handle = command.buffer.handle
            payload = {"queue": queue.id, "nbytes": command.nbytes,
                       "offset": command.offset}
            self._send_op(protocol.ENQUEUE_READ, machine, payload,
                          gates, buffer_handle=handle)
        elif command.type is CommandType.COPY_BUFFER:
            machine = RemoteEventMachine(self.connection, event)
            assert command.buffer is not None
            assert command.dst_buffer is not None
            payload = {"queue": queue.id, "nbytes": command.nbytes,
                       "offset": command.offset,
                       "dst_offset": command.dst_offset}
            self._send_op(protocol.ENQUEUE_COPY, machine, payload, gates,
                          buffer_handle=command.buffer.handle,
                          dst_buffer_handle=command.dst_buffer.handle)
        elif command.type in (CommandType.NDRANGE_KERNEL, CommandType.TASK):
            machine = RemoteEventMachine(self.connection, event)
            assert command.kernel is not None
            kernel_handle = self._kernel_handles[command.kernel.id]
            arg_handles = []
            for value in command.kernel_args or []:
                if isinstance(value, MemBuffer):
                    arg_handles.append((protocol.ARG_BUFFER, value.handle))
                else:
                    arg_handles.append((protocol.ARG_SCALAR, value))
            payload = {"queue": queue.id}
            self._send_kernel_op(machine, payload, gates, kernel_handle,
                                 arg_handles)
        elif command.type in (CommandType.MARKER, CommandType.BARRIER):
            machine = RemoteEventMachine(self.connection, event)
            self._send_op(protocol.ENQUEUE_MARKER, machine,
                          {"queue": queue.id}, gates)
        else:
            raise CLError(CL_INVALID_VALUE,
                          f"unsupported command {command.type}")

    def flush(self, queue: CommandQueue) -> None:
        self.connection.stream_send(
            protocol.FLUSH, {"queue": queue.id}
        )

    def close(self) -> None:
        self.connection.close()

    # -- helpers -----------------------------------------------------------------
    def _send_op(self, method: str, machine: RemoteEventMachine,
                 payload: dict, gates: list,
                 buffer_handle: Optional[RemoteHandle] = None,
                 dst_buffer_handle: Optional[RemoteHandle] = None) -> None:
        self.connection.register_machine(machine)
        all_gates = list(gates)
        for handle in (buffer_handle, dst_buffer_handle):
            if handle is not None and not handle.ready.triggered:
                all_gates.append(handle.ready)

        def finalize() -> dict:
            final = dict(payload)
            if buffer_handle is not None:
                if buffer_handle.error is not None:
                    raise buffer_handle.error
                final["buffer_id"] = buffer_handle.remote_id
            if dst_buffer_handle is not None:
                if dst_buffer_handle.error is not None:
                    raise dst_buffer_handle.error
                final["dst_buffer_id"] = dst_buffer_handle.remote_id
            return final

        self.connection.stream_send_op(
            method, finalize, tag=machine.tag, gates=all_gates
        )

    def _send_kernel_op(self, machine: RemoteEventMachine, payload: dict,
                        gates: list, kernel_handle: RemoteHandle,
                        arg_handles: list) -> None:
        self.connection.register_machine(machine)
        all_gates = list(gates)
        if not kernel_handle.ready.triggered:
            all_gates.append(kernel_handle.ready)
        for kind, value in arg_handles:
            if kind == protocol.ARG_BUFFER and not value.ready.triggered:
                all_gates.append(value.ready)

        def finalize() -> dict:
            if kernel_handle.error is not None:
                raise kernel_handle.error
            args = []
            for kind, value in arg_handles:
                if kind == protocol.ARG_BUFFER:
                    if value.error is not None:
                        raise value.error
                    args.append((kind, value.remote_id))
                else:
                    args.append((kind, value))
            final = dict(payload)
            final["kernel_id"] = kernel_handle.remote_id
            final["args"] = args
            return final

        self.connection.stream_send_op(
            protocol.ENQUEUE_KERNEL, finalize, tag=machine.tag,
            gates=all_gates,
        )

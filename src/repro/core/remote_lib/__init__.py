"""The Remote OpenCL Library (client side of BlastFunction).

A drop-in replacement for the vendor OpenCL runtime: a router discovers
Device Managers, a connection per manager carries a tagged call stream and a
completion queue, and per-call event state machines (INIT → FIRST → BUFFER →
COMPLETE) drive standard OpenCL event semantics.
"""

from .connection import Connection
from .driver import RemoteDriver, RemoteHandle
from .events import FsmState, RemoteEventMachine
from .router import ManagerAddress, PlatformRouter, remote_platform

__all__ = [
    "Connection",
    "FsmState",
    "ManagerAddress",
    "PlatformRouter",
    "RemoteDriver",
    "RemoteEventMachine",
    "RemoteHandle",
    "remote_platform",
]

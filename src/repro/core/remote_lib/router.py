"""Platform router: discovery and connection establishment.

"The Remote OpenCL Library implements a central router component, which
keeps the list of the available platforms.  In particular, it gets the
address of the selected Device Manager (or managers if multiple addresses
are provided) and creates a connection to it through gRPC" (Section III-A).

In the deployed system the manager addresses arrive through environment
variables patched into the function's pod by the Accelerators Registry; the
serverless runtime passes the same information here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...fpga.bitstream import BitstreamLibrary
from ...ocl.objects import Platform
from ...rpc import Network, NetworkHost, RpcEndpoint
from ...sim import Environment
from ..device_manager import protocol
from ..device_manager.manager import DeviceManager
from .connection import Connection
from .driver import RemoteDriver


@dataclass(frozen=True)
class ManagerAddress:
    """Where a Device Manager can be reached."""

    name: str
    endpoint: RpcEndpoint
    node: NetworkHost

    @classmethod
    def of(cls, manager: DeviceManager) -> "ManagerAddress":
        return cls(manager.name, manager.endpoint, manager.node)


class PlatformRouter:
    """Keeps the list of available Device Managers and opens connections."""

    def __init__(self, env: Environment, network: Network,
                 library: BitstreamLibrary, recovery=None):
        self.env = env
        self.network = network
        self.library = library
        #: Optional :class:`~repro.faults.RetryPolicy` applied to every
        #: connection this router opens (``None`` = no recovery machinery).
        self.recovery = recovery
        self._managers: Dict[str, ManagerAddress] = {}
        #: Every connection opened through this router (chaos harnesses
        #: inspect these for in-flight machines and retry counts).
        self.connections: List[Connection] = []

    def add_manager(self, address: ManagerAddress) -> None:
        self._managers[address.name] = address

    def add_managers(self, addresses: List[ManagerAddress]) -> None:
        for address in addresses:
            self.add_manager(address)

    def remove_manager(self, name: str) -> None:
        """Forget a Device Manager (node retired by the autoscaler)."""
        self._managers.pop(name, None)

    def managers(self) -> List[str]:
        return sorted(self._managers)

    def connect(
        self,
        client_name: str,
        client_host: NetworkHost,
        manager_name: Optional[str] = None,
        prefer_shm: bool = True,
    ):
        """Process: connect to a Device Manager and build the platform.

        Returns a fully usable :class:`~repro.ocl.objects.Platform` whose
        driver is the Remote OpenCL Library — the object host code receives
        from ``clGetPlatformIDs``.
        """
        if not self._managers:
            raise LookupError("no Device Managers registered with the router")
        if manager_name is None:
            manager_name = sorted(self._managers)[0]
        try:
            address = self._managers[manager_name]
        except KeyError:
            raise LookupError(
                f"unknown Device Manager {manager_name!r} "
                f"(have {sorted(self._managers)})"
            ) from None

        connection = Connection(
            self.env, client_name, self.network, client_host,
            address.endpoint, address.node, prefer_shm=prefer_shm,
            recovery=self.recovery,
        )
        self.connections.append(connection)
        yield from connection.connect()
        platform_info = yield from connection.call(
            protocol.GET_PLATFORM_INFO, {}
        )
        device_info = yield from connection.call(
            protocol.GET_DEVICE_INFO, {}
        )
        driver = RemoteDriver(connection, self.library, platform_info,
                              device_info)
        return Platform(driver)


def remote_platform(
    env: Environment,
    client_name: str,
    client_host: NetworkHost,
    manager: DeviceManager,
    network: Network,
    library: BitstreamLibrary,
    prefer_shm: bool = True,
):
    """Process: one-call convenience to connect a client to one manager."""
    router = PlatformRouter(env, network, library)
    router.add_manager(ManagerAddress.of(manager))
    platform = yield from router.connect(
        client_name, client_host, manager.name, prefer_shm=prefer_shm
    )
    return platform

"""Prometheus-model metrics substrate.

Provides the monitoring pipeline the paper relies on: Device Managers expose
counters/gauges/histograms; a pull-model :class:`Scraper` samples them on an
interval; the Accelerators Registry's Metrics Gatherer runs rate/average
queries over the resulting time series (e.g. FPGA time utilization).
"""

from .registry import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from .scraper import Scraper, ScrapeTarget
from .timeseries import TimeSeries, TimeSeriesDatabase

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "Scraper",
    "ScrapeTarget",
    "TimeSeries",
    "TimeSeriesDatabase",
]

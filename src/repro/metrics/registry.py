"""Prometheus-model metric primitives.

The paper's Accelerators Registry consumes Device Manager metrics "from a
Prometheus service"; this module reproduces the relevant slice of the
Prometheus data model: counters, gauges and histograms with label sets,
collected in a registry that can be scraped (see
:mod:`repro.metrics.scraper`) and rendered in the text exposition format.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

#: Default histogram buckets (seconds), as in the Prometheus client.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.25, 0.5,
    0.75, 1.0, 2.5, 5.0, 7.5, 10.0, float("inf"),
)

_VALID_METRIC_TYPES = ("counter", "gauge", "histogram")


class MetricError(ValueError):
    """Raised on metric misuse (bad labels, decreasing counter, ...)."""


class _Child:
    """A single labelled time series within a metric family."""

    def __init__(self, family: "MetricFamily", labels: LabelValues):
        self._family = family
        self._labels = labels
        self._value = 0.0
        # Render caches, fixed at creation: the label dict and the sorted
        # "key=value" tuple used by collect()/scrapes.
        self._label_dict = dict(zip(family.labelnames, labels))
        self._label_key = tuple(
            f"{k}={v}" for k, v in sorted(self._label_dict.items())
        )
        # Histogram-only state:
        self._sum = 0.0
        self._count = 0
        self._bucket_counts: Optional[list[int]] = None
        self._bucket_label_dicts: Optional[list[dict]] = None
        self._bucket_label_keys: Optional[list[LabelValues]] = None
        if family.type == "histogram":
            self._bucket_counts = [0] * len(family.buckets)
            self._bucket_label_dicts = []
            self._bucket_label_keys = []
            for bound in family.buckets:
                le = "+Inf" if math.isinf(bound) else repr(bound)
                bucket_labels = {**self._label_dict, "le": le}
                self._bucket_label_dicts.append(bucket_labels)
                self._bucket_label_keys.append(tuple(
                    f"{k}={v}" for k, v in sorted(bucket_labels.items())
                ))

    @property
    def value(self) -> float:
        if self._family.type == "histogram":
            raise MetricError("histograms have no scalar value; use sum/count")
        return self._value

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    # -- counter ---------------------------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        if self._family.type == "counter" and amount < 0:
            raise MetricError("counters can only increase")
        if self._family.type == "histogram":
            raise MetricError("use observe() on histograms")
        self._value += amount
        self._family._version += 1

    # -- gauge -----------------------------------------------------------
    def dec(self, amount: float = 1.0) -> None:
        if self._family.type != "gauge":
            raise MetricError("dec() is only valid on gauges")
        self._value -= amount
        self._family._version += 1

    def set(self, value: float) -> None:
        if self._family.type != "gauge":
            raise MetricError("set() is only valid on gauges")
        self._value = float(value)
        self._family._version += 1

    # -- histogram ---------------------------------------------------------
    def observe(self, value: float) -> None:
        if self._family.type != "histogram":
            raise MetricError("observe() is only valid on histograms")
        assert self._bucket_counts is not None
        self._sum += value
        self._count += 1
        self._family._version += 1
        # Buckets are stored non-cumulatively; samples() cumulates on render.
        for index, bound in enumerate(self._family.buckets):
            if value <= bound:
                self._bucket_counts[index] += 1
                break

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q`` from the cumulative bucket counts.

        Uses the same linear interpolation as Prometheus'
        ``histogram_quantile``.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        assert self._bucket_counts is not None
        if self._count == 0:
            return math.nan
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self._family.buckets):
            previous = cumulative
            cumulative += self._bucket_counts[index]
            if cumulative >= rank and self._bucket_counts[index] > 0:
                if math.isinf(bound):
                    return lower
                fraction = (rank - previous) / self._bucket_counts[index]
                return lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
            lower = bound if not math.isinf(bound) else lower
        return lower


class MetricFamily:
    """A named metric with a fixed label schema and many label children."""

    def __init__(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if type not in _VALID_METRIC_TYPES:
            raise MetricError(f"unknown metric type {type!r}")
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = tuple(labelnames)
        buckets = tuple(sorted(set(float(b) for b in buckets)))
        if type == "histogram" and (not buckets or not math.isinf(buckets[-1])):
            buckets = buckets + (float("inf"),)
        self.buckets = buckets
        self._children: Dict[LabelValues, _Child] = {}
        #: Bumped on every sample mutation and child creation; the caches
        #: below remember the version they were computed at, so unchanged
        #: families are never re-sorted or re-rendered (scrapes only pay
        #: for dirty families).
        self._version = 1
        #: Bumped on child creation only — the sorted ordering of children
        #: (and of each child's labels) cannot change otherwise.
        self._children_version = 1
        self._sorted_version = 0
        self._sorted_cache: list = []
        self._rows_version = 0
        self._rows_cache: list = []
        self._text_version = 0
        self._text_cache = ""
        if not self.labelnames:
            # Unlabelled metrics are exposed immediately (at zero), like the
            # Prometheus client library does.
            self.labels()

    def labels(self, *values: str, **kwvalues: str) -> _Child:
        """Get (creating if needed) the child for a label-value combination."""
        if kwvalues:
            if values:
                raise MetricError("pass labels positionally or by name, not both")
            try:
                values = tuple(str(kwvalues[name]) for name in self.labelnames)
            except KeyError as exc:
                raise MetricError(f"missing label {exc.args[0]!r}") from None
            if len(kwvalues) != len(self.labelnames):
                raise MetricError("unexpected label names")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, got {values}"
            )
        child = self._children.get(values)
        if child is None:
            child = _Child(self, values)
            self._children[values] = child
            self._children_version += 1
            self._version += 1
        return child

    def _sorted_children(self) -> list:
        # Invalidated on child creation only (sample mutations cannot
        # reorder a fixed label set).
        if self._sorted_version != self._children_version:
            self._sorted_cache = sorted(self._children.items())
            self._sorted_version = self._children_version
        return self._sorted_cache

    @property
    def _default(self) -> _Child:
        if self.labelnames:
            raise MetricError(f"{self.name} requires labels()")
        return self.labels()

    # Convenience passthroughs for unlabelled metrics -----------------------
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    @property
    def value(self) -> float:
        return self._default.value

    def collect_rows(self) -> list:
        """Cached ``(sample_name, labels, label_key, value)`` rows.

        ``label_key`` is the sorted ``"key=value"`` tuple collect()/scrapes
        key children by.  Rows are recomputed only when the family changed
        since the last call (dirty-family tracking): a scrape re-renders
        only the families that were touched since the previous scrape.
        """
        if self._rows_version == self._version:
            return self._rows_cache
        rows: list = []
        name = self.name
        if self.type == "histogram":
            bucket_name = f"{name}_bucket"
            sum_name = f"{name}_sum"
            count_name = f"{name}_count"
            for _labelvalues, child in self._sorted_children():
                cumulative = 0
                assert child._bucket_counts is not None
                for index, bucket_count in enumerate(child._bucket_counts):
                    cumulative += bucket_count
                    rows.append((
                        bucket_name,
                        child._bucket_label_dicts[index],
                        child._bucket_label_keys[index],
                        float(cumulative),
                    ))
                rows.append((sum_name, child._label_dict,
                             child._label_key, child._sum))
                rows.append((count_name, child._label_dict,
                             child._label_key, float(child._count)))
        else:
            for _labelvalues, child in self._sorted_children():
                rows.append((name, child._label_dict,
                             child._label_key, child._value))
        self._rows_cache = rows
        self._rows_version = self._version
        return rows

    def samples(self) -> Iterable[Tuple[str, Mapping[str, str], float]]:
        """Yield ``(sample_name, labels, value)`` triples, Prometheus-style."""
        for sample_name, labels, _key, value in self.collect_rows():
            yield sample_name, labels, value


class MetricsRegistry:
    """A collection of metric families exposed by one component."""

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._families: Dict[str, MetricFamily] = {}

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, family: MetricFamily) -> MetricFamily:
        if family.name in self._families:
            raise MetricError(f"duplicate metric {family.name!r}")
        self._families[family.name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(
            MetricFamily(self._full_name(name), help, "counter", labelnames)
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(
            MetricFamily(self._full_name(name), help, "gauge", labelnames)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(
            MetricFamily(self._full_name(name), help, "histogram", labelnames, buckets)
        )

    def get(self, name: str) -> MetricFamily:
        return self._families[self._full_name(name)]

    def __contains__(self, name: str) -> bool:
        return self._full_name(name) in self._families

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    def collect(self) -> Dict[str, Dict[LabelValues, float]]:
        """Snapshot all scalar samples as ``{name: {labelvalues: value}}``."""
        snapshot: Dict[str, Dict[LabelValues, float]] = {}
        for family in self._families.values():
            for sample_name, _labels, key, value in family.collect_rows():
                snapshot.setdefault(sample_name, {})[key] = value
        return snapshot

    def render_text(self) -> str:
        """Render the registry in the Prometheus text exposition format.

        Per-family text blocks are cached and re-rendered only for
        families touched since the previous render.
        """
        blocks: list[str] = []
        for family in self._families.values():
            if family._text_version != family._version:
                lines = [
                    f"# HELP {family.name} {family.help}",
                    f"# TYPE {family.name} {family.type}",
                ]
                for sample_name, labels, _key, value in family.collect_rows():
                    if labels:
                        rendered = ",".join(
                            f'{key}="{val}"' for key, val in labels.items()
                        )
                        lines.append(f"{sample_name}{{{rendered}}} {value}")
                    else:
                        lines.append(f"{sample_name} {value}")
                family._text_cache = "\n".join(lines)
                family._text_version = family._version
            blocks.append(family._text_cache)
        return "\n".join(blocks) + "\n"

"""Time-series storage and PromQL-style queries over scraped samples."""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Tuple


class TimeSeries:
    """Timestamped samples of one metric/label-set combination.

    With ``retention`` set the series behaves as a ring buffer: on append,
    samples older than ``newest - retention`` are discarded (in amortized
    O(1) chunks), bounding memory at fleet scale.  Retention must be at
    least as long as the widest query window issued against the series.
    """

    __slots__ = ("name", "labels", "label_set", "retention",
                 "_times", "_values")

    def __init__(self, name: str, labels: Tuple[str, ...] = (),
                 retention: Optional[float] = None):
        self.name = name
        self.labels = labels
        self.label_set = frozenset(labels)
        self.retention = retention
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        times = self._times
        if times and time < times[-1]:
            raise ValueError(
                f"non-monotonic sample at {time} (last {times[-1]})"
            )
        times.append(time)
        self._values.append(value)
        if self.retention is not None:
            cutoff = time - self.retention
            if times[0] < cutoff:
                lo = bisect.bisect_left(times, cutoff)
                # Trim in chunks so the front-of-list delete amortizes.
                if lo >= 64 or lo * 2 >= len(times):
                    del times[:lo]
                    del self._values[:lo]

    def latest(self) -> Optional[float]:
        """Most recent sample value, or None if empty."""
        return self._values[-1] if self._values else None

    def latest_time(self) -> Optional[float]:
        return self._times[-1] if self._times else None

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Samples with ``start <= t <= end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def first_time_in(self, start: float, end: float) -> Optional[float]:
        """Timestamp of the earliest sample in ``[start, end]``, if any.

        Lets callers caching window queries (rate/avg) compute the exact
        instant their cached value expires: the result changes only when a
        new sample lands or when this first sample falls out of a trailing
        window, i.e. strictly after ``first_time_in(...) + window``.
        """
        lo = bisect.bisect_left(self._times, start)
        if lo >= len(self._times) or self._times[lo] > end:
            return None
        return self._times[lo]

    def rate(self, window: float, now: Optional[float] = None) -> float:
        """Per-second increase over the trailing ``window`` (counter rate).

        Like PromQL ``rate()``: uses first/last sample in range. Returns NaN
        with fewer than two samples.
        """
        if now is None:
            now = self._times[-1] if self._times else 0.0
        samples = self.window(now - window, now)
        if len(samples) < 2:
            return math.nan
        (t0, v0), (t1, v1) = samples[0], samples[-1]
        if t1 == t0:
            return math.nan
        increase = v1 - v0
        if increase < 0:  # counter reset
            increase = v1
        return increase / (t1 - t0)

    def avg(self, window: float, now: Optional[float] = None) -> float:
        """Average of samples over the trailing ``window`` (gauge average)."""
        if now is None:
            now = self._times[-1] if self._times else 0.0
        samples = self.window(now - window, now)
        if not samples:
            return math.nan
        return sum(v for _, v in samples) / len(samples)

    def increase(self, window: float, now: Optional[float] = None) -> float:
        """Total increase over the trailing window (counter increase)."""
        r = self.rate(window, now)
        return r * window if not math.isnan(r) else math.nan


class TimeSeriesDatabase:
    """All series scraped from all targets, keyed by (metric, labels).

    Series are additionally indexed by metric name and by every
    ``(metric name, "label=value")`` pair, so :meth:`select` and
    :meth:`select_matching` are independent of the total series count —
    at fleet scale the Metrics Gatherer's per-device queries would
    otherwise scan every series of every board on every allocation.
    Both indices preserve series insertion order, so callers relying on
    "first matching series" semantics see exactly what a full scan
    returned.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Tuple[str, ...]], TimeSeries] = {}
        self._by_name: Dict[str, List[TimeSeries]] = {}
        self._by_label: Dict[Tuple[str, str], List[TimeSeries]] = {}

    def series(self, name: str, labels: Tuple[str, ...] = (),
               retention: Optional[float] = None) -> TimeSeries:
        """Get (creating if needed) a series."""
        key = (name, tuple(labels))
        found = self._series.get(key)
        if found is None:
            found = TimeSeries(name, key[1], retention=retention)
            self._series[key] = found
            self._by_name.setdefault(name, []).append(found)
            for label in found.label_set:
                self._by_label.setdefault((name, label), []).append(found)
        return found

    def lookup(self, name: str, labels: Tuple[str, ...] = ()) -> Optional[TimeSeries]:
        """Get a series if it exists, without creating it."""
        return self._series.get((name, tuple(labels)))

    def select(self, name: str) -> List[TimeSeries]:
        """All series of a metric name regardless of labels."""
        return list(self._by_name.get(name, ()))

    def select_matching(self, name: str, **label_filters: str) -> List[TimeSeries]:
        """Series of ``name`` whose labels contain all given ``key=value``."""
        if not label_filters:
            return self.select(name)
        wanted = [f"{k}={v}" for k, v in label_filters.items()]
        candidates = self._by_label.get((name, wanted[0]))
        if not candidates:
            return []
        rest = wanted[1:]
        if not rest:
            return list(candidates)
        return [
            series for series in candidates
            if all(label in series.label_set for label in rest)
        ]

    def __len__(self) -> int:
        return len(self._series)

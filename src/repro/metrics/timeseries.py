"""Time-series storage and PromQL-style queries over scraped samples."""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Tuple


class TimeSeries:
    """Timestamped samples of one metric/label-set combination."""

    def __init__(self, name: str, labels: Tuple[str, ...] = ()):
        self.name = name
        self.labels = labels
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"non-monotonic sample at {time} (last {self._times[-1]})"
            )
        self._times.append(time)
        self._values.append(value)

    def latest(self) -> Optional[float]:
        """Most recent sample value, or None if empty."""
        return self._values[-1] if self._values else None

    def latest_time(self) -> Optional[float]:
        return self._times[-1] if self._times else None

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Samples with ``start <= t <= end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def rate(self, window: float, now: Optional[float] = None) -> float:
        """Per-second increase over the trailing ``window`` (counter rate).

        Like PromQL ``rate()``: uses first/last sample in range. Returns NaN
        with fewer than two samples.
        """
        if now is None:
            now = self._times[-1] if self._times else 0.0
        samples = self.window(now - window, now)
        if len(samples) < 2:
            return math.nan
        (t0, v0), (t1, v1) = samples[0], samples[-1]
        if t1 == t0:
            return math.nan
        increase = v1 - v0
        if increase < 0:  # counter reset
            increase = v1
        return increase / (t1 - t0)

    def avg(self, window: float, now: Optional[float] = None) -> float:
        """Average of samples over the trailing ``window`` (gauge average)."""
        if now is None:
            now = self._times[-1] if self._times else 0.0
        samples = self.window(now - window, now)
        if not samples:
            return math.nan
        return sum(v for _, v in samples) / len(samples)

    def increase(self, window: float, now: Optional[float] = None) -> float:
        """Total increase over the trailing window (counter increase)."""
        r = self.rate(window, now)
        return r * window if not math.isnan(r) else math.nan


class TimeSeriesDatabase:
    """All series scraped from all targets, keyed by (metric, labels)."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Tuple[str, ...]], TimeSeries] = {}

    def series(self, name: str, labels: Tuple[str, ...] = ()) -> TimeSeries:
        """Get (creating if needed) a series."""
        key = (name, tuple(labels))
        found = self._series.get(key)
        if found is None:
            found = TimeSeries(name, tuple(labels))
            self._series[key] = found
        return found

    def lookup(self, name: str, labels: Tuple[str, ...] = ()) -> Optional[TimeSeries]:
        """Get a series if it exists, without creating it."""
        return self._series.get((name, tuple(labels)))

    def select(self, name: str) -> List[TimeSeries]:
        """All series of a metric name regardless of labels."""
        return [s for (n, _), s in self._series.items() if n == name]

    def select_matching(self, name: str, **label_filters: str) -> List[TimeSeries]:
        """Series of ``name`` whose labels contain all given ``key=value``."""
        wanted = {f"{k}={v}" for k, v in label_filters.items()}
        return [
            series
            for (n, labels), series in self._series.items()
            if n == name and wanted.issubset(set(labels))
        ]

    def __len__(self) -> int:
        return len(self._series)

"""Pull-model metrics scraper (the Prometheus server of the simulation).

A :class:`Scraper` is a simulation process that periodically collects every
registered target's :class:`~repro.metrics.registry.MetricsRegistry` into a
:class:`~repro.metrics.timeseries.TimeSeriesDatabase`.  The Accelerators
Registry's Metrics Gatherer then issues rate/avg queries against that
database, exactly as the paper's Registry queries Prometheus.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Environment, Interrupt
from .registry import MetricsRegistry
from .timeseries import TimeSeriesDatabase


class ScrapeTarget:
    """A named component exposing a metrics registry."""

    def __init__(self, name: str, registry: MetricsRegistry,
                 instance_labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.registry = registry
        self.instance_labels = dict(instance_labels or {})


class Scraper:
    """Periodically scrapes all targets into a time-series database."""

    def __init__(self, env: Environment, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("scrape interval must be > 0")
        self.env = env
        self.interval = interval
        self.database = TimeSeriesDatabase()
        self._targets: Dict[str, ScrapeTarget] = {}
        self.scrape_count = 0
        self._process = env.process(self._run())

    def add_target(self, name: str, registry: MetricsRegistry,
                   **instance_labels: str) -> ScrapeTarget:
        """Register a scrape target (idempotent on name)."""
        target = ScrapeTarget(name, registry, instance_labels)
        self._targets[name] = target
        return target

    def remove_target(self, name: str) -> None:
        self._targets.pop(name, None)

    def scrape_once(self) -> None:
        """Collect one sample from every target at the current time."""
        now = self.env.now
        for target in self._targets.values():
            snapshot = target.registry.collect()
            base_labels = tuple(
                f"{k}={v}" for k, v in sorted(
                    {**target.instance_labels, "instance": target.name}.items()
                )
            )
            for metric_name, children in snapshot.items():
                for labelvalues, value in children.items():
                    labels = tuple(sorted(base_labels + labelvalues))
                    self.database.series(metric_name, labels).append(now, value)
        self.scrape_count += 1

    def stop(self) -> None:
        if self._process.is_alive:
            self._process.interrupt("scraper stopped")

    def _run(self):
        try:
            while True:
                yield self.env.timeout(self.interval)
                self.scrape_once()
        except Interrupt:
            return

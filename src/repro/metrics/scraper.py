"""Pull-model metrics scraper (the Prometheus server of the simulation).

A :class:`Scraper` is a simulation process that periodically collects every
registered target's :class:`~repro.metrics.registry.MetricsRegistry` into a
:class:`~repro.metrics.timeseries.TimeSeriesDatabase`.  The Accelerators
Registry's Metrics Gatherer then issues rate/avg queries against that
database, exactly as the paper's Registry queries Prometheus.

Scale machinery (all off by default, bit-identical when unused):

* each target memoizes the mapping from a family's sample rows to the
  database series objects, so the steady-state scrape is one list append
  per sample — no label-string rebuilding, no dict churn;
* ``retention`` bounds every created series to a trailing ring buffer;
* ``wheel`` rides a shared :class:`~repro.sim.wheel.TimerWheel` instead of
  scheduling a private periodic event, and listeners registered through
  :meth:`add_listener` run synchronously after every scrape (the indexed
  allocator refreshes utilization entries from there).
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional

from ..sim import Environment, Interrupt
from .registry import MetricsRegistry
from .timeseries import TimeSeriesDatabase


class ScrapeTarget:
    """A named component exposing a metrics registry."""

    def __init__(self, name: str, registry: MetricsRegistry,
                 instance_labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.registry = registry
        self.instance_labels = dict(instance_labels or {})
        self.base_labels = tuple(
            f"{k}={v}" for k, v in sorted(
                {**self.instance_labels, "instance": self.name}.items()
            )
        )
        #: (sample_name, label_key) -> TimeSeries, filled on first scrape.
        self._series_cache: dict = {}


class Scraper:
    """Periodically scrapes all targets into a time-series database."""

    def __init__(self, env: Environment, interval: float = 1.0,
                 retention: Optional[float] = None, wheel=None):
        if interval <= 0:
            raise ValueError("scrape interval must be > 0")
        self.env = env
        self.interval = interval
        self.database = TimeSeriesDatabase()
        #: Trailing ring-buffer bound applied to every series (None keeps
        #: full history, the seed behavior).
        self.retention = retention
        self._targets: Dict[str, ScrapeTarget] = {}
        self._listeners: List[Callable[[float], None]] = []
        self.scrape_count = 0
        #: Accumulated host wall clock spent inside scrape_once, seconds.
        self.scrape_wall = 0.0
        self._process = None
        self._subscription = None
        if wheel is not None:
            self._subscription = wheel.every(
                wheel.ticks_for(interval), self.scrape_once
            )
            self._wheel = wheel
        else:
            self._wheel = None
            self._process = env.process(self._run())

    def add_target(self, name: str, registry: MetricsRegistry,
                   **instance_labels: str) -> ScrapeTarget:
        """Register a scrape target (idempotent on name)."""
        target = ScrapeTarget(name, registry, instance_labels)
        self._targets[name] = target
        return target

    def remove_target(self, name: str) -> None:
        self._targets.pop(name, None)

    def add_listener(self, listener: Callable[[float], None]) -> None:
        """Call ``listener(now)`` synchronously after every scrape."""
        self._listeners.append(listener)

    def scrape_once(self) -> None:
        """Collect one sample from every target at the current time."""
        start = _time.perf_counter()
        now = self.env.now
        database = self.database
        retention = self.retention
        for target in self._targets.values():
            cache = target._series_cache
            base_labels = target.base_labels
            for family in target.registry.families():
                for sample_name, _labels, label_key, value \
                        in family.collect_rows():
                    key = (sample_name, label_key)
                    series = cache.get(key)
                    if series is None:
                        labels = tuple(sorted(base_labels + label_key))
                        series = database.series(sample_name, labels,
                                                 retention=retention)
                        cache[key] = series
                    series.append(now, value)
        self.scrape_count += 1
        self.scrape_wall += _time.perf_counter() - start
        for listener in self._listeners:
            listener(now)

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("scraper stopped")
        if self._subscription is not None and self._wheel is not None:
            self._wheel.cancel(self._subscription)
            self._subscription = None

    def _run(self):
        try:
            while True:
                yield self.env.timeout(self.interval)
                self.scrape_once()
        except Interrupt:
            return

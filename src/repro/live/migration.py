"""The live-migration plane: drain → checkpoint → transfer → restore.

Orchestrates zero-downtime moves of function instances between Device
Managers when Algorithm 1's redistribution displaces them (the Registry's
``migration="live"`` mode).  Per batch of moves off one source board:

1. mark the victims as migrating and **drain** the source manager —
   workers quiesce at the next operation boundary, racing submits are
   rejected with ``CL_DEVICE_MIGRATING`` (the client connection replays
   them after the rebind);
2. per victim: **pause** the client's outbound stream, wait a settle
   window for in-flight WRITE payloads to land, **capture** the session
   into a :class:`~repro.live.checkpoint.SessionCheckpoint`;
3. pay the **state transfer** over the cluster network (buffer contents,
   staged payloads, metadata);
4. **rebind** the client connection to the target manager and **restore**
   the session there — outstanding OpenCL event machines resolve on the
   new manager because completions are routed by tag;
5. complete the Registry bookkeeping and **resume** the stream and the
   source manager.

Any victim that cannot move live (no connection, incompatible or full
target, target busy with other tenants' bitstream) falls back to the
paper's create-before-delete restart migration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.device_manager.manager import DeviceManager
from ..rpc import Network
from ..sim import Environment
from .checkpoint import CheckpointError, capture_session, restore_session

#: Resolves an instance name to its live client connection (or None).
ConnectionResolver = Callable[[str], Optional[object]]


def controller_connection_resolver(controller) -> ConnectionResolver:
    """Resolver over a serverless FunctionController's running instances."""

    def resolve(instance_name: str):
        instance = controller.instances.get(instance_name)
        if instance is None or instance.platform is None:
            return None
        return getattr(instance.platform.driver, "connection", None)

    return resolve


class LiveMigrator:
    """Checkpoint/restore mover wired into the Accelerators Registry."""

    #: Seconds to wait after pausing a client's stream before capturing:
    #: write payloads already on the wire (up to ~25 MB at 10 GbE) land in
    #: the manager's pending-write table instead of being lost.
    SETTLE = 0.02

    def __init__(
        self,
        env: Environment,
        registry,
        managers: Dict[str, DeviceManager],
        connection_of: ConnectionResolver,
        network: Optional[Network] = None,
    ):
        self.env = env
        self.registry = registry
        self.managers = dict(managers)
        self.connection_of = connection_of
        self.network = network
        #: Sessions moved live / moves that fell back to restart.
        self.migrated = 0
        self.fallbacks = 0
        #: (instance, source, target) tuples of completed live moves.
        self.log: List[Tuple[str, str, str]] = []

    # -- entry point (spawned by Registry._migrate) --------------------------
    def migrate(self, source_name: str, moves: List[Tuple[str, str]]):
        """Process: move every ``(instance, target)`` off ``source_name``."""
        source = self.managers.get(source_name)
        victims: List[Tuple[str, str, object]] = []
        restart: List[str] = []
        for instance_name, target_name in moves:
            target = self.managers.get(target_name)
            connection = self.connection_of(instance_name)
            if (source is None or target is None or connection is None
                    or not source.alive or not target.alive
                    or instance_name not in source.sessions):
                restart.append(instance_name)
                continue
            victims.append((instance_name, target_name, connection))

        if victims and source is not None:
            for instance_name, _target, _conn in victims:
                source.migrating_clients.add(instance_name)
            yield from source.drain()
            for instance_name, target_name, connection in victims:
                moved = yield from self._migrate_one(
                    source, instance_name, target_name, connection
                )
                if not moved:
                    restart.append(instance_name)
            source.resume()

        for instance_name in restart:
            self.fallbacks += 1
            yield from self._restart(instance_name)

    # -- one victim ----------------------------------------------------------
    def _migrate_one(self, source: DeviceManager, instance_name: str,
                     target_name: str, connection):
        target = self.managers[target_name]
        yield from connection.pause_stream()
        yield self.env.timeout(self.SETTLE)

        ready = yield from self._prepare_target(target, instance_name)
        if not ready:
            connection.resume_stream()
            return False

        try:
            checkpoint = capture_session(source, instance_name)
        except CheckpointError:
            connection.resume_stream()
            return False

        if self.network is not None and not self.network.is_local(
                source.node, target.node):
            yield from self.network.transfer(
                source.node, target.node, checkpoint.transfer_nbytes
            )

        transport = connection.rebind(target.endpoint, target.node)
        try:
            restore_session(target, checkpoint, transport,
                            connection.completion_queue)
        except CheckpointError:
            # Target refused (e.g. out of memory): the session is gone on
            # both sides — the restart fallback recreates the instance.
            connection.resume_stream()
            return False

        self.registry.complete_live_migration(
            instance_name, source.name, target.name
        )
        self.migrated += 1
        self.log.append((instance_name, source.name, target.name))
        connection.resume_stream()
        return True

    def _prepare_target(self, target: DeviceManager, instance_name: str):
        """Process: make sure the target board runs the victim's bitstream.

        Algorithm 1 already picked a compatible target; when the image is
        not loaded yet the board is reprogrammed — but only while no other
        tenant holds live buffers there (a full reprogram wipes DDR).
        Returns False when the move must fall back to a restart.
        """
        needed = self._required_bitstream(instance_name)
        if needed is None:
            return True
        live = [slot.name for slot in target.board.slots if slot is not None]
        if needed in live:
            return True
        try:
            bitstream = target.library.get(needed)
        except KeyError:
            return False
        if len(target.board.memory):
            return False  # another tenant holds live DDR; reprogram wipes it
        if target.board.slot_count > 1:
            free = [i for i, slot in enumerate(target.board.slots)
                    if slot is None]
            slot = free[0] if free else target.board.slot_count - 1
            yield from target.board.program_slot(slot, bitstream)
        else:
            yield from target.board.program(bitstream)
        target._m_reconfigurations.inc()
        return True

    def _required_bitstream(self, instance_name: str) -> Optional[str]:
        instance = self.registry.functions.instance(instance_name)
        if instance is None:
            return None
        query = self.registry.functions.get(instance.function).device_query
        return query.accelerator or None

    # -- restart fallback -----------------------------------------------------
    def _restart(self, instance_name: str):
        """Process: the paper's create-before-delete move for one victim."""
        registry = self.registry
        instance = registry.functions.instance(instance_name)
        if instance is None:
            return
        registry.migrations += 1
        registry._m_migrations.inc()
        yield from registry._evacuate(instance_name, instance.function)

"""Live-migration plane: checkpoint/restore of in-flight accelerated work.

See docs/live_migration.md for the state machine and drain invariants.
"""

from .checkpoint import (
    BoardCheckpoint,
    BufferCheckpoint,
    CheckpointError,
    OperationCheckpoint,
    SessionCheckpoint,
    TaskCheckpoint,
    capture_board,
    capture_session,
    restore_session,
)
from .migration import LiveMigrator, controller_connection_resolver

__all__ = [
    "BoardCheckpoint",
    "BufferCheckpoint",
    "CheckpointError",
    "LiveMigrator",
    "OperationCheckpoint",
    "SessionCheckpoint",
    "TaskCheckpoint",
    "capture_board",
    "capture_session",
    "controller_connection_resolver",
    "restore_session",
]

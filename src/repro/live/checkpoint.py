"""Board checkpoints: serializable captures of a Device Manager's state.

A :class:`BoardCheckpoint` (or a per-client :class:`SessionCheckpoint`)
captures everything a migration target needs to carry on serving a client
as if nothing happened:

* the **programmed bitstream** the session's kernels require;
* the client's **resource pool** — kernel handles and allocated DDR
  segments, with buffer contents when the board runs functionally;
* the **task backlog** at operation granularity: the unexecuted suffix of
  a preempted task, every queued task (in the scheduler's service order)
  and the still-open (unflushed) accumulator operations;
* **pending write** markers for WRITE operations whose payload has not
  arrived yet, so the target re-arms ``data_ready`` and the payload lands
  there after the stream rebind;
* the client's recent **unary reply cache** entries, keeping retried
  context calls idempotent across the move (in-memory only — soft state).

Capture happens only while the source manager is *drained* (see
:meth:`~repro.core.device_manager.manager.DeviceManager.drain`): every
worker parked at an operation boundary, the scheduler frozen, so the
snapshot is consistent by construction.

The wire format (:meth:`BoardCheckpoint.to_wire`) is deterministic —
``sorted(keys)`` JSON metadata plus concatenated binary blobs — so the
round trip ``to_wire → from_wire → to_wire`` is bit-identical, which the
hypothesis property suite asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.device_manager.manager import ClientSession, DeviceManager
from ..core.device_manager.tasks import Operation, OpType, Task
from ..sim import Event

#: Wire-format magic prefix (version 1).
MAGIC = b"BFCK1\n"


class CheckpointError(RuntimeError):
    """The session/board state could not be captured or restored."""


@dataclass
class BufferCheckpoint:
    """One allocated DDR segment, as the client refers to it."""

    buffer_id: int          #: client-visible id (source-side allocator id)
    size: int
    offset: int             #: source-side placement (exact restore only)
    data: Optional[bytes] = None   #: contents; None on timing-only boards


@dataclass
class OperationCheckpoint:
    """One command-queue operation, detached from live simulator objects."""

    type: str               #: OpType value ("write", "read", ...)
    queue_id: int
    tag: Any
    buffer_id: Optional[int] = None
    dst_buffer_id: Optional[int] = None
    nbytes: int = 0
    offset: int = 0
    dst_offset: int = 0
    kernel_id: Optional[int] = None
    kernel_args: Optional[List[Any]] = None
    data: Optional[bytes] = None
    #: True when the WRITE payload had not arrived at capture time: the
    #: restore re-arms ``data_ready`` and registers the pending-write tag.
    pending: bool = False


@dataclass
class TaskCheckpoint:
    """One submitted (or stolen-suffix) task, in service order."""

    queue_id: int
    operations: List[OperationCheckpoint]
    submitted_at: Optional[float] = None


@dataclass
class SessionCheckpoint:
    """Everything needed to re-home one client on another board."""

    client: str
    next_kernel_id: int
    #: kernel_id -> (binary, kernel_name)
    kernels: Dict[int, Tuple[str, str]]
    buffers: List[BufferCheckpoint]
    #: Stolen-suffix tasks first, then queued tasks, in service order.
    tasks: List[TaskCheckpoint]
    #: Unflushed accumulator operations, in arrival order.
    open_operations: List[OperationCheckpoint] = field(default_factory=list)
    #: Cached unary replies [(request_id, ok, value)] — soft state carried
    #: in-memory only, never serialized (values may hold live objects).
    replies: List[Tuple[Any, bool, Any]] = field(default_factory=list)

    @property
    def transfer_nbytes(self) -> int:
        """Bytes that must cross the network to move this session."""
        total = sum(b.size for b in self.buffers)
        for ops in [*(t.operations for t in self.tasks),
                    self.open_operations]:
            total += sum(len(op.data) for op in ops if op.data is not None)
        return total + len(_session_meta(self))


@dataclass
class BoardCheckpoint:
    """A whole board's migratable state (one or many client sessions)."""

    manager: str
    bitstream: Optional[str]
    captured_at: float
    sessions: List[SessionCheckpoint]

    @property
    def transfer_nbytes(self) -> int:
        return sum(s.transfer_nbytes for s in self.sessions)

    # -- wire format ---------------------------------------------------------
    def to_wire(self) -> bytes:
        """Serialize: MAGIC + 8-byte length + sorted-keys JSON + blobs.

        The reply cache is connection-local soft state and is excluded;
        everything else round-trips bit-identically.
        """
        blobs: List[bytes] = []
        meta = {
            "manager": self.manager,
            "bitstream": self.bitstream,
            "captured_at": self.captured_at,
            "sessions": [_session_meta(s, blobs) for s in self.sessions],
        }
        encoded = json.dumps(meta, sort_keys=True,
                             separators=(",", ":")).encode()
        return b"".join([MAGIC, len(encoded).to_bytes(8, "big"),
                         encoded, *blobs])

    @classmethod
    def from_wire(cls, data: bytes) -> "BoardCheckpoint":
        if not data.startswith(MAGIC):
            raise CheckpointError("not a board checkpoint (bad magic)")
        cursor = len(MAGIC)
        meta_len = int.from_bytes(data[cursor:cursor + 8], "big")
        cursor += 8
        meta = json.loads(data[cursor:cursor + meta_len])
        blob_base = cursor + meta_len

        def blob(ref) -> Optional[bytes]:
            if ref is None:
                return None
            start, length = ref
            return bytes(data[blob_base + start:blob_base + start + length])

        sessions = [_session_from_meta(s, blob) for s in meta["sessions"]]
        return cls(manager=meta["manager"], bitstream=meta["bitstream"],
                   captured_at=meta["captured_at"], sessions=sessions)


# -- metadata helpers ---------------------------------------------------------
def _op_meta(op: OperationCheckpoint, blobs: Optional[List[bytes]],
             offset: List[int]) -> dict:
    ref = None
    if op.data is not None and blobs is not None:
        ref = [offset[0], len(op.data)]
        blobs.append(op.data)
        offset[0] += len(op.data)
    return {
        "type": op.type, "queue_id": op.queue_id, "tag": op.tag,
        "buffer_id": op.buffer_id, "dst_buffer_id": op.dst_buffer_id,
        "nbytes": op.nbytes, "offset": op.offset,
        "dst_offset": op.dst_offset, "kernel_id": op.kernel_id,
        "kernel_args": op.kernel_args, "data": ref, "pending": op.pending,
    }


def _session_meta(session: SessionCheckpoint,
                  blobs: Optional[List[bytes]] = None) -> bytes | dict:
    """JSON metadata of one session; appends binary blobs when collecting.

    Called without ``blobs`` it returns the encoded metadata bytes (used
    to estimate the wire size of :attr:`SessionCheckpoint.transfer_nbytes`
    without building the full image).
    """
    sizing = blobs is None
    offset = [sum(len(b) for b in blobs)] if blobs is not None else [0]
    meta = {
        "client": session.client,
        "next_kernel_id": session.next_kernel_id,
        "kernels": {str(k): list(v) for k, v in session.kernels.items()},
        "buffers": [],
        "tasks": [],
        "open_operations": [_op_meta(op, blobs, offset)
                            for op in session.open_operations],
    }
    for buffer in session.buffers:
        ref = None
        if buffer.data is not None and blobs is not None:
            ref = [offset[0], len(buffer.data)]
            blobs.append(buffer.data)
            offset[0] += len(buffer.data)
        meta["buffers"].append({
            "buffer_id": buffer.buffer_id, "size": buffer.size,
            "offset": buffer.offset, "data": ref,
        })
    for task in session.tasks:
        meta["tasks"].append({
            "queue_id": task.queue_id,
            "submitted_at": task.submitted_at,
            "operations": [_op_meta(op, blobs, offset)
                           for op in task.operations],
        })
    if sizing:
        return json.dumps(meta, sort_keys=True,
                          separators=(",", ":")).encode()
    return meta


def _op_from_meta(meta: dict, blob) -> OperationCheckpoint:
    args = meta["kernel_args"]
    return OperationCheckpoint(
        type=meta["type"], queue_id=meta["queue_id"], tag=meta["tag"],
        buffer_id=meta["buffer_id"], dst_buffer_id=meta["dst_buffer_id"],
        nbytes=meta["nbytes"], offset=meta["offset"],
        dst_offset=meta["dst_offset"], kernel_id=meta["kernel_id"],
        kernel_args=args, data=blob(meta["data"]),
        pending=meta["pending"],
    )


def _session_from_meta(meta: dict, blob) -> SessionCheckpoint:
    return SessionCheckpoint(
        client=meta["client"],
        next_kernel_id=meta["next_kernel_id"],
        kernels={int(k): tuple(v) for k, v in meta["kernels"].items()},
        buffers=[
            BufferCheckpoint(buffer_id=b["buffer_id"], size=b["size"],
                             offset=b["offset"], data=blob(b["data"]))
            for b in meta["buffers"]
        ],
        tasks=[
            TaskCheckpoint(
                queue_id=t["queue_id"],
                submitted_at=t["submitted_at"],
                operations=[_op_from_meta(o, blob) for o in t["operations"]],
            )
            for t in meta["tasks"]
        ],
        open_operations=[_op_from_meta(o, blob)
                         for o in meta["open_operations"]],
    )


# -- capture ------------------------------------------------------------------
def _checkpoint_op(operation: Operation) -> OperationCheckpoint:
    pending = (operation.data_ready is not None
               and not operation.data_ready.triggered)
    data = operation.data
    if data is not None and not isinstance(data, bytes):
        data = bytes(data)  # memoryview / numpy payloads staged earlier
    args = operation.kernel_args
    if args is not None:
        # Normalize (kind, value) pairs to lists so the JSON round trip
        # reproduces the capture bit-identically.
        args = [list(pair) for pair in args]
    return OperationCheckpoint(
        type=operation.type.value, queue_id=operation.queue_id,
        tag=operation.tag, buffer_id=operation.buffer_id,
        dst_buffer_id=operation.dst_buffer_id, nbytes=operation.nbytes,
        offset=operation.offset, dst_offset=operation.dst_offset,
        kernel_id=operation.kernel_id, kernel_args=args,
        data=None if pending else data, pending=pending,
    )


def capture_session(manager: DeviceManager, client: str) -> SessionCheckpoint:
    """Capture one drained client off ``manager`` (destructive).

    Steals the unexecuted suffix of any parked task, pulls the client's
    queued and unflushed work, snapshots buffers/kernels, frees the
    source-side DDR, moves the client's cached replies out and removes the
    session — leaving a tombstone transport so racing unary calls still
    receive ``CL_DEVICE_MIGRATING`` until :meth:`DeviceManager.resume`.
    """
    session = manager.sessions.get(client)
    if session is None:
        raise CheckpointError(f"no session for client {client!r}")
    if not manager.migrating:
        raise CheckpointError("capture requires a drained manager")

    stolen = manager.steal_parked_ops(client)
    queued = manager.take_client_tasks(client)
    open_tasks = manager.accumulator.flush_client(client)

    tasks: List[TaskCheckpoint] = []
    # The stolen suffix resumes first, before any queued task, preserving
    # the per-queue order the client observed.
    if stolen:
        by_queue: Dict[int, List[Operation]] = {}
        for operation in stolen:
            by_queue.setdefault(operation.queue_id, []).append(operation)
        for queue_id, operations in by_queue.items():
            tasks.append(TaskCheckpoint(
                queue_id=queue_id,
                operations=[_checkpoint_op(op) for op in operations],
            ))
    for task in queued:
        tasks.append(TaskCheckpoint(
            queue_id=task.queue_id,
            submitted_at=task.submitted_at,
            operations=[_checkpoint_op(op) for op in task.operations],
        ))
    open_operations = [
        _checkpoint_op(op)
        for task in open_tasks for op in task.operations
    ]

    # Pending-write tags move with the session: their payloads will arrive
    # at the target once the stream rebinds.
    for operation in stolen:
        manager._pending_writes.pop(operation.tag, None)
    for task in [*queued, *open_tasks]:
        for operation in task.operations:
            manager._pending_writes.pop(operation.tag, None)

    buffers: List[BufferCheckpoint] = []
    for buffer_id, buffer in session.buffers.items():
        if buffer.freed:
            continue  # invalidated by an earlier reprogram; stays invalid
        data = (bytes(buffer.read())
                if manager.board.functional else None)
        buffers.append(BufferCheckpoint(
            buffer_id=buffer_id, size=buffer.size,
            offset=buffer.offset, data=data,
        ))
        manager.board.free(buffer)
    session.buffers.clear()

    replies = []
    for key in [k for k in manager._replies if k[0] == client]:
        _transport, ok, value = manager._replies.pop(key)
        replies.append((key[1], ok, value))

    # Tear the session down; the tombstone keeps rejects answerable.
    manager._migrating_transports[client] = session.transport
    session.connected = False
    del manager.sessions[client]
    manager._m_clients.set(len(manager.sessions))

    return SessionCheckpoint(
        client=client,
        next_kernel_id=session._next_kernel_id,
        kernels=dict(session.kernels),
        buffers=buffers,
        tasks=tasks,
        open_operations=open_operations,
        replies=replies,
    )


def capture_board(manager: DeviceManager) -> BoardCheckpoint:
    """Capture every session of a drained manager (destructive)."""
    sessions = [capture_session(manager, client)
                for client in sorted(manager.sessions)]
    return BoardCheckpoint(
        manager=manager.name,
        bitstream=manager.configured_bitstream,
        captured_at=manager.env.now,
        sessions=sessions,
    )


# -- restore ------------------------------------------------------------------
def _rebuild_op(meta: OperationCheckpoint, client: str,
                manager: DeviceManager) -> Operation:
    operation = Operation(
        type=OpType(meta.type), client=client, queue_id=meta.queue_id,
        tag=meta.tag, buffer_id=meta.buffer_id,
        dst_buffer_id=meta.dst_buffer_id, nbytes=meta.nbytes,
        offset=meta.offset, dst_offset=meta.dst_offset,
        kernel_id=meta.kernel_id, kernel_args=meta.kernel_args,
        data=meta.data,
    )
    if meta.pending:
        # Re-arm the payload gate; the WRITE_DATA message reaches this
        # manager after the client's stream rebinds.
        operation.data_ready = Event(manager.env)
        manager._pending_writes[operation.tag] = operation
    return operation


def restore_session(manager: DeviceManager, checkpoint: SessionCheckpoint,
                    transport, completion_queue,
                    exact: bool = False) -> ClientSession:
    """Re-home a captured session onto ``manager``.

    ``exact=True`` reproduces the source DDR layout (same offsets, same
    ids) — used when restoring onto a blank board, e.g. the property
    suite's bit-identical round trip.  The default re-places segments
    first-fit and keeps the client's old buffer ids as the session-table
    keys, reserving them in the target allocator so new allocations can
    never collide.

    Raises :class:`CheckpointError` when the target cannot hold the
    session (out of memory); the caller falls back to a restart migration.
    """
    if checkpoint.client in manager.sessions:
        raise CheckpointError(
            f"client {checkpoint.client!r} already has a session on "
            f"{manager.name}"
        )
    session = ClientSession(checkpoint.client, transport, completion_queue)
    session.kernels = dict(checkpoint.kernels)
    session._next_kernel_id = checkpoint.next_kernel_id

    allocator = manager.board.memory
    placed = []
    try:
        for buffer in checkpoint.buffers:
            if exact:
                device_buffer = allocator.allocate_at(
                    buffer.size, buffer.offset, buffer.buffer_id
                )
            else:
                device_buffer = manager.board.allocate(buffer.size)
            if buffer.data is not None and manager.board.functional:
                device_buffer.write(buffer.data)
            session.buffers[buffer.buffer_id] = device_buffer
            placed.append(device_buffer)
    except Exception as exc:
        for device_buffer in placed:
            manager.board.free(device_buffer)
        raise CheckpointError(
            f"target {manager.name} cannot hold session "
            f"{checkpoint.client!r}: {exc}"
        ) from exc
    if checkpoint.buffers:
        allocator.reserve_ids(max(b.buffer_id for b in checkpoint.buffers))

    manager.sessions[checkpoint.client] = session
    manager._m_clients.set(len(manager.sessions))

    for task_meta in checkpoint.tasks:
        task = Task(checkpoint.client, task_meta.queue_id)
        for op_meta in task_meta.operations:
            task.append(_rebuild_op(op_meta, checkpoint.client, manager))
        manager._submit(task)
        task.submitted_at = task_meta.submitted_at
    for op_meta in checkpoint.open_operations:
        manager.accumulator.add(
            _rebuild_op(op_meta, checkpoint.client, manager)
        )

    for request_id, ok, value in checkpoint.replies:
        manager._cache_reply(
            (checkpoint.client, request_id), transport, _Reply(ok, value)
        )
    return session


class _Reply:
    """Adapter so restored reply-cache entries reuse ``_cache_reply``."""

    __slots__ = ("ok", "value")

    def __init__(self, ok: bool, value: Any):
        self.ok = ok
        self.value = value

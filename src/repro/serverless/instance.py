"""Function instances: the warm runtime executing inside each pod.

On start an instance acquires its OpenCL platform — the Remote OpenCL
Library pointed at the Device Manager the Accelerators Registry patched into
the pod's environment, or the native vendor runtime for baseline
deployments — runs the app's one-time setup (program build, buffers), then
serves requests from the function's endpoint queue one at a time (the
single-connection watchdog model the paper loads with ``hey -c 1``).
"""

from __future__ import annotations

from typing import Optional

from ..cluster.objects import ClusterNode, Pod
from ..core.registry.registry import MANAGER_ENV
from ..core.remote_lib.router import PlatformRouter
from ..ocl.native import NativeDriver, native_platform
from ..ocl.objects import Platform
from ..sim import Environment, Interrupt
from .gateway import DeployedFunction, InvocationError


class InstanceStartupError(RuntimeError):
    """The instance could not acquire its platform or set up the app."""


class FunctionInstance:
    """One running instance (pod) of a deployed function."""

    def __init__(
        self,
        env: Environment,
        function: DeployedFunction,
        pod: Pod,
        node: ClusterNode,
        router: Optional[PlatformRouter],
    ):
        self.env = env
        self.function = function
        self.pod = pod
        self.node = node
        self.router = router
        self.app = function.spec.app_factory()
        self.platform: Optional[Platform] = None
        self.requests_served = 0
        self._current = None  # request being handled right now
        #: Exception that killed startup, if any (the instance stays down).
        self.startup_error: Optional[BaseException] = None
        self.ready = env.event()
        self.process = env.process(self._run())
        pod.process = self.process

    # -- platform acquisition --------------------------------------------------
    def _acquire_platform(self):
        runtime = self.function.spec.runtime
        if runtime == "native":
            if self.node.board is None:
                raise InstanceStartupError(
                    f"node {self.node.name} has no FPGA board"
                )
            # The vendor runtime linked directly, under serverless load.
            from ..fpga.bitstream import standard_library

            library = (
                self.router.library if self.router else standard_library()
            )
            platform = native_platform(
                self.env, self.node.board, library,
                host=self.node.spec.host,
            )
            platform.driver.loaded = True
            return platform
        if runtime == "blastfunction":
            if self.router is None:
                raise InstanceStartupError("no platform router configured")
            manager_name = self.pod.spec.env.get(MANAGER_ENV)
            platform = yield from self.router.connect(
                self.pod.name, self.node.host, manager_name,
                prefer_shm=self.pod.spec.shm_volume,
            )
            return platform
        raise InstanceStartupError(f"unknown runtime {runtime!r}")

    # -- main loop -------------------------------------------------------------
    def _run(self):
        try:
            self.platform = yield from self._acquire_platform()
            yield from self.app.setup(self.env, self.platform, self.node)
            if not self.ready.triggered:
                self.ready.succeed()
            while True:
                request = yield self.function.request_queue.get()
                self._current = request
                try:
                    host_overhead = (
                        self.app.host_overhead
                        * self.node.spec.host.speed_factor
                    )
                    yield self.env.timeout(host_overhead)
                    result = yield from self.app.handle(request)
                except Interrupt:
                    raise
                except Exception as exc:  # noqa: BLE001 - surfaced to caller
                    if not request.response.triggered:
                        request.response.fail(InvocationError(str(exc)))
                        request.response.defused = True
                else:
                    self.requests_served += 1
                    if not request.response.triggered:
                        request.response.succeed(result)
                self._current = None
        except Interrupt:
            self._fail_inflight()
            self._teardown()
            return
        except Exception as exc:  # noqa: BLE001 - startup failures
            # Contained: one instance failing to come up (e.g. its board's
            # reconfiguration was denied) must not crash the control plane.
            # Waiters observe the failure through the failed ``ready`` event.
            if not self.ready.triggered:
                self.ready.fail(exc)
                self.ready.defused = True
            self.startup_error = exc
            self._fail_inflight()
            self._teardown()
            return

    def _fail_inflight(self) -> None:
        """Never strand a caller: fail the request we died holding."""
        request, self._current = self._current, None
        if request is not None and not request.response.triggered:
            request.response.fail(InvocationError(
                f"instance {self.pod.name} terminated mid-request"))
            request.response.defused = True

    def _teardown(self) -> None:
        if self.platform is not None:
            driver = self.platform.driver
            close = getattr(driver, "close", None)
            if close is not None:
                close()

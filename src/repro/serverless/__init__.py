"""OpenFaaS-model serverless substrate: gateway, instances, controller and
the paper's three accelerated cloud functions."""

from .apps import (
    AlexNetApp,
    FIRApp,
    FunctionApp,
    HistogramApp,
    MMApp,
    SobelApp,
)
from .autoscaler import FunctionAutoscaler, FunctionAutoscalerPolicy
from .controller import FunctionController
from .gateway import (
    GATEWAY_OVERHEAD,
    CircuitBreaker,
    DeployedFunction,
    FunctionSpec,
    Gateway,
    InvocationError,
    Request,
)
from .instance import FunctionInstance, InstanceStartupError

__all__ = [
    "AlexNetApp",
    "CircuitBreaker",
    "DeployedFunction",
    "FIRApp",
    "FunctionApp",
    "HistogramApp",
    "FunctionAutoscaler",
    "FunctionAutoscalerPolicy",
    "FunctionController",
    "FunctionInstance",
    "FunctionSpec",
    "GATEWAY_OVERHEAD",
    "Gateway",
    "InstanceStartupError",
    "InvocationError",
    "MMApp",
    "Request",
    "SobelApp",
]

"""The three accelerated cloud functions of the paper's evaluation.

Each app is host code written **once** against the OpenCL object model — it
runs unchanged on the native vendor runtime and on BlastFunction's Remote
OpenCL Library (the paper's transparency property).  The request flows
mirror the originals:

* **Sobel** (Spector): write image → kernel → blocking read (one task);
* **MM** (Spector): write A, write B → kernel → blocking read (one task);
* **AlexNet** (PipeCNN): per layer, enqueue ``mem_rd``/``conv``/
  (``pool``)/(``lrn``)/``mem_wr`` and wait for the layer — "several kernels
  iteratively with multiple parallel command queues", which is why its
  relative overhead under BlastFunction is the highest (Table IV).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional

import numpy as np

from ..kernels.alexnet import LayerSpec, alexnet_layers
from ..ocl.objects import Context, Platform, wait_for_events
from ..sim import Environment


class FunctionApp(abc.ABC):
    """Base class for serverless function application code."""

    #: Host-side time per request (parse, prepare, respond), worker-node
    #: seconds; instances scale it by their node's speed factor.
    host_overhead: float = 3.0e-3

    @abc.abstractmethod
    def setup(self, env: Environment, platform: Platform, node) -> Any:
        """Process: one-time warm-up (context, program build, buffers)."""

    @abc.abstractmethod
    def handle(self, request) -> Any:
        """Process: serve one request using OpenCL."""


class SobelApp(FunctionApp):
    """Sobel edge detection on a fixed-size grayscale image."""

    host_overhead = 3.2e-3

    def __init__(self, width: int = 1920, height: int = 1080,
                 functional: bool = False, seed: int = 0):
        self.width = width
        self.height = height
        self.functional = functional
        self.seed = seed
        self.nbytes = width * height * 4
        self.input_data: Optional[bytes] = None

    def setup(self, env, platform, node):
        self.env = env
        self.context = Context(platform.get_devices())
        self.queue = self.context.create_queue()
        program = self.context.create_program("sobel")
        yield from program.build()
        self.kernel = program.create_kernel("sobel")
        self.in_buf = self.context.create_buffer(self.nbytes)
        self.out_buf = self.context.create_buffer(self.nbytes)
        self.kernel.set_args(self.in_buf, self.out_buf,
                             self.width, self.height)
        if self.functional:
            rng = np.random.default_rng(self.seed)
            image = rng.integers(0, 4096, size=(self.height, self.width),
                                 dtype=np.uint32)
            self.input_data = image.tobytes()

    def handle(self, request):
        self.queue.enqueue_write_buffer(
            self.in_buf, self.input_data, nbytes=self.nbytes
        )
        self.queue.enqueue_kernel(self.kernel)
        data = yield from self.queue.read_buffer(self.out_buf)
        return {"bytes": len(data) if data else self.nbytes}


class MMApp(FunctionApp):
    """Square float32 matrix multiply.

    The Spector MM host code transfers its operand matrices with *blocking*
    writes before launching the kernel — under BlastFunction each blocking
    write closes a small task, while the vendor runtime pays its blocking
    completion path per call.  This is the mechanism behind Table III's
    latency inversion (Native ≈ 21–24 ms vs BlastFunction ≈ 11–13 ms).
    """

    host_overhead = 2.0e-3

    def __init__(self, n: int = 448, functional: bool = False, seed: int = 0):
        self.n = n
        self.functional = functional
        self.seed = seed
        self.nbytes = n * n * 4
        self.a_data: Optional[bytes] = None
        self.b_data: Optional[bytes] = None

    def setup(self, env, platform, node):
        self.env = env
        self.context = Context(platform.get_devices())
        self.queue = self.context.create_queue()
        program = self.context.create_program("mm")
        yield from program.build()
        self.kernel = program.create_kernel("mm")
        self.a_buf = self.context.create_buffer(self.nbytes)
        self.b_buf = self.context.create_buffer(self.nbytes)
        self.c_buf = self.context.create_buffer(self.nbytes)
        self.kernel.set_args(self.a_buf, self.b_buf, self.c_buf,
                             self.n, self.n, self.n)
        if self.functional:
            rng = np.random.default_rng(self.seed)
            self.a_data = rng.standard_normal(
                (self.n, self.n)).astype(np.float32).tobytes()
            self.b_data = rng.standard_normal(
                (self.n, self.n)).astype(np.float32).tobytes()

    def handle(self, request):
        yield from self.queue.write_buffer(self.a_buf, self.a_data,
                                           nbytes=self.nbytes)
        yield from self.queue.write_buffer(self.b_buf, self.b_data,
                                           nbytes=self.nbytes)
        self.queue.enqueue_kernel(self.kernel)
        data = yield from self.queue.read_buffer(self.c_buf)
        return {"bytes": len(data) if data else self.nbytes}


class FIRApp(FunctionApp):
    """FIR filter over a float32 sample block (Spector).

    Not part of the paper's evaluation trio; used by experiments that need
    extra accelerators competing for boards (the reconfiguration storm of
    the migration experiment).  Coefficients are loaded once at setup, so a
    request is write block → kernel → blocking read.
    """

    host_overhead = 1.5e-3

    def __init__(self, n: int = 1 << 20, taps: int = 64,
                 functional: bool = False, seed: int = 0):
        self.n = n
        self.taps = taps
        self.functional = functional
        self.seed = seed
        self.nbytes = n * 4
        self.signal_data: Optional[bytes] = None

    def setup(self, env, platform, node):
        self.env = env
        self.context = Context(platform.get_devices())
        self.queue = self.context.create_queue()
        program = self.context.create_program("fir")
        yield from program.build()
        self.kernel = program.create_kernel("fir")
        self.signal_buf = self.context.create_buffer(self.nbytes)
        self.coeffs_buf = self.context.create_buffer(self.taps * 4)
        self.out_buf = self.context.create_buffer(self.nbytes)
        self.kernel.set_args(self.signal_buf, self.coeffs_buf, self.out_buf,
                             self.n, self.taps)
        coeffs_data = None
        if self.functional:
            rng = np.random.default_rng(self.seed)
            self.signal_data = rng.standard_normal(self.n).astype(
                np.float32).tobytes()
            coeffs_data = (np.hanning(self.taps) / self.taps).astype(
                np.float32).tobytes()
        self.queue.enqueue_write_buffer(self.coeffs_buf, coeffs_data,
                                        nbytes=self.taps * 4)
        yield from self.queue.finish()

    def handle(self, request):
        self.queue.enqueue_write_buffer(self.signal_buf, self.signal_data,
                                        nbytes=self.nbytes)
        self.queue.enqueue_kernel(self.kernel)
        data = yield from self.queue.read_buffer(self.out_buf)
        return {"bytes": len(data) if data else self.nbytes}


class HistogramApp(FunctionApp):
    """Histogram of a uint32 value block (Spector).

    Second storm app of the migration experiment: write values → kernel →
    blocking read of the (small) bin counters.
    """

    host_overhead = 1.5e-3

    def __init__(self, n: int = 1 << 20, bins: int = 1024,
                 functional: bool = False, seed: int = 0):
        self.n = n
        self.bins = bins
        self.functional = functional
        self.seed = seed
        self.nbytes = n * 4
        self.values_data: Optional[bytes] = None

    def setup(self, env, platform, node):
        self.env = env
        self.context = Context(platform.get_devices())
        self.queue = self.context.create_queue()
        program = self.context.create_program("histogram")
        yield from program.build()
        self.kernel = program.create_kernel("hist")
        self.values_buf = self.context.create_buffer(self.nbytes)
        self.counts_buf = self.context.create_buffer(self.bins * 4)
        self.kernel.set_args(self.values_buf, self.counts_buf,
                             self.n, self.bins)
        if self.functional:
            rng = np.random.default_rng(self.seed)
            self.values_data = rng.integers(
                0, 1 << 32, size=self.n, dtype=np.uint32
            ).tobytes()

    def handle(self, request):
        self.queue.enqueue_write_buffer(self.values_buf, self.values_data,
                                        nbytes=self.nbytes)
        self.queue.enqueue_kernel(self.kernel)
        data = yield from self.queue.read_buffer(self.counts_buf)
        return {"bins": len(data) // 4 if data else self.bins}


class AlexNetApp(FunctionApp):
    """PipeCNN AlexNet inference, layer by layer."""

    host_overhead = 4.0e-3

    def __init__(self, functional: bool = False, seed: int = 0):
        self.functional = functional
        self.seed = seed
        self.layers: List[LayerSpec] = alexnet_layers()
        self.input_nbytes = 3 * 227 * 227 * 4
        self.input_data: Optional[bytes] = None

    def setup(self, env, platform, node):
        self.env = env
        self.context = Context(platform.get_devices())
        self.queue = self.context.create_queue()
        program = self.context.create_program("pipecnn_alexnet")
        yield from program.build()
        self.k_mem_rd = program.create_kernel("mem_rd")
        self.k_conv = program.create_kernel("conv")
        self.k_pool = program.create_kernel("pool")
        self.k_lrn = program.create_kernel("lrn")
        self.k_mem_wr = program.create_kernel("mem_wr")

        # Activation scratch: generous fixed-size buffers reused per layer.
        scratch = 4 << 20
        ctx = self.context
        self.act = [ctx.create_buffer(scratch), ctx.create_buffer(scratch)]
        self.staging = ctx.create_buffer(scratch)
        self.conv_out = ctx.create_buffer(scratch)
        self.pool_out = ctx.create_buffer(scratch)
        self.lrn_out = ctx.create_buffer(scratch)

        # Per-layer weights/biases, loaded once at startup.
        rng = np.random.default_rng(self.seed) if self.functional else None
        self.weights = []
        self.biases = []
        for layer in self.layers:
            conv = layer.conv
            w_buf = ctx.create_buffer(conv.weight_count * 4)
            b_buf = ctx.create_buffer(conv.out_channels * 4)
            if rng is not None:
                w = (rng.standard_normal(conv.weight_count) * 0.01).astype(
                    np.float32
                )
                b = np.zeros(conv.out_channels, dtype=np.float32)
                self.queue.enqueue_write_buffer(w_buf, w.tobytes())
                self.queue.enqueue_write_buffer(b_buf, b.tobytes())
            self.weights.append(w_buf)
            self.biases.append(b_buf)
        yield from self.queue.finish()
        if self.functional:
            image = (np.asarray(
                np.random.default_rng(self.seed).standard_normal(
                    (3, 227, 227)
                ), dtype=np.float32)
            )
            self.input_data = image.tobytes()

    def handle(self, request):
        queue = self.queue
        current = self.act[0]
        queue.enqueue_write_buffer(current, self.input_data,
                                   nbytes=self.input_nbytes)
        for index, layer in enumerate(self.layers):
            conv = layer.conv
            in_bytes = conv.in_channels * conv.in_size ** 2 * 4
            self.k_mem_rd.set_args(current, self.staging, in_bytes)
            queue.enqueue_kernel(self.k_mem_rd)

            self.k_conv.set_args(
                self.staging, self.weights[index], self.biases[index],
                self.conv_out, conv.in_channels, conv.in_size,
                conv.out_channels, conv.out_size, conv.kernel, conv.stride,
                conv.pad, conv.groups, int(conv.relu),
            )
            queue.enqueue_kernel(self.k_conv)
            stage_out = self.conv_out

            if layer.pool is not None:
                pool = layer.pool
                self.k_pool.set_args(
                    stage_out, self.pool_out, pool.channels, pool.in_size,
                    pool.out_size, pool.kernel, pool.stride,
                )
                queue.enqueue_kernel(self.k_pool)
                stage_out = self.pool_out

            if layer.lrn is not None:
                lrn = layer.lrn
                self.k_lrn.set_args(
                    stage_out, self.lrn_out, lrn.channels, lrn.size,
                    lrn.local_size, lrn.alpha, lrn.beta, lrn.k,
                )
                queue.enqueue_kernel(self.k_lrn)
                stage_out = self.lrn_out

            out_bytes = layer.output_count * 4
            target = self.act[(index + 1) % 2]
            self.k_mem_wr.set_args(stage_out, target, out_bytes)
            layer_done = queue.enqueue_kernel(self.k_mem_wr)
            current = target
            # PipeCNN waits for each layer (event-driven, clWaitForEvents)
            # before launching the next; the wait forces a flush, so under
            # BlastFunction every layer boundary costs one task round trip.
            queue.flush()
            yield wait_for_events([layer_done])

        logits_bytes = 1000 * 4
        read_event = queue.enqueue_read_buffer(current, nbytes=logits_bytes)
        queue.flush()
        yield wait_for_events([read_event])
        data = read_event.value
        if self.functional and data:
            logits = np.frombuffer(data, dtype=np.float32)
            return {"top1": int(logits.argmax())}
        return {"top1": None}

"""Function controller: starts instances in pods and performs migrations.

Plays the role of OpenFaaS' operator + Kubernetes deployment controller:
watches the cluster for pods of deployed functions, attaches a
:class:`~repro.serverless.instance.FunctionInstance` to each once it is
RUNNING, and implements the paper's migration semantics — "Kubernetes
creates new instances before deleting the previous ones: in this way the
Registry can patch and schedule them on a different node."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.apiserver import Cluster
from ..cluster.objects import Pod, PodPhase, PodSpec, WatchEvent, WatchEventType
from ..core.remote_lib.router import PlatformRouter
from ..sim import Environment
from .gateway import DeployedFunction, Gateway
from .instance import FunctionInstance


class FunctionController:
    """Reconciles pods of deployed functions with running instances."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        gateway: Gateway,
        router: Optional[PlatformRouter] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.gateway = gateway
        self.router = router
        self.instances: Dict[str, FunctionInstance] = {}
        cluster.watch(self._on_watch)
        gateway.on_deploy = lambda function: None  # deploy is pod-driven

    # -- watch-driven reconciliation ------------------------------------------
    def _on_watch(self, event: WatchEvent) -> None:
        pod = event.pod
        function = self.gateway.functions.get(pod.spec.function)
        if function is None:
            return
        if event.type is WatchEventType.MODIFIED and pod.phase is PodPhase.RUNNING:
            if pod.name not in self.instances:
                assert pod.node is not None
                self.instances[pod.name] = FunctionInstance(
                    self.env, function, pod, pod.node, self.router
                )
        elif event.type is WatchEventType.DELETED:
            self.instances.pop(pod.name, None)
            if pod.name in function.pod_names:
                function.pod_names.remove(pod.name)

    # -- readiness -------------------------------------------------------------
    def wait_ready(self, function_name: str):
        """Process: wait until every pod of a function serves requests."""
        function = self.gateway.function(function_name)
        while True:
            pending = [
                name for name in function.pod_names
                if name not in self.instances
            ]
            if not pending:
                break
            yield self.env.timeout(0.05)
        for name in list(function.pod_names):
            instance = self.instances.get(name)
            if instance is not None and not instance.ready.triggered:
                yield instance.ready

    # -- migration ---------------------------------------------------------------
    def migrate(self, instance_name: str, function_name: str):
        """Process: create-before-delete move of one instance."""
        function = self.gateway.function(function_name)
        replacement = function.next_instance_name()
        spec = PodSpec(
            name=replacement,
            function=function_name,
            device_query=function.spec.device_query,
            labels={"runtime": function.spec.runtime, "migrated-from":
                    instance_name},
        )
        pod = yield from self.cluster.create_pod(spec)
        function.pod_names.append(pod.name)
        new_instance = self.instances.get(pod.name)
        if new_instance is not None:
            yield new_instance.ready
        self.cluster.delete_pod(instance_name)
        return pod

"""Function controller: starts instances in pods and performs migrations.

Plays the role of OpenFaaS' operator + Kubernetes deployment controller:
watches the cluster for pods of deployed functions, attaches a
:class:`~repro.serverless.instance.FunctionInstance` to each once it is
RUNNING, and implements the paper's migration semantics — "Kubernetes
creates new instances before deleting the previous ones: in this way the
Registry can patch and schedule them on a different node."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.apiserver import Cluster
from ..cluster.objects import Pod, PodPhase, PodSpec, WatchEvent, WatchEventType
from ..core.remote_lib.router import PlatformRouter
from ..sim import Environment
from .gateway import DeployedFunction, Gateway
from .instance import FunctionInstance


class FunctionController:
    """Reconciles pods of deployed functions with running instances."""

    #: Heal-path retries across retryable control-plane errors; sized to
    #: outlast a registry blackout of a few seconds at the backoff below.
    HEAL_RETRY_BUDGET = 6
    HEAL_RETRY_BACKOFF = 0.25

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        gateway: Gateway,
        router: Optional[PlatformRouter] = None,
        self_heal: bool = False,
    ):
        self.env = env
        self.cluster = cluster
        self.gateway = gateway
        self.router = router
        self.instances: Dict[str, FunctionInstance] = {}
        #: When set, deleted pods that drop a function below its replica
        #: count are respawned (deployment-controller reconciliation).
        self.self_heal = self_heal
        self.heals = 0
        self.heal_failures = 0
        #: Heal attempts retried across a retryable control-plane error
        #: (e.g. registry blackout) instead of giving up immediately.
        self.heal_retries = 0
        self._healing: Dict[str, int] = {}
        cluster.watch(self._on_watch)
        gateway.on_deploy = lambda function: None  # deploy is pod-driven

    # -- watch-driven reconciliation ------------------------------------------
    def _on_watch(self, event: WatchEvent) -> None:
        pod = event.pod
        function = self.gateway.functions.get(pod.spec.function)
        if function is None:
            return
        if event.type is WatchEventType.MODIFIED and pod.phase is PodPhase.RUNNING:
            if pod.name not in self.instances:
                assert pod.node is not None
                self.instances[pod.name] = FunctionInstance(
                    self.env, function, pod, pod.node, self.router
                )
        elif event.type is WatchEventType.DELETED:
            self.instances.pop(pod.name, None)
            function.remove_pod(pod.name)
            if self.self_heal:
                self.env.process(self._heal(function))

    def _heal(self, function: DeployedFunction):
        """Process: respawn pods until the function is back at replicas.

        Migrations never trigger a respawn — create-before-delete means
        the replacement pod is already counted when the old one goes.
        """
        # Let same-tick deletions settle before counting.
        yield self.env.timeout(0)
        name = function.spec.name
        missing = (function.spec.replicas - len(function.pod_names)
                   - self._healing.get(name, 0))
        if missing <= 0:
            return
        self._healing[name] = self._healing.get(name, 0) + missing
        try:
            for _ in range(missing):
                replacement = function.next_instance_name()
                spec = PodSpec(
                    name=replacement,
                    function=name,
                    device_query=function.spec.device_query,
                    labels={"runtime": function.spec.runtime,
                            "healed": "true"},
                )
                pod = None
                for attempt in range(self.HEAL_RETRY_BUDGET + 1):
                    if attempt:
                        # Registry blackout: back off and retry — the
                        # control plane replays its WAL and comes back.
                        self.heal_retries += 1
                        yield self.env.timeout(
                            self.HEAL_RETRY_BACKOFF * 2 ** (attempt - 1)
                        )
                    try:
                        pod = yield from self.cluster.create_pod(spec)
                        break
                    except Exception as exc:  # noqa: BLE001 - see below
                        if getattr(exc, "retryable", False) \
                                and attempt < self.HEAL_RETRY_BUDGET:
                            continue
                        self.heal_failures += 1  # no capacity left
                        return
                function.add_pod(pod.name)
                self.heals += 1
        finally:
            self._healing[name] -= missing

    def live_instances(self, function_name: str) -> List[FunctionInstance]:
        """Instances of a function currently attached to running pods."""
        function = self.gateway.function(function_name)
        return [
            self.instances[name]
            for name in function.pod_names
            if name in self.instances
        ]

    # -- readiness -------------------------------------------------------------
    def wait_ready(self, function_name: str):
        """Process: wait until every pod of a function serves requests."""
        function = self.gateway.function(function_name)
        while True:
            pending = [
                name for name in function.pod_names
                if name not in self.instances
            ]
            if not pending:
                break
            yield self.env.timeout(0.05)
        for name in list(function.pod_names):
            instance = self.instances.get(name)
            if instance is not None and not instance.ready.triggered:
                yield instance.ready

    # -- migration ---------------------------------------------------------------
    def migrate(self, instance_name: str, function_name: str):
        """Process: create-before-delete move of one instance."""
        function = self.gateway.function(function_name)
        replacement = function.next_instance_name()
        spec = PodSpec(
            name=replacement,
            function=function_name,
            device_query=function.spec.device_query,
            labels={"runtime": function.spec.runtime, "migrated-from":
                    instance_name},
        )
        pod = yield from self.cluster.create_pod(spec)
        function.add_pod(pod.name)
        new_instance = self.instances.get(pod.name)
        if new_instance is not None:
            yield new_instance.ready
        self.cluster.delete_pod(instance_name)
        return pod

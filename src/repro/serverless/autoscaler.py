"""Function-replica autoscaling (the Gateway's OpenFaaS role).

Section III of the paper: the Gateway "forwards the requests to the
functions and handles autoscaling".  This controller scales each deployed
function's replica count on queue pressure: replicas share the function's
endpoint queue, so added instances start draining it immediately, and the
Accelerators Registry allocates every new instance a device through
Algorithm 1 exactly as it does at first deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cluster.apiserver import Cluster
from ..cluster.objects import PodSpec
from ..sim import Environment, Interrupt
from .gateway import DeployedFunction, Gateway


@dataclass(frozen=True)
class FunctionAutoscalerPolicy:
    """When to add/remove replicas."""

    #: Scale up when the endpoint queue holds at least this many requests.
    queue_threshold: int = 2
    #: Evaluation period, seconds.
    interval: float = 2.0
    #: Per-function replica bounds.
    min_replicas: int = 1
    max_replicas: int = 5
    #: Minimum time between scaling actions per function, seconds.
    cooldown: float = 10.0
    #: Consecutive idle evaluations before scaling down.
    idle_periods: int = 5


class FunctionAutoscaler:
    """Scales function replicas on endpoint queue depth."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        gateway: Gateway,
        policy: FunctionAutoscalerPolicy = FunctionAutoscalerPolicy(),
    ):
        self.env = env
        self.cluster = cluster
        self.gateway = gateway
        self.policy = policy
        self.scale_ups = 0
        self.scale_downs = 0
        self._last_action: Dict[str, float] = {}
        self._idle_streak: Dict[str, int] = {}
        self._process = env.process(self._run())

    def replicas(self, function_name: str) -> int:
        return len(self.gateway.function(function_name).pod_names)

    def stop(self) -> None:
        if self._process.is_alive:
            self._process.interrupt("function autoscaler stopped")

    # -- control loop -------------------------------------------------------
    def _run(self):
        try:
            while True:
                yield self.env.timeout(self.policy.interval)
                for function in list(self.gateway.functions.values()):
                    yield from self._evaluate(function)
        except Interrupt:
            return

    def _evaluate(self, function: DeployedFunction):
        name = function.spec.name
        now = self.env.now
        depth = len(function.request_queue.items)
        replicas = len(function.pod_names)

        if depth == 0:
            self._idle_streak[name] = self._idle_streak.get(name, 0) + 1
        else:
            self._idle_streak[name] = 0

        if now - self._last_action.get(name, -1e9) < self.policy.cooldown:
            return

        if (depth >= self.policy.queue_threshold
                and replicas < self.policy.max_replicas):
            self._last_action[name] = now
            yield from self._scale_up(function)
        elif (self._idle_streak.get(name, 0) >= self.policy.idle_periods
                and replicas > max(self.policy.min_replicas,
                                   function.spec.replicas)):
            self._last_action[name] = now
            self._scale_down(function)

    def _scale_up(self, function: DeployedFunction):
        pod_name = function.next_instance_name()
        spec = PodSpec(
            name=pod_name,
            function=function.spec.name,
            device_query=function.spec.device_query,
            node_name=function.spec.node_name,
            labels={"runtime": function.spec.runtime, "autoscaled": "true"},
        )
        pod = yield from self.cluster.create_pod(spec)
        function.add_pod(pod.name)
        self.scale_ups += 1

    def _scale_down(self, function: DeployedFunction) -> None:
        # Retire the newest autoscaled replica.
        for pod_name in reversed(function.pod_names):
            pod = self.cluster.pods.get(pod_name)
            if pod is not None and pod.spec.labels.get("autoscaled"):
                self.cluster.delete_pod(pod_name)
                self.scale_downs += 1
                return

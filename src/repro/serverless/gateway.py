"""OpenFaaS-model gateway: function deployment and request routing.

"The Gateway is the serverless system's endpoint, which forwards the
requests to the functions and handles autoscaling."  Each deployed function
gets an endpoint backed by a request queue; instances (pods) pull from the
queue, so migrations never lose the endpoint.

Requests carry parameters only — as in FaaS benchmarking practice the
payload proper (image, matrices) is part of the warm function state, which
is what keeps end-to-end latencies in the paper's 20 ms range rather than
paying a multi-megabyte HTTP body per call on 1 Gb/s links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, List, Optional

from ..cluster.apiserver import Cluster
from ..cluster.objects import DeviceQuery, PodSpec
from ..sim import Environment, Event, Store

#: Gateway forwarding overhead per request (routing, HTTP hop), seconds.
GATEWAY_OVERHEAD = 0.6e-3


@dataclass
class Request:
    """One in-flight function invocation."""

    payload: Dict[str, Any]
    created: float
    response: Event
    id: int = field(default_factory=lambda: next(_request_ids))


_request_ids = count(1)


class InvocationError(RuntimeError):
    """The function failed to produce a response."""


@dataclass
class FunctionSpec:
    """A serverless function deployment."""

    name: str
    #: Factory building a fresh app instance per function instance.
    app_factory: Callable[[], Any]
    device_query: DeviceQuery = field(default_factory=DeviceQuery)
    replicas: int = 1
    #: "blastfunction" (Remote OpenCL Library) or "native" (vendor runtime).
    runtime: str = "blastfunction"
    #: Forced node placement (native deployments pin one function per node).
    node_name: str = ""


class DeployedFunction:
    """Gateway-side state of one function: endpoint + instance bookkeeping."""

    def __init__(self, env: Environment, spec: FunctionSpec):
        self.env = env
        self.spec = spec
        self.request_queue: Store = Store(env)
        self.instance_counter = count(1)
        self.pod_names: List[str] = []
        self.invocations = 0
        self.failures = 0

    def next_instance_name(self) -> str:
        return f"{self.spec.name}-i{next(self.instance_counter)}"


class Gateway:
    """The serverless system's single entry point."""

    def __init__(self, env: Environment, cluster: Cluster):
        self.env = env
        self.cluster = cluster
        self.functions: Dict[str, DeployedFunction] = {}
        #: The controller hooks this to start instances on pod creation.
        self.on_deploy: Optional[Callable[[DeployedFunction], None]] = None

    # -- deployment ------------------------------------------------------------
    def deploy(self, spec: FunctionSpec):
        """Process: deploy a function and wait until replicas are running."""
        if spec.name in self.functions:
            raise ValueError(f"function {spec.name!r} already deployed")
        function = DeployedFunction(self.env, spec)
        self.functions[spec.name] = function
        if self.on_deploy is not None:
            self.on_deploy(function)
        for _ in range(spec.replicas):
            pod_name = function.next_instance_name()
            pod_spec = PodSpec(
                name=pod_name,
                function=spec.name,
                device_query=spec.device_query,
                node_name=spec.node_name,
                labels={"runtime": spec.runtime},
            )
            pod = yield from self.cluster.create_pod(pod_spec)
            function.pod_names.append(pod.name)
        return function

    def function(self, name: str) -> DeployedFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None

    # -- invocation -----------------------------------------------------------
    def invoke(self, function_name: str,
               payload: Optional[Dict[str, Any]] = None):
        """Process: invoke a function; returns (latency_seconds, result)."""
        function = self.function(function_name)
        yield self.env.timeout(GATEWAY_OVERHEAD)
        request = Request(dict(payload or {}), self.env.now,
                          Event(self.env))
        function.request_queue.put(request)
        function.invocations += 1
        try:
            result = yield request.response
        except InvocationError:
            function.failures += 1
            raise
        return self.env.now - request.created, result

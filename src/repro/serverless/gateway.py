"""OpenFaaS-model gateway: function deployment and request routing.

"The Gateway is the serverless system's endpoint, which forwards the
requests to the functions and handles autoscaling."  Each deployed function
gets an endpoint backed by a request queue; instances (pods) pull from the
queue, so migrations never lose the endpoint.

Requests carry parameters only — as in FaaS benchmarking practice the
payload proper (image, matrices) is part of the warm function state, which
is what keeps end-to-end latencies in the paper's 20 ms range rather than
paying a multi-megabyte HTTP body per call on 1 Gb/s links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, List, Optional

from ..cluster.apiserver import Cluster
from ..cluster.objects import DeviceQuery, PodSpec
from ..faults import GatewayPolicy
from ..sim import AnyOf, Environment, Event, Store

#: Gateway forwarding overhead per request (routing, HTTP hop), seconds.
GATEWAY_OVERHEAD = 0.6e-3


@dataclass
class Request:
    """One in-flight function invocation."""

    payload: Dict[str, Any]
    created: float
    response: Event
    id: int = field(default_factory=lambda: next(_request_ids))


_request_ids = count(1)


class InvocationError(RuntimeError):
    """The function failed to produce a response."""


@dataclass
class FunctionSpec:
    """A serverless function deployment."""

    name: str
    #: Factory building a fresh app instance per function instance.
    app_factory: Callable[[], Any]
    device_query: DeviceQuery = field(default_factory=DeviceQuery)
    replicas: int = 1
    #: "blastfunction" (Remote OpenCL Library) or "native" (vendor runtime).
    runtime: str = "blastfunction"
    #: Forced node placement (native deployments pin one function per node).
    node_name: str = ""


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one function endpoint.

    Opens after ``threshold`` consecutive failures; while open, requests
    are rejected immediately (no queueing, no backend pressure).  After
    ``cooldown`` seconds the breaker half-opens: the next request is
    admitted and its outcome closes or re-opens the circuit.
    """

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    def is_open(self, now: float) -> bool:
        if self.opened_at is None:
            return False
        if now - self.opened_at >= self.cooldown:
            self.opened_at = None  # half-open: admit traffic again
            self.consecutive_failures = 0
            return False
        return True

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if (self.consecutive_failures >= self.threshold
                and self.opened_at is None):
            self.opened_at = now
            self.trips += 1

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None


class DeployedFunction:
    """Gateway-side state of one function: endpoint + instance bookkeeping."""

    def __init__(self, env: Environment, spec: FunctionSpec):
        self.env = env
        self.spec = spec
        self.request_queue: Store = Store(env)
        self.instance_counter = count(1)
        self.pod_names: List[str] = []
        #: Mirror of pod_names for O(1) membership on the watch/dispatch
        #: paths (every cluster watch event checks ownership).
        self._pod_name_set: set = set()
        self.invocations = 0
        self.failures = 0
        self.retries = 0
        self.shed = 0
        #: Pod-creation attempts retried because the control plane returned
        #: a retryable error (e.g. registry blackout).
        self.deploy_retries = 0
        #: Installed by the gateway when a resilience policy is armed.
        self.breaker: Optional[CircuitBreaker] = None

    def next_instance_name(self) -> str:
        return f"{self.spec.name}-i{next(self.instance_counter)}"

    # -- pod bookkeeping (keep list + set in lockstep) ---------------------
    def add_pod(self, name: str) -> None:
        if name not in self._pod_name_set:
            self.pod_names.append(name)
            self._pod_name_set.add(name)

    def remove_pod(self, name: str) -> None:
        if name in self._pod_name_set:
            self._pod_name_set.discard(name)
            self.pod_names.remove(name)
        elif name in self.pod_names:
            # Name was appended to the list directly (legacy callers).
            self.pod_names.remove(name)

    def has_pod(self, name: str) -> bool:
        return name in self._pod_name_set


class Gateway:
    """The serverless system's single entry point."""

    def __init__(self, env: Environment, cluster: Cluster,
                 policy: Optional[GatewayPolicy] = None):
        self.env = env
        self.cluster = cluster
        #: Resilience policy (retry budget, circuit breaker, shedding).
        #: ``None`` keeps the seed fast path bit-identical.
        self.policy = policy
        self.functions: Dict[str, DeployedFunction] = {}
        #: The controller hooks this to start instances on pod creation.
        self.on_deploy: Optional[Callable[[DeployedFunction], None]] = None

    # -- deployment ------------------------------------------------------------
    def deploy(self, spec: FunctionSpec):
        """Process: deploy a function and wait until replicas are running."""
        if spec.name in self.functions:
            raise ValueError(f"function {spec.name!r} already deployed")
        function = DeployedFunction(self.env, spec)
        self.functions[spec.name] = function
        if self.on_deploy is not None:
            self.on_deploy(function)
        for _ in range(spec.replicas):
            pod_name = function.next_instance_name()
            pod_spec = PodSpec(
                name=pod_name,
                function=spec.name,
                device_query=spec.device_query,
                node_name=spec.node_name,
                labels={"runtime": spec.runtime},
            )
            pod = yield from self._create_pod_retryable(function, pod_spec)
            function.add_pod(pod.name)
        return function

    def _create_pod_retryable(self, function: DeployedFunction, pod_spec):
        """Process: create a pod, absorbing retryable control-plane errors.

        A Registry blackout surfaces as a structured retryable error
        (``CL_REGISTRY_UNAVAILABLE``) from the admission hook; with a
        policy armed, the deploy backs off and retries within the same
        budget the data path uses, instead of crashing ``env.run``.  A
        failed attempt never registers the pod, so its name is reusable.
        """
        policy = self.policy
        if policy is None:
            return (yield from self.cluster.create_pod(pod_spec))
        last_error: Optional[Exception] = None
        for attempt in range(policy.retry_budget + 1):
            if attempt:
                function.deploy_retries += 1
                yield self.env.timeout(
                    policy.retry_backoff
                    * policy.backoff_factor ** (attempt - 1)
                )
            try:
                return (yield from self.cluster.create_pod(pod_spec))
            except Exception as exc:  # noqa: BLE001 - filtered just below
                if not getattr(exc, "retryable", False):
                    raise
                last_error = exc
        raise last_error

    def function(self, name: str) -> DeployedFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None

    # -- invocation -----------------------------------------------------------
    def invoke(self, function_name: str,
               payload: Optional[Dict[str, Any]] = None):
        """Process: invoke a function; returns (latency_seconds, result)."""
        function = self.function(function_name)
        if self.policy is not None:
            return (yield from self._invoke_resilient(function, payload))
        yield self.env.timeout(GATEWAY_OVERHEAD)
        request = Request(dict(payload or {}), self.env.now,
                          Event(self.env))
        function.request_queue.put(request)
        function.invocations += 1
        try:
            result = yield request.response
        except InvocationError:
            function.failures += 1
            raise
        return self.env.now - request.created, result

    def _invoke_resilient(self, function: DeployedFunction,
                          payload: Optional[Dict[str, Any]]):
        """Process: invoke under the gateway resilience policy.

        Per-request retry budget with exponential backoff, a per-function
        circuit breaker, and graceful degradation: with no live instance
        the request is either shed immediately (``shed_when_unavailable``)
        or queued — the endpoint queue outlives instances, so requests
        ride out migrations and respawns.
        """
        policy = self.policy
        if function.breaker is None:
            function.breaker = CircuitBreaker(policy.breaker_threshold,
                                              policy.breaker_cooldown)
        breaker = function.breaker
        yield self.env.timeout(GATEWAY_OVERHEAD)
        if breaker.is_open(self.env.now):
            function.shed += 1
            raise InvocationError(
                f"{function.spec.name}: circuit breaker open")
        if policy.shed_when_unavailable and not function.pod_names:
            function.shed += 1
            raise InvocationError(
                f"{function.spec.name}: no live instance")
        created = self.env.now
        last_error: Optional[InvocationError] = None
        for attempt in range(policy.retry_budget + 1):
            if attempt:
                function.retries += 1
                yield self.env.timeout(
                    policy.retry_backoff
                    * policy.backoff_factor ** (attempt - 1)
                )
            request = Request(dict(payload or {}), self.env.now,
                              Event(self.env))
            function.request_queue.put(request)
            function.invocations += 1
            try:
                result = yield from self._await_response(request)
            except InvocationError as exc:
                function.failures += 1
                breaker.record_failure(self.env.now)
                last_error = exc
                continue
            breaker.record_success()
            return self.env.now - created, result
        raise last_error

    def _await_response(self, request: Request):
        """Process: wait for one attempt's response, with optional timeout."""
        timeout = self.policy.request_timeout
        if timeout is None:
            return (yield request.response)
        deadline = self.env.timeout(timeout)
        yield AnyOf(self.env, [request.response, deadline])
        if not request.response.triggered:
            # Abandon the attempt; if an instance later picks the request
            # up, its response resolves unobserved (defused).
            request.response.defused = True
            raise InvocationError(
                f"request {request.id} timed out after {timeout}s")
        if not request.response.ok:
            request.response.defused = True
            raise request.response.value
        return request.response.value

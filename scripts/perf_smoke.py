#!/usr/bin/env python
"""Quick-profile performance smoke: gate wall-clock regressions in CI.

Times the quick-mode (``REPRO_QUICK=1``) Table II sweep — the workload the
zero-copy data plane and DES hot path were optimized for — and fails if it
runs more than 25 % slower than the committed ``BENCH_simcore.json``
baseline.  Absolute wall clocks vary across runner hardware, so the budget
is deliberately generous; the gate exists to catch algorithmic regressions
(a stray per-DMA copy, a de-slotted event class), which cost far more
than 25 %.

Usage: ``REPRO_QUICK=1 PYTHONPATH=src python scripts/perf_smoke.py``
"""

import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ALLOWED_REGRESSION = 1.25


def main() -> int:
    os.environ["REPRO_QUICK"] = "1"
    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.tables import run_use_case

    baseline = json.loads((ROOT / "BENCH_simcore.json").read_text())
    budget = baseline["table2"]["quick_wall_s"] * ALLOWED_REGRESSION

    # Warm-up pass: imports, numpy initialisation, allocator pools.
    run_use_case("sobel", configurations=["low"], runtimes=["native"])

    start = time.perf_counter()
    results = run_use_case("sobel")
    wall = time.perf_counter() - start

    print(f"table2 quick wall: {wall:.2f}s "
          f"(baseline {baseline['table2']['quick_wall_s']}s, "
          f"budget {budget:.2f}s, {len(results)} scenarios)")
    if wall > budget:
        print("FAIL: quick-profile wall clock regressed more than "
              f"{(ALLOWED_REGRESSION - 1):.0%} over the committed baseline")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

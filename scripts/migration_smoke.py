#!/usr/bin/env python
"""Migration smoke: gate the live-migration plane in CI.

Runs the quick-mode reconfiguration storm — four Sobel tenants under
load while MM/FIR/histogram deployments force Algorithm 1 to reprogram
their boards — once with the paper's restart moves and once with the
``repro.live`` checkpoint/restore plane, and fails if any of the
acceptance invariants breaks:

* **zero-downtime** — the live arm dropping even one in-flight request
  (the restart arm must demonstrably drop some, or the storm was not
  hostile enough to prove anything);
* **tail latency** — the restart arm's observed p99 (drops land at the
  request timeout) not being at least 2x the live arm's;
* **deadlock** — any client CL-event FSM left unresolved on either arm;
* **golden drift** — the seeded digest no longer matching
  ``tests/experiments/data/golden_migration.json`` (the run is
  bit-reproducible; any drift is a real behaviour change and the golden
  must be regenerated deliberately with ``--update``).

Usage: ``REPRO_QUICK=1 PYTHONPATH=src python scripts/migration_smoke.py``
"""

import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
GOLDEN = ROOT / "tests" / "experiments" / "data" / "golden_migration.json"
TAIL_FACTOR = 2.0


def main() -> int:
    os.environ["REPRO_QUICK"] = "1"
    os.environ.pop("REPRO_MIGRATION", None)
    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.migration import run_migration

    result = run_migration()
    digest = result.to_golden()
    print(json.dumps(digest, indent=2))

    live, restart = result.live, result.restart
    failures = []
    if live.dropped:
        failures.append(
            f"live migration dropped {live.dropped} in-flight request(s)"
        )
    if restart.dropped == 0:
        failures.append(
            "the restart arm dropped nothing: the storm no longer "
            "exercises the failure the live plane exists to prevent"
        )
    if live.live_migrations < 1 or live.live_fallbacks:
        failures.append(
            f"live arm did {live.live_migrations} live move(s) with "
            f"{live.live_fallbacks} fallback(s); expected >=1 and 0"
        )
    if restart.observed_p99_ms < TAIL_FACTOR * live.observed_p99_ms:
        failures.append(
            f"restart p99 {restart.observed_p99_ms:.1f} ms is not "
            f">= {TAIL_FACTOR}x live p99 {live.observed_p99_ms:.1f} ms"
        )
    hung = restart.hung_events + live.hung_events
    if hung:
        failures.append(
            f"deadlock: {hung} client event FSM(s) never resolved"
        )

    if "--update" in sys.argv[1:]:
        GOLDEN.write_text(json.dumps(digest, indent=2, sort_keys=True)
                          + "\n")
        print(f"golden rewritten: {GOLDEN}")
    elif GOLDEN.exists():
        golden = json.loads(GOLDEN.read_text())
        if digest != golden:
            drift = [
                f"{mode}.{key}"
                for mode in sorted(set(golden) | set(digest))
                for key in sorted(set(golden.get(mode, {}))
                                  | set(digest.get(mode, {})))
                if golden.get(mode, {}).get(key)
                != digest.get(mode, {}).get(key)
            ]
            failures.append(f"golden drift in {drift}; regenerate "
                            "deliberately with --update")
    else:
        failures.append(f"missing golden file {GOLDEN}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

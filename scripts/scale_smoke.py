#!/usr/bin/env python
"""Scale smoke: gate control-plane regressions at fleet size in CI.

Runs the 64-board cell of the scale sweep (quick windows) and compares
its two scale-critical measurements against the committed
``BENCH_scale.json``:

* **indexed allocation latency** (``indexed_alloc_us``) — the micro-bench
  of Algorithm 1 over the :class:`~repro.core.registry.index.DeviceIndex`
  on the live 64-board state;
* **DES throughput** (``events_per_sec``) — events/sec during the load
  phase, which collapses if periodic control work (heartbeats, leases,
  scrapes) stops riding the shared timer wheel.

Absolute numbers vary across runner hardware, so the budget is the same
generous 25 % the perf smoke uses, applied to the *best* of up to
``MAX_RUNS`` cell runs per metric: a genuine algorithmic regression (a
de-indexed allocator is ~20x, per-board timers are ~10x at this size)
fails every run, while a single noisy run on a loaded runner does not.
A run that already meets both gates short-circuits the rest.

Usage: ``PYTHONPATH=src python scripts/scale_smoke.py``
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ALLOWED_REGRESSION = 1.25
BOARDS = 64
MAX_RUNS = 3


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.scale import run_scale_cell

    baseline_cells = json.loads(
        (ROOT / "BENCH_scale.json").read_text()
    )["cells"]
    baseline = baseline_cells[str(BOARDS)]
    alloc_budget = baseline["indexed_alloc_us"] * ALLOWED_REGRESSION
    events_floor = baseline["events_per_sec"] / ALLOWED_REGRESSION

    # Warm-up pass: imports, allocator pools, first-run caches.
    run_scale_cell(3)

    best_alloc = float("inf")
    best_events = 0.0
    for attempt in range(1, MAX_RUNS + 1):
        cell = run_scale_cell(BOARDS)
        best_alloc = min(best_alloc, cell.indexed_alloc_us)
        best_events = max(best_events, cell.events_per_sec)
        print(f"scale {BOARDS}-board cell (run {attempt}/{MAX_RUNS}): "
              f"indexed alloc {cell.indexed_alloc_us:.1f}us "
              f"(baseline {baseline['indexed_alloc_us']}us, "
              f"budget {alloc_budget:.1f}us), "
              f"{cell.events_per_sec:,.0f} ev/s "
              f"(baseline {baseline['events_per_sec']:,}, "
              f"floor {events_floor:,.0f}), "
              f"speedup {cell.alloc_speedup:.1f}x, "
              f"wall {cell.wall_s:.1f}s")
        if best_alloc <= alloc_budget and best_events >= events_floor:
            break

    failed = False
    if best_alloc > alloc_budget:
        print("FAIL: indexed allocation latency regressed more than "
              f"{ALLOWED_REGRESSION - 1:.0%} over the committed baseline "
              f"in all {MAX_RUNS} runs")
        failed = True
    if best_events < events_floor:
        print("FAIL: DES events/sec regressed more than "
              f"{ALLOWED_REGRESSION - 1:.0%} under the committed baseline "
              f"in all {MAX_RUNS} runs")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Registry-chaos smoke: gate the crash-tolerant Registry in CI.

Runs the quick-mode registry-crash scenario — the Accelerators Registry
fail-stopped mid-reconfiguration-storm, recovered from snapshot+WAL
(durable arm) and by warm-standby takeover (replicated arm) — and fails
if any of the acceptance invariants breaks:

* **safety** — a double allocation (one instance on two device records)
  or a lost instance (allocated pod the recovered Registry forgot, or a
  registry instance with no backing pod) in either arm;
* **bounded blackout** — the durable outage exceeding the scripted
  restart delay plus replay budget, or the replicated outage exceeding
  the standby lease timeout plus one sync tick (plus replay budget);
* **fencing** — a zombie pre-crash command reaching a Device Manager
  without being rejected as stale-epoch;
* **deadlock / availability** — a hung client CL-event FSM, or fewer
  than 99 % of resolved in-window requests succeeding;
* **golden drift** — the seeded digest no longer matching
  ``tests/experiments/data/golden_registry_chaos.json`` (the run is
  bit-reproducible; drift is a real behaviour change and the golden must
  be regenerated deliberately with ``--update``).

Usage: ``REPRO_QUICK=1 PYTHONPATH=src python scripts/registry_chaos_smoke.py``
"""

import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
GOLDEN = (ROOT / "tests" / "experiments" / "data"
          / "golden_registry_chaos.json")
MIN_AVAILABILITY = 0.99
#: Slack on top of the scripted/lease-derived outage for replay time.
REPLAY_SLACK = 0.5


def main() -> int:
    os.environ["REPRO_QUICK"] = "1"
    os.environ.pop("REPRO_REGISTRY", None)  # arms pick their own mode
    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.registry_chaos import run_registry_chaos

    result = run_registry_chaos()
    digest = result.to_golden()
    print(json.dumps(digest, indent=2))

    spec = result.spec
    failures = []
    for arm in (result.durable, result.replicated):
        if arm.double_allocations:
            failures.append(
                f"{arm.mode}: {arm.double_allocations} double allocation(s)"
            )
        if arm.lost_instances:
            failures.append(
                f"{arm.mode}: {arm.lost_instances} lost instance(s)"
            )
        if arm.hung_events:
            failures.append(
                f"{arm.mode}: {arm.hung_events} client event FSM(s) never "
                "resolved"
            )
        if arm.availability < MIN_AVAILABILITY:
            failures.append(
                f"{arm.mode}: availability {arm.availability:.4f} below "
                f"the {MIN_AVAILABILITY:.0%} floor"
            )
        if arm.zombie_accepted or arm.zombie_fenced < 1:
            failures.append(
                f"{arm.mode}: zombie pre-crash command was not fenced "
                f"(fenced={arm.zombie_fenced}, "
                f"accepted={arm.zombie_accepted})"
            )
    if not (spec.restart_after <= result.durable.blackout_seconds
            <= spec.restart_after + REPLAY_SLACK):
        failures.append(
            f"durable: blackout {result.durable.blackout_seconds:.3f}s "
            f"outside [{spec.restart_after}, "
            f"{spec.restart_after + REPLAY_SLACK}]s"
        )
    replicated_bound = (spec.standby.lease_timeout
                        + spec.standby.sync_interval + REPLAY_SLACK)
    if result.replicated.blackout_seconds > replicated_bound:
        failures.append(
            f"replicated: blackout "
            f"{result.replicated.blackout_seconds:.3f}s exceeds the "
            f"{replicated_bound:.3f}s lease-expiry bound"
        )
    if result.replicated.takeovers != 1:
        failures.append(
            f"replicated: expected exactly one standby takeover, got "
            f"{result.replicated.takeovers}"
        )

    if "--update" in sys.argv[1:]:
        GOLDEN.write_text(json.dumps(digest, indent=2, sort_keys=True)
                          + "\n")
        print(f"golden rewritten: {GOLDEN}")
    elif GOLDEN.exists():
        golden = json.loads(GOLDEN.read_text())
        if digest != golden:
            drift = [
                f"{mode}.{key}"
                for mode in sorted(set(golden) | set(digest))
                for key in sorted(set(golden.get(mode, {}))
                                  | set(digest.get(mode, {})))
                if golden.get(mode, {}).get(key)
                != digest.get(mode, {}).get(key)
            ]
            failures.append(f"golden drift in {drift}; regenerate "
                            "deliberately with --update")
    else:
        failures.append(f"missing golden file {GOLDEN}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

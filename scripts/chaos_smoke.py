#!/usr/bin/env python
"""Chaos smoke: gate the failure-recovery stack in CI.

Runs the quick-mode chaos scenario — the Table-II Sobel load under 1%
control-message loss with a Device Manager crash and restart mid-run —
and fails if any of the acceptance invariants breaks:

* **deadlock** — the run not finishing, any client CL-event FSM left
  unresolved, or any load generator stranded (``run_guarded`` inside the
  harness turns a hang into a hard failure with diagnostics);
* **availability** — fewer than 99 % of resolved in-window requests
  succeeding despite the injected faults;
* **golden drift** — the seeded run's digest no longer matching
  ``tests/experiments/data/golden_chaos.json`` (the run is
  bit-reproducible; any drift is a real behaviour change and the golden
  must be regenerated deliberately with ``--update``).

Usage: ``REPRO_QUICK=1 PYTHONPATH=src python scripts/chaos_smoke.py``
"""

import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
GOLDEN = ROOT / "tests" / "experiments" / "data" / "golden_chaos.json"
MIN_AVAILABILITY = 0.99


def main() -> int:
    os.environ["REPRO_QUICK"] = "1"
    sys.path.insert(0, str(ROOT / "src"))
    from repro.experiments.chaos import run_chaos

    result = run_chaos()
    digest = result.to_golden()
    print(json.dumps(digest, indent=2))

    failures = []
    if result.hung_events:
        failures.append(
            f"deadlock: {result.hung_events} client event FSM(s) never "
            "resolved"
        )
    if result.availability < MIN_AVAILABILITY:
        failures.append(
            f"availability {result.availability:.4f} below the "
            f"{MIN_AVAILABILITY:.0%} floor"
        )
    if result.device_failures < 1:
        failures.append("the injected crash was never detected")

    if "--update" in sys.argv[1:]:
        GOLDEN.write_text(json.dumps(digest, indent=2, sort_keys=True)
                          + "\n")
        print(f"golden rewritten: {GOLDEN}")
    elif GOLDEN.exists():
        golden = json.loads(GOLDEN.read_text())
        if digest != golden:
            drift = [
                key for key in sorted(set(golden) | set(digest))
                if golden.get(key) != digest.get(key)
            ]
            failures.append(f"golden drift in {drift}; regenerate "
                            "deliberately with --update")
    else:
        failures.append(f"missing golden file {GOLDEN}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

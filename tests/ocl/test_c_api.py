"""The C-style cl* API: identical host code on native and BlastFunction."""

import numpy as np
import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.kernels import sobel_reference
from repro.ocl import ExecutionStatus, MemFlags, ProfilingInfo, native_platform
from repro.ocl.api import (
    clBuildProgram,
    clCreateBuffer,
    clCreateCommandQueue,
    clCreateContext,
    clCreateKernel,
    clCreateProgramWithBinary,
    clEnqueueNDRangeKernel,
    clEnqueueReadBuffer,
    clEnqueueWriteBuffer,
    clFinish,
    clGetDeviceIDs,
    clGetEventInfo,
    clGetEventProfilingInfo,
    clReleaseContext,
    clWaitForEvents,
)
from repro.rpc import Network
from repro.sim import Environment

SIDE = 8
NBYTES = SIDE * SIDE * 4


def sobel_c_style(platform, image):
    """Host code transliterated from the C API."""
    devices = clGetDeviceIDs(platform)
    context = clCreateContext(devices)
    queue = clCreateCommandQueue(context)
    program = clCreateProgramWithBinary(context, "sobel")
    yield from clBuildProgram(program)
    kernel = clCreateKernel(program, "sobel")

    in_buf = clCreateBuffer(context, MemFlags.READ_ONLY, NBYTES)
    out_buf = clCreateBuffer(context, MemFlags.WRITE_ONLY, NBYTES)
    kernel.set_args(in_buf, out_buf, SIDE, SIDE)

    yield from clEnqueueWriteBuffer(queue, in_buf, True, 0, NBYTES, image)
    kernel_event = clEnqueueNDRangeKernel(queue, kernel)
    read_event = clEnqueueReadBuffer(queue, out_buf, False, 0, NBYTES)
    queue.flush()
    yield clWaitForEvents([kernel_event, read_event])
    yield from clFinish(queue)

    assert clGetEventInfo(kernel_event) == ExecutionStatus.COMPLETE
    data = read_event.value
    clReleaseContext(context)
    return np.frombuffer(data, dtype=np.uint32).reshape(SIDE, SIDE)


@pytest.fixture
def image():
    rng = np.random.default_rng(123)
    return rng.integers(0, 4096, size=(SIDE, SIDE), dtype=np.uint32)


def test_c_api_on_native(image):
    env = Environment()
    board = FPGABoard(env, functional=True)
    platform = native_platform(env, board, standard_library())

    def flow():
        result = yield from sobel_c_style(platform, image)
        return result

    result = env.run(until=env.process(flow()))
    np.testing.assert_array_equal(result, sobel_reference(image))


def test_c_api_on_blastfunction(image):
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)

    def flow():
        platform = yield from remote_platform(
            env, "c-api-fn", node, manager, network, library
        )
        result = yield from sobel_c_style(platform, image)
        return result

    result = env.run(until=env.process(flow()))
    np.testing.assert_array_equal(result, sobel_reference(image))


def test_profiling_info_via_c_api(image):
    env = Environment()
    board = FPGABoard(env, functional=True)
    platform = native_platform(env, board, standard_library())

    def flow():
        context = clCreateContext(clGetDeviceIDs(platform))
        queue = clCreateCommandQueue(context)
        buffer = clCreateBuffer(context, MemFlags.READ_WRITE, 1 << 20)
        event = clEnqueueWriteBuffer(queue, buffer, False, 0, 1 << 20, None)
        yield clWaitForEvents([event])
        start = clGetEventProfilingInfo(event, ProfilingInfo.START)
        end = clGetEventProfilingInfo(event, ProfilingInfo.END)
        return end - start

    duration = env.run(until=env.process(flow()))
    assert duration > 0

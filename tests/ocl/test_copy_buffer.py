"""Tests for clEnqueueCopyBuffer on both runtimes."""

import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.ocl import CLError, Context, native_platform
from repro.ocl.errors import CL_INVALID_VALUE
from repro.rpc import Network
from repro.sim import Environment


def run(env, generator):
    return env.run(until=env.process(generator))


class TestNativeCopy:
    @pytest.fixture
    def setup(self):
        env = Environment()
        board = FPGABoard(env, functional=True)
        platform = native_platform(env, board, standard_library())
        context = Context(platform.get_devices())
        queue = context.create_queue()
        return env, board, context, queue

    def test_copy_preserves_data(self, setup):
        env, board, context, queue = setup
        src = context.create_buffer(16)
        dst = context.create_buffer(16)

        def flow():
            yield from queue.write_buffer(src, b"0123456789abcdef")
            event = queue.enqueue_copy_buffer(src, dst)
            yield event.wait()
            data = yield from queue.read_buffer(dst)
            return data

        assert run(env, flow()) == b"0123456789abcdef"

    def test_copy_with_offsets(self, setup):
        env, board, context, queue = setup
        src = context.create_buffer(8)
        dst = context.create_buffer(8)

        def flow():
            yield from queue.write_buffer(src, b"ABCDEFGH")
            event = queue.enqueue_copy_buffer(
                src, dst, nbytes=4, src_offset=2, dst_offset=1
            )
            yield event.wait()
            data = yield from queue.read_buffer(dst)
            return data

        assert run(env, flow())[1:5] == b"CDEF"

    def test_copy_does_not_touch_pcie(self, setup):
        env, board, context, queue = setup
        src = context.create_buffer(1 << 20)
        dst = context.create_buffer(1 << 20)

        def flow():
            event = queue.enqueue_copy_buffer(src, dst)
            yield event.wait()

        before = board.link.transfer_count
        run(env, flow())
        assert board.link.transfer_count == before

    def test_copy_time_uses_ddr_bandwidth(self, setup):
        env, board, context, queue = setup
        nbytes = 100_000_000
        src = context.create_buffer(nbytes)
        dst = context.create_buffer(nbytes)

        def flow():
            start = env.now
            event = queue.enqueue_copy_buffer(src, dst)
            yield event.wait()
            return env.now - start

        elapsed = run(env, flow())
        assert elapsed == pytest.approx(
            nbytes / FPGABoard.DDR_COPY_BANDWIDTH, rel=0.05
        )

    def test_out_of_bounds_rejected(self, setup):
        env, board, context, queue = setup
        src = context.create_buffer(8)
        dst = context.create_buffer(4)
        with pytest.raises(CLError) as excinfo:
            queue.enqueue_copy_buffer(src, dst, nbytes=8)
        assert excinfo.value.code == CL_INVALID_VALUE


class TestRemoteCopy:
    def test_copy_through_device_manager(self):
        env = Environment()
        network = Network(env)
        library = standard_library()
        node = network.host("B")
        board = FPGABoard(env, functional=True)
        manager = DeviceManager(env, "dm-B", board, library, network, node)

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            src = context.create_buffer(16)
            dst = context.create_buffer(16)
            yield from queue.write_buffer(src, b"remote-copy-data")
            event = queue.enqueue_copy_buffer(src, dst)
            queue.flush()
            yield event.wait()
            data = yield from queue.read_buffer(dst)
            return data

        assert run(env, flow()) == b"remote-copy-data"
        assert manager.metrics.get("ops_total").labels("copy").value == 1

    def test_copy_batched_into_task(self):
        """write+copy+read flushed together form one atomic task."""
        env = Environment()
        network = Network(env)
        library = standard_library()
        node = network.host("B")
        board = FPGABoard(env, functional=True)
        manager = DeviceManager(env, "dm-B", board, library, network, node)

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            src = context.create_buffer(8)
            dst = context.create_buffer(8)
            queue.enqueue_write_buffer(src, b"batched!")
            queue.enqueue_copy_buffer(src, dst)
            data = yield from queue.read_buffer(dst)
            return data

        assert run(env, flow()) == b"batched!"
        assert manager.metrics.get("tasks_total").value == 1

"""Tests for the OpenCL object model over the native driver."""

import numpy as np
import pytest

from repro.fpga import FPGABoard, standard_library
from repro.ocl import (
    CLError,
    CommandType,
    Context,
    DeviceType,
    ExecutionStatus,
    MemFlags,
    NativeDriverProfile,
    native_platform,
    wait_for_events,
)
from repro.ocl.errors import (
    CL_INVALID_ARG_INDEX,
    CL_INVALID_BINARY,
    CL_INVALID_COMMAND_QUEUE,
    CL_INVALID_CONTEXT,
    CL_INVALID_EVENT_WAIT_LIST,
    CL_INVALID_KERNEL_ARGS,
    CL_INVALID_KERNEL_NAME,
    CL_INVALID_MEM_OBJECT,
    CL_INVALID_VALUE,
    CL_MEM_OBJECT_ALLOCATION_FAILURE,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def library():
    return standard_library()


@pytest.fixture
def platform(env, library):
    board = FPGABoard(env, name="fpga0", functional=True)
    return native_platform(env, board, library)


def run(env, generator):
    return env.run(until=env.process(generator))


class TestDiscovery:
    def test_platform_reports_vendor(self, platform):
        assert "Intel" in platform.vendor
        assert "FPGA SDK" in platform.name

    def test_get_devices_by_type(self, platform):
        accelerators = platform.get_devices(DeviceType.ACCELERATOR)
        assert len(accelerators) == 1
        assert platform.get_devices(DeviceType.GPU) == []

    def test_device_reports_board_memory(self, platform):
        device = platform.get_devices()[0]
        assert device.global_mem_size == 8 * 1024**3
        assert "DE5a-Net" in device.name


class TestContextAndBuffers:
    def test_context_requires_devices(self):
        with pytest.raises(CLError) as excinfo:
            Context([])
        assert excinfo.value.code == CL_INVALID_VALUE

    def test_buffer_allocates_device_memory(self, platform):
        context = Context(platform.get_devices())
        context.create_buffer(1024)
        assert platform.driver.board.memory.used == 1024

    def test_buffer_release_frees_memory(self, platform):
        context = Context(platform.get_devices())
        buffer = context.create_buffer(1024)
        buffer.release()
        assert platform.driver.board.memory.used == 0

    def test_context_release_frees_everything(self, platform):
        context = Context(platform.get_devices())
        context.create_buffer(100)
        context.create_buffer(200)
        context.release()
        assert platform.driver.board.memory.used == 0
        with pytest.raises(CLError) as excinfo:
            context.create_buffer(10)
        assert excinfo.value.code == CL_INVALID_CONTEXT

    def test_zero_size_buffer_rejected(self, platform):
        context = Context(platform.get_devices())
        with pytest.raises(CLError) as excinfo:
            context.create_buffer(0)
        assert excinfo.value.code == CL_INVALID_VALUE

    def test_device_oom_maps_to_cl_error(self, platform):
        context = Context(platform.get_devices())
        with pytest.raises(CLError) as excinfo:
            context.create_buffer(9 * 1024**3)
        assert excinfo.value.code == CL_MEM_OBJECT_ALLOCATION_FAILURE

    def test_copy_host_ptr_requires_data(self, platform):
        context = Context(platform.get_devices())
        with pytest.raises(CLError):
            context.create_buffer(16, MemFlags.COPY_HOST_PTR)


class TestProgramAndKernel:
    def test_build_reconfigures_board(self, env, platform):
        context = Context(platform.get_devices())
        program = context.create_program("sobel")
        run(env, program.build())
        board = platform.driver.board
        assert board.bitstream.name == "sobel"
        assert env.now == pytest.approx(board.spec.reconfiguration_time)

    def test_rebuild_same_binary_is_free(self, env, platform):
        context = Context(platform.get_devices())
        program = context.create_program("sobel")
        run(env, program.build())
        before = env.now
        run(env, context.create_program("sobel").build())
        assert env.now == before

    def test_unknown_binary_rejected(self, env, platform):
        context = Context(platform.get_devices())
        program = context.create_program("nonexistent")
        with pytest.raises(CLError) as excinfo:
            run(env, program.build())
        assert excinfo.value.code == CL_INVALID_BINARY

    def test_create_kernel_before_build_rejected(self, env, platform):
        context = Context(platform.get_devices())
        program = context.create_program("sobel")
        with pytest.raises(CLError):
            program.create_kernel("sobel")

    def test_unknown_kernel_name_rejected(self, env, platform):
        context = Context(platform.get_devices())
        program = context.create_program("sobel")
        run(env, program.build())
        with pytest.raises(CLError) as excinfo:
            program.create_kernel("mm")
        assert excinfo.value.code == CL_INVALID_KERNEL_NAME

    def test_kernel_arity_exposed(self, env, platform):
        context = Context(platform.get_devices())
        program = context.create_program("mm")
        run(env, program.build())
        kernel = program.create_kernel("mm")
        assert kernel.arg_count == 6

    def test_set_arg_index_validated(self, env, platform):
        context = Context(platform.get_devices())
        program = context.create_program("sobel")
        run(env, program.build())
        kernel = program.create_kernel("sobel")
        with pytest.raises(CLError) as excinfo:
            kernel.set_arg(4, 1)
        assert excinfo.value.code == CL_INVALID_ARG_INDEX

    def test_enqueue_with_unset_args_rejected(self, env, platform):
        context = Context(platform.get_devices())
        queue = context.create_queue()
        program = context.create_program("sobel")
        run(env, program.build())
        kernel = program.create_kernel("sobel")
        kernel.set_arg(2, 10)
        with pytest.raises(CLError) as excinfo:
            queue.enqueue_kernel(kernel)
        assert excinfo.value.code == CL_INVALID_KERNEL_ARGS


class TestCommandQueue:
    def _sobel_setup(self, env, platform, width=8, height=8):
        context = Context(platform.get_devices())
        queue = context.create_queue()
        program = context.create_program("sobel")
        run(env, program.build())
        kernel = program.create_kernel("sobel")
        nbytes = width * height * 4
        in_buf = context.create_buffer(nbytes)
        out_buf = context.create_buffer(nbytes)
        kernel.set_args(in_buf, out_buf, width, height)
        return context, queue, kernel, in_buf, out_buf

    def test_blocking_write_read_roundtrip(self, env, platform):
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(16)

        def flow(env):
            yield from queue.write_buffer(buffer, b"0123456789abcdef")
            data = yield from queue.read_buffer(buffer)
            return data

        assert run(env, flow(env)) == b"0123456789abcdef"

    def test_sobel_end_to_end_through_api(self, env, platform):
        width = height = 10
        _, queue, kernel, in_buf, out_buf = self._sobel_setup(
            env, platform, width, height
        )
        rng = np.random.default_rng(0)
        image = rng.integers(0, 1000, size=(height, width), dtype=np.uint32)

        def flow(env):
            yield from queue.write_buffer(in_buf, image)
            yield from queue.run_kernel(kernel)
            data = yield from queue.read_buffer(out_buf)
            return np.frombuffer(data, dtype=np.uint32).reshape(height, width)

        result = run(env, flow(env))
        from repro.kernels import sobel_reference

        np.testing.assert_array_equal(result, sobel_reference(image))

    def test_async_events_and_statuses(self, env, platform):
        _, queue, kernel, in_buf, out_buf = self._sobel_setup(env, platform)
        statuses = []

        def flow(env):
            event = queue.enqueue_kernel(kernel)
            statuses.append(event.status)
            event.on_status_change(
                lambda ev, status: statuses.append(status)
            )
            yield event.wait()
            return event

        event = run(env, flow(env))
        assert statuses[0] == ExecutionStatus.QUEUED
        assert statuses[-1] == ExecutionStatus.COMPLETE
        assert event.is_complete

    def test_profiling_timestamps_ordered(self, env, platform):
        from repro.ocl import ProfilingInfo

        _, queue, kernel, *_ = self._sobel_setup(env, platform)

        def flow(env):
            event = yield from queue.run_kernel(kernel)
            return event

        event = run(env, flow(env))
        p = event.profiling
        assert (
            p[ProfilingInfo.QUEUED]
            <= p[ProfilingInfo.SUBMIT]
            <= p[ProfilingInfo.START]
            <= p[ProfilingInfo.END]
        )
        assert event.duration() > 0

    def test_in_order_execution(self, env, platform):
        """Commands on one queue complete in enqueue order."""
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(1 << 20)
        completions = []

        def flow(env):
            events = [
                queue.enqueue_write_buffer(buffer, nbytes=1 << 20)
                for _ in range(4)
            ]
            for event in events:
                event.on_status_change(
                    lambda ev, status: completions.append(ev.id)
                    if status == ExecutionStatus.COMPLETE
                    else None
                )
            yield wait_for_events(events)
            return [event.id for event in events]

        expected = run(env, flow(env))
        assert completions == expected

    def test_finish_waits_for_all(self, env, platform):
        _, queue, kernel, in_buf, _ = self._sobel_setup(env, platform, 64, 64)

        def flow(env):
            queue.enqueue_write_buffer(in_buf, nbytes=in_buf.size)
            kernel_event = queue.enqueue_kernel(kernel)
            yield from queue.finish()
            return kernel_event

        event = run(env, flow(env))
        assert event.is_complete

    def test_wait_list_defers_execution(self, env, platform):
        """A command with a wait list waits for events from another queue."""
        context = Context(platform.get_devices())
        q1 = context.create_queue()
        q2 = context.create_queue()
        big = context.create_buffer(64 << 20)
        small = context.create_buffer(64)

        def flow(env):
            slow = q1.enqueue_write_buffer(big, nbytes=big.size)
            gated = q2.enqueue_write_buffer(
                small, nbytes=64, wait_for=[slow]
            )
            yield gated.wait()
            return slow, gated

        slow, gated = run(env, flow(env))
        from repro.ocl import ProfilingInfo

        assert (
            gated.profiling[ProfilingInfo.START]
            >= slow.profiling[ProfilingInfo.END]
        )

    def test_marker_completes_after_prior_work(self, env, platform):
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(32 << 20)

        def flow(env):
            write = queue.enqueue_write_buffer(buffer, nbytes=buffer.size)
            marker = queue.enqueue_marker()
            yield marker.wait()
            assert write.is_complete

        run(env, flow(env))

    def test_out_of_bounds_write_rejected(self, env, platform):
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(16)
        with pytest.raises(CLError) as excinfo:
            queue.enqueue_write_buffer(buffer, b"x" * 17)
        assert excinfo.value.code == CL_INVALID_VALUE

    def test_released_queue_rejected(self, env, platform):
        context = Context(platform.get_devices())
        queue = context.create_queue()
        queue.release()
        with pytest.raises(CLError) as excinfo:
            queue.enqueue_marker()
        assert excinfo.value.code == CL_INVALID_COMMAND_QUEUE

    def test_released_buffer_rejected(self, env, platform):
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(16)
        buffer.release()
        with pytest.raises(CLError) as excinfo:
            queue.enqueue_read_buffer(buffer)
        assert excinfo.value.code == CL_INVALID_MEM_OBJECT

    def test_empty_wait_for_events_rejected(self, env):
        with pytest.raises(CLError) as excinfo:
            wait_for_events([])
        assert excinfo.value.code == CL_INVALID_EVENT_WAIT_LIST

    def test_sync_delay_applied_on_blocking_calls(self, env, library):
        profile = NativeDriverProfile(
            launch_overhead=0.0, sync_overhead_idle=5e-3
        )
        board = FPGABoard(env, functional=False)
        platform = native_platform(env, board, library, profile)
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(100)

        def flow(env):
            yield from queue.write_buffer(buffer, nbytes=100)

        run(env, flow(env))
        transfer = board.link.spec.transfer_time(100)
        assert env.now == pytest.approx(transfer + 5e-3)

    def test_loaded_flag_increases_sync_delay(self, env, library):
        board = FPGABoard(env, functional=False)
        platform = native_platform(env, board, library)
        driver = platform.driver
        idle = driver.host_sync_delay()
        driver.loaded = True
        assert driver.host_sync_delay() > idle

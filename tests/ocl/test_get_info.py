"""Tests for clGet*Info-style introspection APIs."""

import pytest

from repro.fpga import FPGABoard, standard_library
from repro.ocl import (
    CLError,
    Context,
    DeviceInfo,
    PlatformInfo,
    ProfilingInfo,
    native_platform,
)
from repro.sim import Environment


@pytest.fixture
def platform():
    env = Environment()
    board = FPGABoard(env, functional=False)
    return env, native_platform(env, board, standard_library())


class TestPlatformInfo:
    def test_name_and_vendor(self, platform):
        _env, p = platform
        assert "FPGA SDK" in p.get_info(PlatformInfo.NAME)
        assert "Intel" in p.get_info(PlatformInfo.VENDOR)
        assert p.get_info(PlatformInfo.VERSION).startswith("OpenCL")
        assert p.get_info(PlatformInfo.PROFILE) == "EMBEDDED_PROFILE"

    def test_unknown_param_rejected(self, platform):
        _env, p = platform
        with pytest.raises(CLError):
            p.get_info("not-a-param")


class TestDeviceInfo:
    def test_device_facts(self, platform):
        _env, p = platform
        device = p.get_devices()[0]
        assert "DE5a-Net" in device.get_info(DeviceInfo.NAME)
        assert device.get_info(DeviceInfo.GLOBAL_MEM_SIZE) == 8 * 1024**3
        assert device.get_info(DeviceInfo.AVAILABLE) is True
        assert device.get_info(DeviceInfo.PLATFORM) is p

    def test_unknown_param_rejected(self, platform):
        _env, p = platform
        with pytest.raises(CLError):
            p.get_devices()[0].get_info("bogus")


class TestEventProfilingInfo:
    def test_stamps_available_after_completion(self, platform):
        env, p = platform
        context = Context(p.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(1 << 20)

        def flow():
            event = queue.enqueue_write_buffer(buffer, nbytes=1 << 20)
            yield event.wait()
            return event

        event = env.run(until=env.process(flow()))
        queued = event.get_profiling_info(ProfilingInfo.QUEUED)
        end = event.get_profiling_info(ProfilingInfo.END)
        assert end > queued

    def test_missing_stamp_raises_profiling_error(self, platform):
        env, p = platform
        context = Context(p.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(64)
        event = queue.enqueue_write_buffer(buffer, nbytes=64)
        from repro.ocl.errors import CL_PROFILING_INFO_NOT_AVAILABLE

        with pytest.raises(CLError) as excinfo:
            event.get_profiling_info(ProfilingInfo.END)
        assert excinfo.value.code == CL_PROFILING_INFO_NOT_AVAILABLE

"""CL_MEM_COPY_HOST_PTR initialization on both runtimes."""

import numpy as np
import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, standard_library
from repro.ocl import Context, MemFlags, native_platform
from repro.rpc import Network
from repro.sim import Environment

PAYLOAD = b"initialised-by-COPY_HOST_PTR!!!!"


def test_native_buffer_initialised():
    env = Environment()
    board = FPGABoard(env, functional=True)
    platform = native_platform(env, board, standard_library())
    context = Context(platform.get_devices())
    queue = context.create_queue()
    buffer = context.create_buffer(
        len(PAYLOAD), MemFlags.READ_ONLY | MemFlags.COPY_HOST_PTR,
        hostbuf=PAYLOAD,
    )

    def flow():
        data = yield from queue.read_buffer(buffer)
        return data

    assert env.run(until=env.process(flow())) == PAYLOAD


def test_native_accepts_numpy_hostbuf():
    env = Environment()
    board = FPGABoard(env, functional=True)
    platform = native_platform(env, board, standard_library())
    context = Context(platform.get_devices())
    queue = context.create_queue()
    array = np.arange(8, dtype=np.float32)
    buffer = context.create_buffer(
        array.nbytes, MemFlags.READ_WRITE | MemFlags.COPY_HOST_PTR,
        hostbuf=array,
    )

    def flow():
        data = yield from queue.read_buffer(buffer)
        return np.frombuffer(data, dtype=np.float32)

    np.testing.assert_array_equal(
        env.run(until=env.process(flow())), array
    )


def test_remote_buffer_initialised():
    env = Environment()
    network = Network(env)
    library = standard_library()
    node = network.host("B")
    board = FPGABoard(env, functional=True)
    manager = DeviceManager(env, "dm-B", board, library, network, node)

    def flow():
        platform = yield from remote_platform(
            env, "fn", node, manager, network, library
        )
        context = Context(platform.get_devices())
        queue = context.create_queue()
        buffer = context.create_buffer(
            len(PAYLOAD), MemFlags.READ_ONLY | MemFlags.COPY_HOST_PTR,
            hostbuf=PAYLOAD,
        )
        data = yield from queue.read_buffer(buffer)
        return data

    assert env.run(until=env.process(flow())) == PAYLOAD

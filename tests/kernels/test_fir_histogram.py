"""Tests for the extra Spector accelerators (FIR filter, histogram)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    FIRKernel,
    HistogramKernel,
    fir_reference,
    histogram_reference,
)
from repro.kernels.fir import FIR_MAX_TAPS, FIR_SAMPLE_RATE
from repro.kernels.histogram import HISTOGRAM_MAX_BINS


class FakeBuffer:
    def __init__(self, nbytes):
        self._data = np.zeros(nbytes, dtype=np.uint8)
        self.size = nbytes

    def as_array(self, dtype, shape):
        wanted = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self._data[:wanted].view(dtype).reshape(shape)


class TestFIRReference:
    def test_identity_filter(self):
        signal = np.array([1, 2, 3, 4], dtype=np.float32)
        coeffs = np.array([1.0], dtype=np.float32)
        np.testing.assert_allclose(fir_reference(signal, coeffs), signal)

    def test_delay_filter(self):
        signal = np.array([1, 2, 3, 4], dtype=np.float32)
        coeffs = np.array([0.0, 1.0], dtype=np.float32)
        np.testing.assert_allclose(
            fir_reference(signal, coeffs), [0, 1, 2, 3]
        )

    def test_moving_average(self):
        signal = np.ones(6, dtype=np.float32)
        coeffs = np.full(3, 1 / 3, dtype=np.float32)
        out = fir_reference(signal, coeffs)
        np.testing.assert_allclose(out[2:], 1.0, rtol=1e-6)
        assert out[0] == pytest.approx(1 / 3)

    @given(
        n=st.integers(min_value=1, max_value=64),
        taps=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, n, taps, seed):
        rng = np.random.default_rng(seed)
        x1 = rng.standard_normal(n).astype(np.float32)
        x2 = rng.standard_normal(n).astype(np.float32)
        c = rng.standard_normal(taps).astype(np.float32)
        combined = fir_reference(x1 + x2, c)
        separate = fir_reference(x1, c) + fir_reference(x2, c)
        np.testing.assert_allclose(combined, separate, rtol=1e-4,
                                   atol=1e-4)


class TestFIRKernel:
    def test_duration_linear_in_samples(self):
        kernel = FIRKernel()
        d1 = kernel.duration({"n": 1_000_000, "taps": 16})
        d2 = kernel.duration({"n": 2_000_000, "taps": 16})
        assert (d2 - d1) == pytest.approx(1_000_000 / FIR_SAMPLE_RATE)

    def test_duration_independent_of_taps(self):
        kernel = FIRKernel()
        assert kernel.duration({"n": 1000, "taps": 2}) == pytest.approx(
            kernel.duration({"n": 1000, "taps": 64})
        )

    def test_too_many_taps_rejected(self):
        with pytest.raises(ValueError):
            FIRKernel().duration({"n": 100, "taps": FIR_MAX_TAPS + 1})

    def test_compute_via_buffers(self):
        kernel = FIRKernel()
        n, taps = 16, 4
        rng = np.random.default_rng(0)
        signal = rng.standard_normal(n).astype(np.float32)
        coeffs = rng.standard_normal(taps).astype(np.float32)
        sig_buf = FakeBuffer(signal.nbytes)
        coef_buf = FakeBuffer(coeffs.nbytes)
        out_buf = FakeBuffer(signal.nbytes)
        sig_buf.as_array(np.float32, (n,))[:] = signal
        coef_buf.as_array(np.float32, (taps,))[:] = coeffs
        kernel.compute({"signal": sig_buf, "coeffs": coef_buf,
                        "output": out_buf, "n": n, "taps": taps})
        np.testing.assert_allclose(
            out_buf.as_array(np.float32, (n,)),
            fir_reference(signal, coeffs), rtol=1e-5,
        )


class TestHistogram:
    def test_counts_sum_to_n(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**32, size=1000, dtype=np.uint32)
        counts = histogram_reference(values, 64)
        assert counts.sum() == 1000

    def test_known_distribution(self):
        values = np.array([0, 1, 1, 2, 2, 2], dtype=np.uint32)
        np.testing.assert_array_equal(
            histogram_reference(values, 4), [1, 2, 3, 0]
        )

    def test_modulo_binning(self):
        values = np.array([5, 9], dtype=np.uint32)  # both ≡ 1 (mod 4)
        np.testing.assert_array_equal(
            histogram_reference(values, 4), [0, 2, 0, 0]
        )

    @given(
        n=st.integers(min_value=1, max_value=500),
        bins=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_property(self, n, bins, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        assert histogram_reference(values, bins).sum() == n

    def test_kernel_duration_and_limits(self):
        kernel = HistogramKernel()
        assert kernel.duration({"n": 4_000_000, "bins": 256}) == \
            pytest.approx(40e-6 + 0.01)
        with pytest.raises(ValueError):
            kernel.duration({"n": 10, "bins": HISTOGRAM_MAX_BINS + 1})

    def test_kernel_compute_via_buffers(self):
        kernel = HistogramKernel()
        n, bins = 100, 8
        rng = np.random.default_rng(2)
        values = rng.integers(0, 1000, size=n, dtype=np.uint32)
        val_buf = FakeBuffer(values.nbytes)
        count_buf = FakeBuffer(bins * 4)
        val_buf.as_array(np.uint32, (n,))[:] = values
        kernel.compute({"values": val_buf, "counts": count_buf,
                        "n": n, "bins": bins})
        np.testing.assert_array_equal(
            count_buf.as_array(np.uint32, (bins,)),
            histogram_reference(values, bins),
        )


class TestExtendedLibraryEndToEnd:
    def test_fir_through_board(self):
        from repro.fpga import FPGABoard, extended_library
        from repro.sim import Environment

        env = Environment()
        library = extended_library()
        board = FPGABoard(env, functional=True)
        env.run(until=env.process(board.program(library.get("fir"))))
        n, taps = 32, 4
        rng = np.random.default_rng(3)
        signal = rng.standard_normal(n).astype(np.float32)
        coeffs = rng.standard_normal(taps).astype(np.float32)
        sig = board.allocate(signal.nbytes)
        coef = board.allocate(coeffs.nbytes)
        out = board.allocate(signal.nbytes)

        def flow():
            yield from board.dma_write(sig, signal.nbytes, signal.tobytes())
            yield from board.dma_write(coef, coeffs.nbytes,
                                       coeffs.tobytes())
            yield from board.execute("fir", [sig, coef, out, n, taps])
            data = yield from board.dma_read(out, signal.nbytes)
            return np.frombuffer(data, dtype=np.float32)

        result = env.run(until=env.process(flow()))
        np.testing.assert_allclose(result, fir_reference(signal, coeffs),
                                   rtol=1e-5)

"""Functional and timing-model tests for the Spector Sobel and MM kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    KernelArgumentError,
    MatrixMultiplyKernel,
    SobelKernel,
    sobel_reference,
)
from repro.kernels.mm import MM_MAC_RATE
from repro.kernels.sobel import SOBEL_THROUGHPUT


class FakeBuffer:
    """Minimal stand-in that mimics DeviceBuffer's array view protocol."""

    def __init__(self, nbytes):
        import numpy as np

        self._data = np.zeros(nbytes, dtype=np.uint8)
        self.size = nbytes

    def as_array(self, dtype, shape):
        wanted = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self._data[:wanted].view(dtype).reshape(shape)


class TestSobelReference:
    def test_flat_image_has_zero_gradient(self):
        image = np.full((8, 8), 100, dtype=np.uint32)
        assert sobel_reference(image).sum() == 0

    def test_vertical_edge_detected(self):
        image = np.zeros((5, 5), dtype=np.uint32)
        image[:, 3:] = 100
        result = sobel_reference(image)
        assert result[2, 2] > 0
        assert result[2, 1] == 0

    def test_border_is_zero(self):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 1000, size=(6, 7), dtype=np.uint32)
        result = sobel_reference(image)
        assert result[0].sum() == 0
        assert result[-1].sum() == 0
        assert result[:, 0].sum() == 0
        assert result[:, -1].sum() == 0

    def test_tiny_image_all_zero(self):
        image = np.ones((2, 2), dtype=np.uint32)
        assert sobel_reference(image).sum() == 0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            sobel_reference(np.zeros((2, 2, 3)))

    @given(
        height=st.integers(min_value=3, max_value=12),
        width=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_convolution(self, height, width, seed):
        rng = np.random.default_rng(seed)
        image = rng.integers(0, 4096, size=(height, width)).astype(np.int64)
        gx_k = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]])
        gy_k = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]])
        expected = np.zeros((height, width), dtype=np.int64)
        for y in range(1, height - 1):
            for x in range(1, width - 1):
                window = image[y - 1:y + 2, x - 1:x + 2]
                gx = int((window * gx_k).sum())
                gy = int((window * gy_k).sum())
                expected[y, x] = abs(gx) + abs(gy)
        np.testing.assert_array_equal(
            sobel_reference(image), expected.astype(np.uint32)
        )


class TestSobelKernel:
    def test_duration_linear_in_pixels(self):
        kernel = SobelKernel()
        small = kernel.duration({"width": 100, "height": 100})
        large = kernel.duration({"width": 200, "height": 200})
        assert large > small
        # Slope check: 4x pixels => ~4x kernel time (minus launch overhead).
        assert (large - small) == pytest.approx(
            3 * 100 * 100 / SOBEL_THROUGHPUT
        )

    def test_fullhd_duration_matches_fig4b_calibration(self):
        kernel = SobelKernel()
        duration = kernel.duration({"width": 1920, "height": 1080})
        # Native RTT at 1080p is 14.53 ms with ~2.4 ms of PCIe transfers and
        # ~0.27 ms of host overhead: the kernel itself is ~11.8 ms.
        assert duration == pytest.approx(11.8e-3, rel=0.05)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SobelKernel().duration({"width": 0, "height": 10})

    def test_compute_via_buffers(self):
        kernel = SobelKernel()
        width = height = 6
        rng = np.random.default_rng(3)
        image = rng.integers(0, 500, size=(height, width), dtype=np.uint32)
        in_buf = FakeBuffer(image.nbytes)
        out_buf = FakeBuffer(image.nbytes)
        in_buf.as_array(np.uint32, (height, width))[:, :] = image
        kernel.compute({
            "in_img": in_buf, "out_img": out_buf,
            "width": width, "height": height,
        })
        np.testing.assert_array_equal(
            out_buf.as_array(np.uint32, (height, width)),
            sobel_reference(image),
        )

    def test_image_bytes(self):
        assert SobelKernel.image_bytes(1920, 1080) == 1920 * 1080 * 4

    def test_resolve_args_validates_types(self):
        kernel = SobelKernel()
        with pytest.raises(KernelArgumentError):
            kernel.resolve_args(["not a buffer", FakeBuffer(4), 1, 1])


class TestMatrixMultiplyKernel:
    def test_duration_cubic(self):
        kernel = MatrixMultiplyKernel()
        d256 = kernel.duration({"m": 256, "n": 256, "k": 256})
        d512 = kernel.duration({"m": 512, "n": 512, "k": 512})
        assert (d512 - d256) == pytest.approx(
            (512**3 - 256**3) / MM_MAC_RATE
        )

    def test_4096_duration_matches_fig4c_calibration(self):
        kernel = MatrixMultiplyKernel()
        duration = kernel.duration({"m": 4096, "n": 4096, "k": 4096})
        # 3.571 s native RTT minus ~30 ms of transfers.
        assert duration == pytest.approx(3.54, rel=0.02)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            MatrixMultiplyKernel().duration({"m": 0, "n": 4, "k": 4})

    def test_compute_rectangular(self):
        kernel = MatrixMultiplyKernel()
        rng = np.random.default_rng(7)
        m, n, k = 5, 7, 3
        a = rng.standard_normal((m, k), dtype=np.float32)
        b = rng.standard_normal((k, n), dtype=np.float32)
        a_buf, b_buf, c_buf = (
            FakeBuffer(a.nbytes), FakeBuffer(b.nbytes),
            FakeBuffer(m * n * 4),
        )
        a_buf.as_array(np.float32, (m, k))[:, :] = a
        b_buf.as_array(np.float32, (k, n))[:, :] = b
        kernel.compute({
            "a": a_buf, "b": b_buf, "c": c_buf, "m": m, "n": n, "k": k,
        })
        np.testing.assert_allclose(
            c_buf.as_array(np.float32, (m, n)), a @ b, rtol=1e-5
        )

    @given(size=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_square_matmul_matches_numpy(self, size, seed):
        kernel = MatrixMultiplyKernel()
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((size, size), dtype=np.float32)
        b = rng.standard_normal((size, size), dtype=np.float32)
        a_buf = FakeBuffer(a.nbytes)
        b_buf = FakeBuffer(b.nbytes)
        c_buf = FakeBuffer(a.nbytes)
        a_buf.as_array(np.float32, a.shape)[:, :] = a
        b_buf.as_array(np.float32, b.shape)[:, :] = b
        kernel.compute({
            "a": a_buf, "b": b_buf, "c": c_buf,
            "m": size, "n": size, "k": size,
        })
        np.testing.assert_allclose(
            c_buf.as_array(np.float32, (size, size)), a @ b,
            rtol=1e-4, atol=1e-5,
        )

    def test_arg_count_mismatch(self):
        with pytest.raises(KernelArgumentError):
            MatrixMultiplyKernel().resolve_args([1, 2])

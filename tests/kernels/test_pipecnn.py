"""Tests for the PipeCNN kernels and the AlexNet network description."""

import numpy as np
import pytest

from repro.kernels import (
    ConvKernel,
    ConvSpec,
    LRNKernel,
    MemReadKernel,
    PoolKernel,
    alexnet_layers,
    conv2d_reference,
    lrn_reference,
    maxpool_reference,
    pipecnn_kernels,
    total_macs,
)
from repro.kernels.pipecnn import CONV_MAC_RATE, FC_MAC_RATE


class FakeBuffer:
    def __init__(self, nbytes):
        self._data = np.zeros(nbytes, dtype=np.uint8)
        self.size = nbytes

    def as_array(self, dtype, shape):
        wanted = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self._data[:wanted].view(dtype).reshape(shape)

    def write(self, payload, offset=0):
        view = np.frombuffer(
            payload.tobytes() if isinstance(payload, np.ndarray) else payload,
            dtype=np.uint8,
        )
        self._data[offset:offset + len(view)] = view

    def read(self, size=None, offset=0):
        if size is None:
            size = self.size - offset
        return self._data[offset:offset + size].tobytes()


class TestAlexNetDescription:
    def test_eight_layers(self):
        layers = alexnet_layers()
        assert [l.name for l in layers] == [
            "conv1", "conv2", "conv3", "conv4", "conv5", "fc6", "fc7", "fc8",
        ]

    def test_total_macs_matches_alexnet(self):
        # AlexNet forward pass is ~724 MMAC (conv ~666M, fc ~59M).
        assert total_macs() == pytest.approx(724e6, rel=0.01)

    def test_layer_geometry_chains(self):
        layers = alexnet_layers()
        for previous, current in zip(layers, layers[1:]):
            assert previous.output_channels == current.conv.in_channels
            assert previous.output_size == current.conv.in_size

    def test_final_layer_is_classifier(self):
        last = alexnet_layers()[-1]
        assert last.conv.out_channels == 1000
        assert last.conv.is_fully_connected
        assert not last.conv.relu

    def test_grouped_layer_macs(self):
        conv2 = alexnet_layers()[1].conv
        assert conv2.groups == 2
        assert conv2.macs == 27 * 27 * 256 * 5 * 5 * 48

    def test_inconsistent_geometry_rejected(self):
        with pytest.raises(ValueError):
            ConvSpec(3, 227, 96, 54, kernel=11, stride=4, pad=0)

    def test_bad_groups_rejected(self):
        with pytest.raises(ValueError):
            ConvSpec(3, 10, 7, 8, kernel=3, stride=1, pad=0, groups=2)


class TestConvReference:
    def test_identity_kernel(self):
        x = np.arange(9, dtype=np.float32).reshape(1, 3, 3)
        w = np.zeros((1, 1, 1, 1), dtype=np.float32)
        w[0, 0, 0, 0] = 1.0
        b = np.zeros(1, dtype=np.float32)
        out = conv2d_reference(x, w, b, stride=1, pad=0, relu=False)
        np.testing.assert_allclose(out, x)

    def test_bias_applied(self):
        x = np.zeros((1, 2, 2), dtype=np.float32)
        w = np.zeros((1, 1, 1, 1), dtype=np.float32)
        b = np.array([5.0], dtype=np.float32)
        out = conv2d_reference(x, w, b, stride=1, pad=0, relu=False)
        assert (out == 5.0).all()

    def test_relu_clips_negatives(self):
        x = np.ones((1, 2, 2), dtype=np.float32)
        w = np.full((1, 1, 1, 1), -1.0, dtype=np.float32)
        b = np.zeros(1, dtype=np.float32)
        out = conv2d_reference(x, w, b, stride=1, pad=0, relu=True)
        assert (out == 0.0).all()

    def test_stride_and_padding_geometry(self):
        x = np.random.default_rng(0).standard_normal((3, 11, 11)).astype(np.float32)
        w = np.random.default_rng(1).standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = np.zeros(4, dtype=np.float32)
        out = conv2d_reference(x, w, b, stride=2, pad=1, relu=False)
        assert out.shape == (4, 6, 6)

    def test_grouped_convolution_blocks_cross_talk(self):
        # Two groups; input of group 2 must not affect output of group 1.
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        b = np.zeros(2, dtype=np.float32)
        base = conv2d_reference(x, w, b, stride=1, pad=1, groups=2, relu=False)
        x2 = x.copy()
        x2[2:] += 10.0  # perturb only group 2's input channels
        perturbed = conv2d_reference(x2, w, b, stride=1, pad=1, groups=2,
                                     relu=False)
        np.testing.assert_allclose(perturbed[0], base[0], rtol=1e-5)
        assert not np.allclose(perturbed[1], base[1])

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        out = conv2d_reference(x, w, b, stride=1, pad=0, relu=False)
        # Naive direct computation.
        expected = np.zeros((3, 4, 4), dtype=np.float64)
        for oc in range(3):
            for oy in range(4):
                for ox in range(4):
                    acc = b[oc]
                    for ic in range(2):
                        acc += (x[ic, oy:oy + 3, ox:ox + 3] * w[oc, ic]).sum()
                    expected[oc, oy, ox] = acc
        np.testing.assert_allclose(out, expected, rtol=1e-4)


class TestPoolAndLRN:
    def test_maxpool_basic(self):
        x = np.array([[[1, 2, 3, 4],
                       [5, 6, 7, 8],
                       [9, 10, 11, 12],
                       [13, 14, 15, 16]]], dtype=np.float32)
        out = maxpool_reference(x, kernel=2, stride=2)
        np.testing.assert_allclose(out, [[[6, 8], [14, 16]]])

    def test_maxpool_overlapping_windows(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 5, 5)
        out = maxpool_reference(x, kernel=3, stride=2)
        assert out.shape == (1, 2, 2)
        assert out[0, 1, 1] == 24.0

    def test_lrn_preserves_shape_and_scales_down(self):
        x = np.full((8, 4, 4), 2.0, dtype=np.float32)
        out = lrn_reference(x, local_size=5, alpha=1e-1, beta=0.75, k=1.0)
        assert out.shape == x.shape
        assert (out < x).all()
        assert (out > 0).all()

    def test_lrn_identity_with_zero_alpha(self):
        x = np.random.default_rng(0).standard_normal((4, 3, 3)).astype(np.float32)
        out = lrn_reference(x, local_size=5, alpha=0.0, beta=0.75, k=1.0)
        np.testing.assert_allclose(out, x, rtol=1e-6)


class TestPipeCNNKernels:
    def test_kernel_set(self):
        names = {kernel.name for kernel in pipecnn_kernels()}
        assert names == {"mem_rd", "conv", "pool", "lrn", "mem_wr"}

    def test_conv_duration_uses_conv_rate(self):
        kernel = ConvKernel()
        args = {"in_channels": 256, "in_size": 13, "out_channels": 384,
                "out_size": 13, "kernel": 3, "stride": 1, "pad": 1,
                "groups": 1, "relu": 1}
        macs = 13 * 13 * 384 * 9 * 256
        assert kernel.duration(args) == pytest.approx(
            50e-6 + macs / CONV_MAC_RATE
        )

    def test_fc_duration_uses_fc_rate(self):
        kernel = ConvKernel()
        args = {"in_channels": 4096, "in_size": 1, "out_channels": 4096,
                "out_size": 1, "kernel": 1, "stride": 1, "pad": 0,
                "groups": 1, "relu": 1}
        macs = 4096 * 4096
        assert kernel.duration(args) == pytest.approx(
            50e-6 + macs / FC_MAC_RATE
        )

    def test_alexnet_device_time_lands_near_85ms(self):
        """Aggregate kernel durations ≈ 85 ms, consistent with Table IV."""
        conv = ConvKernel()
        pool = PoolKernel()
        lrn = LRNKernel()
        total = 0.0
        for layer in alexnet_layers():
            spec = layer.conv
            total += conv.duration({
                "in_channels": spec.in_channels, "in_size": spec.in_size,
                "out_channels": spec.out_channels, "out_size": spec.out_size,
                "kernel": spec.kernel, "stride": spec.stride,
                "pad": spec.pad, "groups": spec.groups,
                "relu": int(spec.relu),
            })
            if layer.pool:
                total += pool.duration({
                    "channels": layer.pool.channels,
                    "in_size": layer.pool.in_size,
                    "out_size": layer.pool.out_size,
                    "kernel": layer.pool.kernel,
                    "stride": layer.pool.stride,
                })
            if layer.lrn:
                total += lrn.duration({
                    "channels": layer.lrn.channels, "size": layer.lrn.size,
                    "local_size": layer.lrn.local_size,
                    "alpha": layer.lrn.alpha, "beta": layer.lrn.beta,
                    "k": layer.lrn.k,
                })
        assert 0.075 <= total <= 0.095

    def test_mem_rd_copies_bytes(self):
        kernel = MemReadKernel()
        src, dst = FakeBuffer(16), FakeBuffer(16)
        src.write(b"0123456789abcdef")
        kernel.compute({"src": src, "dst": dst, "nbytes": 16})
        assert dst.read(16) == b"0123456789abcdef"

    def test_conv_kernel_compute_via_buffers(self):
        kernel = ConvKernel()
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        in_buf = FakeBuffer(x.nbytes)
        w_buf = FakeBuffer(w.nbytes)
        b_buf = FakeBuffer(b.nbytes)
        out_buf = FakeBuffer(3 * 3 * 3 * 4)
        in_buf.as_array(np.float32, x.shape)[:] = x
        w_buf.as_array(np.float32, w.shape)[:] = w
        b_buf.as_array(np.float32, b.shape)[:] = b
        kernel.compute({
            "input": in_buf, "weights": w_buf, "bias": b_buf,
            "output": out_buf, "in_channels": 2, "in_size": 5,
            "out_channels": 3, "out_size": 3, "kernel": 3, "stride": 1,
            "pad": 0, "groups": 1, "relu": 0,
        })
        expected = conv2d_reference(x, w, b, stride=1, pad=0, relu=False)
        np.testing.assert_allclose(
            out_buf.as_array(np.float32, (3, 3, 3)), expected, rtol=1e-5
        )

"""Tests for unary-call deadlines (gRPC timeout semantics)."""

import pytest

from repro.rpc import (
    GrpcTransport,
    Network,
    RpcEndpoint,
    RpcError,
    reply,
    reply_error,
    unary_call,
)
from repro.rpc.messages import RpcTimeout
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    network = Network(env)
    host = network.host("A")
    transport = GrpcTransport(env, network, host, host)
    endpoint = RpcEndpoint(env, "server")
    return env, transport, endpoint


def test_timeout_raises_when_server_silent(setup):
    env, transport, endpoint = setup

    def client():
        try:
            yield from unary_call(transport, endpoint, "Slow", timeout=1.0)
        except RpcTimeout as exc:
            return env.now, str(exc)
        return None

    # No server at all: the call must give up at the deadline.
    now, text = env.run(until=env.process(client()))
    assert now == pytest.approx(1.0, abs=0.01)
    assert "deadline" in text


def test_reply_before_deadline_succeeds(setup):
    env, transport, endpoint = setup

    def server():
        message = yield endpoint.inbox.get()
        yield from reply(transport, message, {"ok": True})

    def client():
        result = yield from unary_call(transport, endpoint, "Fast",
                                       timeout=5.0)
        return result

    env.process(server())
    assert env.run(until=env.process(client())) == {"ok": True}


def test_late_reply_does_not_crash_simulation(setup):
    env, transport, endpoint = setup
    outcome = {}

    def server():
        message = yield endpoint.inbox.get()
        yield env.timeout(3.0)  # long past the client's deadline
        yield from reply(transport, message, {"late": True})

    def client():
        try:
            yield from unary_call(transport, endpoint, "Slow", timeout=0.5)
        except RpcTimeout:
            outcome["timed_out"] = env.now

    env.process(server())
    env.process(client())
    env.run()  # the late reply lands after abandonment: must not raise
    assert outcome["timed_out"] == pytest.approx(0.5, abs=0.01)


def test_late_error_reply_does_not_crash(setup):
    env, transport, endpoint = setup

    def server():
        message = yield endpoint.inbox.get()
        yield env.timeout(3.0)
        yield from reply_error(transport, message, ValueError("too late"))

    def client():
        with pytest.raises(RpcTimeout):
            yield from unary_call(transport, endpoint, "Slow", timeout=0.5)

    env.process(server())
    env.process(client())
    env.run()


def test_server_error_before_deadline_raises_rpc_error(setup):
    env, transport, endpoint = setup

    def server():
        message = yield endpoint.inbox.get()
        yield from reply_error(transport, message, ValueError("nope"))

    def client():
        try:
            yield from unary_call(transport, endpoint, "Bad", timeout=5.0)
        except RpcTimeout:
            return "timeout"
        except RpcError as exc:
            return f"error:{exc}"

    env.process(server())
    result = env.run(until=env.process(client()))
    assert result.startswith("error:")
    assert "nope" in result


def test_no_timeout_waits_indefinitely(setup):
    env, transport, endpoint = setup

    def server():
        message = yield endpoint.inbox.get()
        yield env.timeout(50.0)
        yield from reply(transport, message, "eventually")

    def client():
        result = yield from unary_call(transport, endpoint, "Patient")
        return env.now, result

    env.process(server())
    now, result = env.run(until=env.process(client()))
    assert result == "eventually"
    assert now > 50.0

"""Tests for control-plane messaging (endpoints, unary calls, replies)."""

import pytest

from repro.rpc import (
    GrpcTransport,
    Message,
    Network,
    RpcEndpoint,
    RpcError,
    reply,
    reply_error,
    send_to_client,
    send_to_server,
    unary_call,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def setup(env):
    network = Network(env)
    host = network.host("A")
    transport = GrpcTransport(env, network, host, host)
    endpoint = RpcEndpoint(env, "device-manager")
    return transport, endpoint


def run(env, generator):
    return env.run(until=env.process(generator))


def test_one_way_message_delivery(env, setup):
    transport, endpoint = setup
    message = Message(method="CreateBuffer", payload={"size": 64})

    def client(env):
        yield from send_to_server(transport, endpoint, message)

    def server(env):
        received = yield endpoint.inbox.get()
        return received

    env.process(client(env))
    received = run(env, server(env))
    assert received.method == "CreateBuffer"
    assert received.payload == {"size": 64}
    assert endpoint.delivered == 1
    assert env.now > 0  # transport latency applied


def test_unary_call_round_trip(env, setup):
    transport, endpoint = setup

    def server(env):
        message = yield endpoint.inbox.get()
        assert message.reply_to is not None
        yield from reply(transport, message, {"buffer_id": 7})

    def client(env):
        result = yield from unary_call(
            transport, endpoint, "CreateBuffer", {"size": 64},
        )
        return result

    env.process(server(env))
    result = run(env, client(env))
    assert result == {"buffer_id": 7}


def test_unary_call_error_raises_on_client(env, setup):
    transport, endpoint = setup

    def server(env):
        message = yield endpoint.inbox.get()
        yield from reply_error(transport, message, ValueError("no memory"))

    def client(env):
        try:
            yield from unary_call(transport, endpoint, "CreateBuffer")
        except RpcError as exc:
            return str(exc)
        return None

    env.process(server(env))
    assert "no memory" in run(env, client(env))


def test_reply_to_one_way_message_rejected(env, setup):
    transport, endpoint = setup
    message = Message(method="Notify")
    with pytest.raises(ValueError):
        run(env, reply(transport, message, None))


def test_tag_travels_with_message(env, setup):
    transport, endpoint = setup
    sentinel = object()
    message = Message(method="EnqueueRead", tag=sentinel)

    def client(env):
        yield from send_to_server(transport, endpoint, message)

    def server(env):
        received = yield endpoint.inbox.get()
        return received.tag

    env.process(client(env))
    assert run(env, server(env)) is sentinel


def test_server_push_notification(env, setup):
    """Server → client push, as the Device Manager notifies completions."""
    transport, _ = setup
    client_endpoint = RpcEndpoint(env, "client-completion-queue")

    def server(env):
        yield from send_to_client(
            transport, client_endpoint, Message(method="OpComplete", tag=42)
        )

    def client(env):
        message = yield client_endpoint.inbox.get()
        return message.tag

    env.process(server(env))
    assert run(env, client(env)) == 42


def test_messages_have_unique_ids(env):
    first = Message(method="a")
    second = Message(method="a")
    assert first.id != second.id

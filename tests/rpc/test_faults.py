"""RPC layer under the fault plane: drop, delay, duplicate, partition."""

import pytest

from repro.faults import NetworkFaultPlane
from repro.rpc import (
    GrpcTransport,
    Message,
    Network,
    RpcEndpoint,
    RpcTimeout,
    new_request_id,
    reply,
    unary_call,
)
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    network = Network(env)
    client_host = network.host("client-host")
    server_host = network.host("server-host")
    transport = GrpcTransport(env, network, client_host, server_host)
    endpoint = RpcEndpoint(env, "server")
    return env, network, transport, endpoint


def test_disabled_plane_is_inert(setup):
    env, network, transport, endpoint = setup
    assert network.faults is None

    def server():
        message = yield endpoint.inbox.get()
        yield from reply(transport, message, {"ok": True})

    def client():
        return (yield from unary_call(transport, endpoint, "Ping"))

    env.process(server())
    assert env.run(until=env.process(client())) == {"ok": True}


def test_dropped_request_times_out(setup):
    env, network, transport, endpoint = setup
    network.faults = NetworkFaultPlane(seed=1, drop_rate=1.0)

    def client():
        try:
            yield from unary_call(transport, endpoint, "Ping", timeout=0.5)
        except RpcTimeout:
            return env.now
        return None

    assert env.run(until=env.process(client())) == pytest.approx(0.5,
                                                                 abs=0.01)
    assert len(endpoint.inbox.items) == 0
    assert network.faults.counters["dropped"] == 1


def test_duplicate_delivers_message_twice(setup):
    env, network, transport, endpoint = setup
    network.faults = NetworkFaultPlane(seed=1, duplicate_rate=1.0)

    def sender():
        yield from transport.deliver_to_server(
            endpoint, Message(method="Notify", sender="c")
        )

    env.run(until=env.process(sender()))
    assert len(endpoint.inbox.items) == 2
    assert network.faults.counters["duplicated"] == 1


def test_delay_postpones_delivery(setup):
    env, network, transport, endpoint = setup
    arrivals = []

    def server():
        while True:
            yield endpoint.inbox.get()
            arrivals.append(env.now)

    def sender():
        yield from transport.deliver_to_server(
            endpoint, Message(method="Notify", sender="c")
        )

    env.process(server())
    env.run(until=env.process(sender()))
    env.run()
    baseline = arrivals[0]

    env2 = Environment()
    network2 = Network(env2)
    transport2 = GrpcTransport(env2, network2, network2.host("client-host"),
                               network2.host("server-host"))
    endpoint2 = RpcEndpoint(env2, "server")
    network2.faults = NetworkFaultPlane(seed=1, delay_rate=1.0, delay=0.25)
    arrivals2 = []

    def server2():
        while True:
            yield endpoint2.inbox.get()
            arrivals2.append(env2.now)

    def sender2():
        yield from transport2.deliver_to_server(
            endpoint2, Message(method="Notify", sender="c")
        )

    env2.process(server2())
    env2.run(until=env2.process(sender2()))
    env2.run()
    assert arrivals2[0] == pytest.approx(baseline + 0.25)


def test_partition_blocks_until_healed(setup):
    env, network, transport, endpoint = setup
    plane = NetworkFaultPlane(seed=1)
    network.faults = plane
    plane.partition("client-host", "server-host")

    def server():
        while True:
            message = yield endpoint.inbox.get()
            yield from reply(transport, message, {"ok": True})

    def client(timeout):
        try:
            result = yield from unary_call(transport, endpoint, "Ping",
                                           timeout=timeout)
        except RpcTimeout:
            return "timeout"
        return result

    env.process(server())
    assert env.run(until=env.process(client(0.3))) == "timeout"
    plane.heal("client-host", "server-host")
    assert env.run(until=env.process(client(0.3))) == {"ok": True}


def test_lost_reply_surfaces_as_deadline_expiry(setup):
    env, network, transport, endpoint = setup
    served = []

    def server():
        message = yield endpoint.inbox.get()
        served.append(message.method)
        # Arm total loss only now, so exactly the reply leg is hit.
        network.faults = NetworkFaultPlane(seed=1, drop_rate=1.0)
        yield from reply(transport, message, {"ok": True})

    def client():
        try:
            yield from unary_call(transport, endpoint, "Ping", timeout=0.5)
        except RpcTimeout as exc:
            return env.now, str(exc)
        return None

    env.process(server())
    now, text = env.run(until=env.process(client()))
    assert served == ["Ping"]  # the server handled it: only the reply died
    assert now == pytest.approx(0.5, abs=0.01)
    assert "reply lost" in text
    env.run()  # nothing left behind may crash the simulation


def test_request_id_pins_message_id(setup):
    env, network, transport, endpoint = setup
    rid = new_request_id()

    def server():
        message = yield endpoint.inbox.get()
        yield from reply(transport, message, {"id": message.id})

    def client():
        return (yield from unary_call(transport, endpoint, "Ping",
                                      request_id=rid))

    env.process(server())
    assert env.run(until=env.process(client())) == {"id": rid}

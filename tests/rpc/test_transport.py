"""Tests for the network fabric and the gRPC/shm transports."""

import pytest

from repro.fpga import HOST_I7_6700, HOST_XEON_W3530
from repro.rpc import (
    CopyStats,
    GrpcTransport,
    Network,
    ShmTransport,
    make_transport,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def network(env):
    return Network(env)


def run(env, generator):
    return env.run(until=env.process(generator))


class TestNetwork:
    def test_local_path_faster_than_remote(self, env, network):
        a1 = network.host("A")
        a2 = network.host("A")
        b = network.host("B")
        assert a1 is a2
        assert network.is_local(a1, a2)
        assert not network.is_local(a1, b)
        local = network.spec_between(a1, a2)
        remote = network.spec_between(a1, b)
        nbytes = 10_000_000
        assert local.transfer_time(nbytes) < remote.transfer_time(nbytes)

    def test_transfer_advances_clock(self, env, network):
        src = network.host("A")
        dst = network.host("B")
        run(env, network.transfer(src, dst, 1_170_000))
        # 1 Gb/s ethernet: ~10 ms for ~1.17 MB (+latency).
        assert env.now == pytest.approx(0.01, rel=0.05)

    def test_cross_node_serializes_on_nic(self, env, network):
        src = network.host("A")
        dst = network.host("B")
        nbytes = 11_700_000
        env.process(network.transfer(src, dst, nbytes))
        env.process(network.transfer(src, dst, nbytes))
        env.run()
        single = network.remote.transfer_time(nbytes)
        assert env.now == pytest.approx(2 * single, rel=0.01)

    def test_local_transfers_do_not_contend(self, env, network):
        host = network.host("A")
        nbytes = 139_000_000
        env.process(network.transfer(host, host, nbytes))
        env.process(network.transfer(host, host, nbytes))
        env.run()
        single = network.local.transfer_time(nbytes)
        assert env.now == pytest.approx(single, rel=0.01)

    def test_negative_size_rejected(self, env, network):
        host = network.host("A")
        with pytest.raises(ValueError):
            run(env, network.transfer(host, host, -1))


class TestGrpcTransport:
    def test_large_transfer_near_4x_native_pcie(self, env, network):
        """Fig. 4(a): local gRPC data path ≈ 3 copy-equivalents + protobuf,
        landing near 4× the PCIe-only native time for the same bytes."""
        host = network.host("A")
        transport = GrpcTransport(env, network, host, host)
        nbytes = 1 << 30  # 1 GiB one way

        run(env, transport.data_to_server(nbytes))
        grpc_time = env.now
        native_time = nbytes / 6.8e9  # PCIe gen3 effective
        assert 2.5 < (grpc_time + native_time) / native_time < 4.5

    def test_copy_accounting(self, env, network):
        stats = CopyStats()
        host = network.host("A")
        transport = GrpcTransport(env, network, host, host, stats)
        run(env, transport.data_to_server(1000))
        # 2 explicit copies + 1 wire traversal.
        assert stats.copies == 3
        assert stats.bytes_copied == 3000

    def test_control_message_sub_millisecond(self, env, network):
        host = network.host("A")
        transport = GrpcTransport(env, network, host, host)
        run(env, transport.control_to_server())
        assert 50e-6 < env.now < 1e-3

    def test_slow_host_slows_control(self, env, network):
        fast = network.host("B", HOST_I7_6700)
        t_fast = GrpcTransport(env, network, fast, fast)
        run(env, t_fast.control_to_server())
        fast_time = env.now

        env2 = Environment()
        network2 = Network(env2)
        slow = network2.host("A", HOST_XEON_W3530)
        t_slow = GrpcTransport(env2, network2, slow, slow)
        env2.run(until=env2.process(t_slow.control_to_server()))
        assert env2.now > fast_time

    def test_cross_node_data_rides_ethernet(self, env, network):
        a = network.host("A")
        b = network.host("B")
        transport = GrpcTransport(env, network, a, b)
        nbytes = 117_000_000  # ~1 s on 1 Gb/s
        run(env, transport.data_to_server(nbytes))
        assert env.now > 1.0


class TestShmTransport:
    def test_single_copy(self, env, network):
        stats = CopyStats()
        host = network.host("A")
        transport = ShmTransport(env, network, host, host, stats)
        run(env, transport.data_to_server(1000))
        assert stats.copies == 1

    def test_2gb_copy_near_155ms(self, env, network):
        """Fig. 4(a): the shm overhead ceiling is one memcpy of the payload:
        ~155 ms for 2 GB."""
        host = network.host("B", HOST_I7_6700)
        transport = ShmTransport(env, network, host, host)
        run(env, transport.data_to_server(2 * 1024**3))
        assert env.now == pytest.approx(0.155, rel=0.03)

    def test_requires_colocation(self, env, network):
        a = network.host("A")
        b = network.host("B")
        with pytest.raises(ValueError):
            ShmTransport(env, network, a, b)

    def test_faster_than_grpc(self, env, network):
        host = network.host("A")
        shm = ShmTransport(env, network, host, host)
        run(env, shm.data_to_server(1 << 28))
        shm_time = env.now

        env2 = Environment()
        network2 = Network(env2)
        host2 = network2.host("A")
        grpc = GrpcTransport(env2, network2, host2, host2)
        env2.run(until=env2.process(grpc.data_to_server(1 << 28)))
        assert env2.now > 2 * shm_time


class TestMakeTransport:
    def test_prefers_shm_locally(self, env, network):
        host = network.host("A")
        transport = make_transport(env, network, host, host)
        assert isinstance(transport, ShmTransport)

    def test_grpc_across_nodes(self, env, network):
        transport = make_transport(
            env, network, network.host("A"), network.host("B")
        )
        assert isinstance(transport, GrpcTransport)

    def test_shm_can_be_disabled(self, env, network):
        host = network.host("A")
        transport = make_transport(env, network, host, host, prefer_shm=False)
        assert isinstance(transport, GrpcTransport)

"""Smoke tests: the runnable examples must keep working.

Each example's ``main()`` is executed in-process (they are deterministic
simulations with internal assertions, so completing without raising is a
real check).  The slowest examples (functional AlexNet, full service
comparisons) are exercised by their own integration tests and benches, so
only the fast ones run here.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str):
    """Execute examples/<name>.py as __main__."""
    path = EXAMPLES / f"{name}.py"
    assert path.exists(), f"missing example {path}"
    runpy.run_path(str(path), run_name="__main__")


def test_quickstart(capsys):
    run_example("quickstart")
    out = capsys.readouterr().out
    assert "results identical on both platforms" in out
    assert "sharing overhead" in out


def test_device_sharing_migration(capsys):
    run_example("device_sharing_migration")
    out = capsys.readouterr().out
    assert "1 migration(s)" in out
    assert "bitstream='mm'" in out


def test_trace_latency_breakdown(capsys, tmp_path):
    # Redirect the Chrome trace into the test's tmp dir.
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "trace_example", EXAMPLES / "trace_latency_breakdown.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.TRACE_PATH = str(tmp_path / "trace.json")
    module.main()
    out = capsys.readouterr().out
    assert "Per-request latency breakdown" in out
    assert (tmp_path / "trace.json").exists()


def test_matrix_multiply_sweep(capsys):
    run_example("matrix_multiply_sweep")
    out = capsys.readouterr().out
    assert "grpc ovh" in out

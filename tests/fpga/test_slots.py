"""Tests for partial-reconfiguration slots (space-sharing extension)."""

import pytest

from repro.fpga import BoardError, DE5A_NET, FPGABoard, standard_library
from repro.fpga.hwspec import BoardSpec
from repro.sim import Environment
from dataclasses import replace


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def library():
    return standard_library()


def multi_slot_spec(slots=2) -> BoardSpec:
    return replace(DE5A_NET, pr_slots=slots)


def run(env, generator):
    return env.run(until=env.process(generator))


class TestSpec:
    def test_default_board_has_one_slot(self):
        assert DE5A_NET.pr_slots == 1

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            replace(DE5A_NET, pr_slots=0)


class TestPartialReconfiguration:
    def test_program_slot_installs_bitstream(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        run(env, board.program_slot(0, library.get("sobel")))
        run(env, board.program_slot(1, library.get("mm")))
        assert board.slots[0].name == "sobel"
        assert board.slots[1].name == "mm"
        assert board.partial_reconfigurations == 2
        assert env.now == pytest.approx(
            2 * board.spec.partial_reconfiguration_time
        )

    def test_partial_preserves_memory(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        run(env, board.program_slot(0, library.get("sobel")))
        board.allocate(1024)
        run(env, board.program_slot(1, library.get("mm")))
        assert board.memory.used == 1024

    def test_full_program_wipes_all_slots_and_memory(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        run(env, board.program_slot(1, library.get("mm")))
        board.allocate(64)
        run(env, board.program(library.get("sobel")))
        assert board.slots[0].name == "sobel"
        assert board.slots[1] is None
        assert board.memory.used == 0

    def test_slot_out_of_range(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        with pytest.raises(BoardError):
            run(env, board.program_slot(5, library.get("sobel")))

    def test_kernel_slot_resolution(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        run(env, board.program_slot(0, library.get("sobel")))
        run(env, board.program_slot(1, library.get("mm")))
        assert board.kernel_slot("sobel")[0] == 0
        assert board.kernel_slot("mm")[0] == 1
        with pytest.raises(KeyError):
            board.kernel_slot("conv")


class TestConcurrentExecution:
    def test_kernels_in_different_slots_overlap(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        run(env, board.program_slot(0, library.get("sobel")))
        run(env, board.program_slot(1, library.get("mm")))
        in_buf = board.allocate(1 << 20)
        out_buf = board.allocate(1 << 20)
        mm_bufs = [board.allocate(1 << 20) for _ in range(3)]
        n = 1024

        def sobel_flow():
            yield from board.execute("sobel", [in_buf, out_buf, 512, 512])

        def mm_flow():
            yield from board.execute("mm", [*mm_bufs, n, n, n])

        start = env.now
        env.process(sobel_flow())
        env.process(mm_flow())
        env.run()
        sobel_time = library.get("sobel").kernel("sobel").duration(
            {"width": 512, "height": 512}
        )
        mm_time = library.get("mm").kernel("mm").duration(
            {"m": n, "n": n, "k": n}
        )
        # Concurrent, not serialized.
        assert env.now - start == pytest.approx(max(sobel_time, mm_time),
                                                rel=0.01)

    def test_same_slot_kernels_serialize(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        run(env, board.program_slot(0, library.get("mm")))
        bufs = [board.allocate(64) for _ in range(3)]
        n = 512

        def flow():
            yield from board.execute("mm", [*bufs, n, n, n])

        start = env.now
        env.process(flow())
        env.process(flow())
        env.run()
        single = library.get("mm").kernel("mm").duration(
            {"m": n, "n": n, "k": n}
        )
        assert env.now - start == pytest.approx(2 * single, rel=0.01)

    def test_full_program_blocks_all_slots(self, env, library):
        board = FPGABoard(env, spec=multi_slot_spec(), functional=False)
        run(env, board.program_slot(1, library.get("mm")))
        bufs = [board.allocate(64) for _ in range(3)]
        finish = []

        def execute():
            yield from board.execute("mm", [*bufs, 64, 64, 64])
            finish.append(env.now)

        def reprogram():
            yield from board.program(library.get("sobel"))

        env.process(reprogram())

        def late_execute():
            # Enqueue the mm run after the reprogram started; it must fail
            # (the slot is wiped) or wait behind the full program.
            yield env.timeout(0.01)
            try:
                yield from board.execute("mm", [*bufs, 64, 64, 64])
                finish.append(env.now)
            except (KeyError, BoardError):
                finish.append(None)

        env.process(late_execute())
        env.run()
        # After the full reprogram, "mm" is gone: the late run either
        # failed or never ran before the wipe.
        assert finish == [None]

"""Fault injection: device failures must surface cleanly at every layer."""

import pytest

from repro.core.device_manager import DeviceManager
from repro.core.remote_lib import remote_platform
from repro.fpga import FPGABoard, KernelFault, standard_library
from repro.ocl import CLError, Context, native_platform
from repro.rpc import Network
from repro.sim import Environment


def every_nth(n):
    """Deterministic injector: fail every n-th kernel run (0-indexed)."""
    return lambda kernel_name, run_index: (run_index + 1) % n == 0


class TestBoardLevel:
    def test_injected_fault_raises_kernel_fault(self):
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, functional=False)
        board.fault_injector = lambda name, index: True
        env.run(until=env.process(board.program(library.get("sobel"))))
        bufs = [board.allocate(400) for _ in range(2)]

        def flow():
            yield from board.execute("sobel", [*bufs, 10, 10])

        with pytest.raises(KernelFault):
            env.run(until=env.process(flow()))

    def test_fault_still_counts_busy_time(self):
        """A hung/aborted kernel still occupied the device."""
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, functional=False)
        board.fault_injector = lambda name, index: True
        env.run(until=env.process(board.program(library.get("sobel"))))
        bufs = [board.allocate(400) for _ in range(2)]
        busy_before = board.busy_seconds

        def flow():
            try:
                yield from board.execute("sobel", [*bufs, 10, 10])
            except KernelFault:
                pass

        env.run(until=env.process(flow()))
        assert board.busy_seconds > busy_before

    def test_selective_injection(self):
        env = Environment()
        library = standard_library()
        board = FPGABoard(env, functional=False)
        board.fault_injector = every_nth(2)  # fail runs 1, 3, 5, ...
        env.run(until=env.process(board.program(library.get("sobel"))))
        bufs = [board.allocate(400) for _ in range(2)]
        outcomes = []

        def flow():
            for _ in range(4):
                try:
                    yield from board.execute("sobel", [*bufs, 10, 10])
                    outcomes.append("ok")
                except KernelFault:
                    outcomes.append("fault")

        env.run(until=env.process(flow()))
        assert outcomes == ["ok", "fault", "ok", "fault"]


class TestNativeRuntime:
    def test_fault_becomes_cl_error(self):
        env = Environment()
        board = FPGABoard(env, functional=False)
        board.fault_injector = lambda name, index: True
        platform = native_platform(env, board, standard_library())
        context = Context(platform.get_devices())
        queue = context.create_queue()

        def flow():
            program = context.create_program("sobel")
            yield from program.build()
            kernel = program.create_kernel("sobel")
            a = context.create_buffer(400)
            b = context.create_buffer(400)
            kernel.set_args(a, b, 10, 10)
            try:
                yield from queue.run_kernel(kernel)
            except CLError as exc:
                return exc
            return None

        error = env.run(until=env.process(flow()))
        assert error is not None
        assert "failed on board" in str(error)


class TestRemoteRuntime:
    def test_fault_notified_through_device_manager(self):
        env = Environment()
        network = Network(env)
        library = standard_library()
        node = network.host("B")
        board = FPGABoard(env, functional=False)
        board.fault_injector = every_nth(2)
        manager = DeviceManager(env, "dm-B", board, library, network, node)

        def flow():
            platform = yield from remote_platform(
                env, "fn", node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            program = context.create_program("sobel")
            yield from program.build()
            kernel = program.create_kernel("sobel")
            a = context.create_buffer(400)
            b = context.create_buffer(400)
            kernel.set_args(a, b, 10, 10)
            outcomes = []
            for _ in range(4):
                try:
                    yield from queue.run_kernel(kernel)
                    outcomes.append("ok")
                except CLError:
                    outcomes.append("fault")
            return outcomes

        outcomes = env.run(until=env.process(flow()))
        assert outcomes == ["ok", "fault", "ok", "fault"]
        # The session survived every fault.
        assert manager.connected_clients == 1

    def test_faults_do_not_poison_other_tenants(self):
        """Tenant A's faults never affect tenant B's results."""
        env = Environment()
        network = Network(env)
        library = standard_library()
        node = network.host("B")
        board = FPGABoard(env, functional=False)
        # Fault only runs whose index is even — affects both tenants'
        # interleaved runs, but each failure is isolated to its op.
        board.fault_injector = every_nth(3)
        manager = DeviceManager(env, "dm-B", board, library, network, node)
        results = {}

        def client(name, count):
            platform = yield from remote_platform(
                env, name, node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            program = context.create_program("sobel")
            yield from program.build()
            kernel = program.create_kernel("sobel")
            a = context.create_buffer(400)
            b = context.create_buffer(400)
            kernel.set_args(a, b, 10, 10)
            ok = 0
            for _ in range(count):
                try:
                    yield from queue.run_kernel(kernel)
                    ok += 1
                except CLError:
                    pass
            results[name] = ok

        def main():
            first = env.process(client("fn-a", 6))
            second = env.process(client("fn-b", 6))
            yield first & second

        env.run(until=env.process(main()))
        # 12 runs total, every 3rd faulted → 8 successes split between them.
        assert results["fn-a"] + results["fn-b"] == 8


class TestServerlessResilience:
    def test_function_keeps_serving_under_faults(self):
        from repro.cluster import DeviceQuery, build_testbed
        from repro.core.registry import AcceleratorsRegistry
        from repro.core.remote_lib import ManagerAddress, PlatformRouter
        from repro.loadgen import run_load
        from repro.serverless import (
            FunctionController,
            FunctionSpec,
            Gateway,
            SobelApp,
        )

        env = Environment()
        testbed = build_testbed(env, functional=False)
        registry = AcceleratorsRegistry(
            env, testbed.cluster, list(testbed.managers.values()),
            scraper=testbed.scraper,
        )
        router = PlatformRouter(env, testbed.network, testbed.library)
        router.add_managers(
            [ManagerAddress.of(m) for m in testbed.managers.values()]
        )
        gateway = Gateway(env, testbed.cluster)
        controller = FunctionController(env, testbed.cluster, gateway,
                                        router)
        for node in testbed.cluster.nodes.values():
            node.board.fault_injector = every_nth(5)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="sobel-1",
                app_factory=lambda: SobelApp(),
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready("sobel-1")
            stats = yield from run_load(
                env, gateway, "sobel-1", rate=20.0, duration=5.0,
            )
            return stats

        stats = env.run(until=env.process(flow()))
        # ~1/5 of requests fail; the rest are served, none hang.
        assert stats.errors > 0
        assert stats.completed > 0
        assert stats.completed + stats.errors == pytest.approx(
            stats.sent, abs=2
        )
        assert 0.1 < stats.errors / (stats.errors + stats.completed) < 0.3
"""Unit tests for the FPGA board model (programming, DMA, execution)."""

import numpy as np
import pytest

from repro.fpga import (
    BoardError,
    FPGABoard,
    PCIE_GEN2_X8,
    PCIE_GEN3_X8,
    standard_library,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def library():
    return standard_library()


def make_board(env, **kwargs) -> FPGABoard:
    return FPGABoard(env, name="fpga-test", **kwargs)


def run(env, generator):
    """Run a generator process to completion and return its value."""
    return env.run(until=env.process(generator))


class TestProgramming:
    def test_program_takes_reconfiguration_time(self, env, library):
        board = make_board(env)
        run(env, board.program(library.get("sobel")))
        assert env.now == pytest.approx(board.spec.reconfiguration_time)
        assert board.programmed
        assert board.bitstream.name == "sobel"
        assert board.reconfigurations == 1

    def test_program_wipes_device_memory(self, env, library):
        board = make_board(env)
        run(env, board.program(library.get("sobel")))
        board.allocate(1024)
        assert board.memory.used == 1024
        run(env, board.program(library.get("mm")))
        assert board.memory.used == 0

    def test_program_blocks_kernel_execution(self, env, library):
        board = make_board(env, functional=False)
        run(env, board.program(library.get("mm")))
        a = board.allocate(64)
        b = board.allocate(64)
        c = board.allocate(64)
        finish_times = []

        def execute(env):
            yield from board.execute("mm", [a, b, c, 4, 4, 4])
            finish_times.append(env.now)

        def reprogram(env):
            yield from board.program(library.get("mm"))

        start = env.now
        env.process(reprogram(env))
        env.process(execute(env))
        env.run()
        # Execution had to wait for the 2.5 s reprogram.
        assert finish_times[0] >= start + board.spec.reconfiguration_time

    def test_unprogrammed_board_rejects_execution(self, env):
        board = make_board(env)
        with pytest.raises(BoardError):
            run(env, board.execute("sobel", []))

    def test_unknown_kernel_rejected(self, env, library):
        board = make_board(env)
        run(env, board.program(library.get("sobel")))
        with pytest.raises(KeyError):
            board.kernel("mm")


class TestDMA:
    def test_write_read_roundtrip_preserves_data(self, env, library):
        board = make_board(env)
        buffer = board.allocate(16)
        payload = b"0123456789abcdef"

        def flow(env):
            yield from board.dma_write(buffer, 16, payload)
            data = yield from board.dma_read(buffer, 16)
            return data

        assert run(env, flow(env)) == payload

    def test_transfer_time_matches_link_model(self, env):
        board = make_board(env, pcie=PCIE_GEN3_X8, functional=False)
        buffer = board.allocate(68_000_000)

        def flow(env):
            yield from board.dma_write(buffer, 68_000_000)

        run(env, flow(env))
        expected = PCIE_GEN3_X8.latency + 68_000_000 / PCIE_GEN3_X8.bandwidth
        assert env.now == pytest.approx(expected)

    def test_gen2_slower_than_gen3(self, env):
        env2 = Environment()
        board3 = make_board(env, pcie=PCIE_GEN3_X8, functional=False)
        board2 = FPGABoard(env2, pcie=PCIE_GEN2_X8, functional=False)
        nbytes = 10_000_000
        b3 = board3.allocate(nbytes)
        b2 = board2.allocate(nbytes)

        def flow(board, buffer):
            yield from board.dma_write(buffer, nbytes)

        run(env, flow(board3, b3))
        env2.run(until=env2.process(flow(board2, b2)))
        assert env2.now > env.now

    def test_out_of_range_write_rejected(self, env):
        board = make_board(env)
        buffer = board.allocate(10)
        with pytest.raises(ValueError):
            run(env, board.dma_write(buffer, 11))

    def test_concurrent_transfers_serialize_on_link(self, env):
        board = make_board(env, functional=False)
        b1 = board.allocate(68_000_000)
        b2 = board.allocate(68_000_000)

        def flow(buffer):
            yield from board.dma_write(buffer, 68_000_000)

        env.process(flow(b1))
        env.process(flow(b2))
        env.run()
        single = PCIE_GEN3_X8.transfer_time(68_000_000)
        assert env.now == pytest.approx(2 * single)


class TestExecution:
    def test_sobel_functional_result(self, env, library):
        board = make_board(env, functional=True)
        run(env, board.program(library.get("sobel")))
        width = height = 8
        image = np.random.default_rng(0).integers(
            0, 255, size=(height, width), dtype=np.uint32
        )
        in_buf = board.allocate(image.nbytes)
        out_buf = board.allocate(image.nbytes)

        def flow(env):
            yield from board.dma_write(in_buf, image.nbytes, image.tobytes())
            yield from board.execute(
                "sobel", [in_buf, out_buf, width, height]
            )
            data = yield from board.dma_read(out_buf, image.nbytes)
            return np.frombuffer(data, dtype=np.uint32).reshape(height, width)

        result = run(env, flow(env))
        from repro.kernels import sobel_reference

        np.testing.assert_array_equal(result, sobel_reference(image))

    def test_mm_functional_result(self, env, library):
        board = make_board(env, functional=True)
        run(env, board.program(library.get("mm")))
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 8), dtype=np.float32)
        b = rng.standard_normal((8, 8), dtype=np.float32)
        a_buf = board.allocate(a.nbytes)
        b_buf = board.allocate(b.nbytes)
        c_buf = board.allocate(a.nbytes)

        def flow(env):
            yield from board.dma_write(a_buf, a.nbytes, a.tobytes())
            yield from board.dma_write(b_buf, b.nbytes, b.tobytes())
            yield from board.execute("mm", [a_buf, b_buf, c_buf, 8, 8, 8])
            data = yield from board.dma_read(c_buf, a.nbytes)
            return np.frombuffer(data, dtype=np.float32).reshape(8, 8)

        result = run(env, flow(env))
        np.testing.assert_allclose(result, a @ b, rtol=1e-5)

    def test_execution_is_exclusive(self, env, library):
        board = make_board(env, functional=False)
        run(env, board.program(library.get("mm")))
        bufs = [board.allocate(64) for _ in range(3)]
        n = 512
        completions = []

        def flow(env):
            yield from board.execute("mm", [*bufs, n, n, n])
            completions.append(env.now)

        start = env.now
        env.process(flow(env))
        env.process(flow(env))
        env.run()
        kernel = library.get("mm").kernel("mm")
        single = kernel.duration({"m": n, "n": n, "k": n})
        assert completions[0] == pytest.approx(start + single)
        assert completions[1] == pytest.approx(start + 2 * single)

    def test_bad_arguments_rejected(self, env, library):
        from repro.kernels import KernelArgumentError

        board = make_board(env)
        run(env, board.program(library.get("mm")))
        with pytest.raises(KernelArgumentError):
            run(env, board.execute("mm", [1, 2, 3]))

    def test_busy_accounting(self, env, library):
        board = make_board(env, functional=False)
        events = []
        board.add_busy_listener(lambda dt, kind: events.append((kind, dt)))
        run(env, board.program(library.get("sobel")))
        in_buf = board.allocate(400)
        out_buf = board.allocate(400)

        def flow(env):
            yield from board.dma_write(in_buf, 400)
            yield from board.execute("sobel", [in_buf, out_buf, 10, 10])
            yield from board.dma_read(out_buf, 400)

        run(env, flow(env))
        kinds = [kind for kind, _ in events]
        assert kinds == ["reconfigure", "dma", "kernel", "dma"]
        assert board.busy_seconds == pytest.approx(
            sum(dt for _, dt in events)
        )
        assert board.kernel_runs == 1

"""Unit and property tests for the device memory allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import MemoryAllocator, OutOfMemoryError


class TestAllocation:
    def test_allocate_tracks_usage(self):
        allocator = MemoryAllocator(1000)
        buffer = allocator.allocate(300)
        assert allocator.used == 300
        assert allocator.free == 700
        assert buffer.size == 300

    def test_out_of_memory_raises(self):
        allocator = MemoryAllocator(100)
        allocator.allocate(80)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(30)

    def test_release_returns_memory(self):
        allocator = MemoryAllocator(100)
        buffer = allocator.allocate(80)
        allocator.release(buffer)
        assert allocator.used == 0
        allocator.allocate(100)  # must fit again

    def test_release_unknown_id_raises(self):
        allocator = MemoryAllocator(100)
        with pytest.raises(KeyError):
            allocator.release(42)

    def test_release_all(self):
        allocator = MemoryAllocator(100)
        buffers = [allocator.allocate(10) for _ in range(5)]
        assert allocator.release_all() == 5
        assert allocator.used == 0
        for buffer in buffers:
            assert buffer.freed

    def test_zero_size_rejected(self):
        allocator = MemoryAllocator(100)
        with pytest.raises(ValueError):
            allocator.allocate(0)

    def test_get_by_id(self):
        allocator = MemoryAllocator(100)
        buffer = allocator.allocate(10)
        assert allocator.get(buffer.id) is buffer

    def test_buffers_do_not_overlap(self):
        allocator = MemoryAllocator(1000)
        buffers = [allocator.allocate(100) for _ in range(10)]
        ranges = sorted((b.offset, b.offset + b.size) for b in buffers)
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start

    def test_hole_reuse_after_free(self):
        allocator = MemoryAllocator(300)
        first = allocator.allocate(100)
        allocator.allocate(100)
        allocator.release(first)
        reused = allocator.allocate(100)
        assert reused.offset == 0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=64),
                       min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_invariants(self, sizes):
        allocator = MemoryAllocator(4096)
        live = []
        for index, size in enumerate(sizes):
            buffer = allocator.allocate(size)
            live.append(buffer)
            if index % 3 == 2:
                allocator.release(live.pop(0))
        assert allocator.used == sum(b.size for b in live)
        spans = sorted((b.offset, b.offset + b.size) for b in live)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start


class TestDeviceBuffer:
    def test_write_then_read_roundtrip(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(16)
        buffer.write(b"hello world!!")
        assert buffer.read(13) == b"hello world!!"

    def test_write_numpy_array(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(16)
        data = np.arange(4, dtype=np.float32)
        buffer.write(data)
        out = np.frombuffer(buffer.read(16), dtype=np.float32)
        np.testing.assert_array_equal(out, data)

    def test_offset_access(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(10)
        buffer.write(b"abc", offset=4)
        assert buffer.read(3, offset=4) == b"abc"

    def test_out_of_bounds_rejected(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(10)
        with pytest.raises(ValueError):
            buffer.write(b"x" * 11)
        with pytest.raises(ValueError):
            buffer.read(5, offset=8)

    def test_freed_buffer_rejected(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(10)
        allocator.release(buffer)
        with pytest.raises(RuntimeError):
            buffer.read(1)

    def test_as_array_view_is_writable(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(16)
        view = buffer.as_array(np.float32, (4,))
        view[:] = [1, 2, 3, 4]
        out = np.frombuffer(buffer.read(16), dtype=np.float32)
        np.testing.assert_array_equal(out, [1, 2, 3, 4])

    def test_timing_only_mode_has_no_data(self):
        allocator = MemoryAllocator(100, functional=False)
        buffer = allocator.allocate(10)
        buffer.write(b"ignored")            # accepted, dropped
        assert buffer.read(4) == bytes(4)   # zeros
        with pytest.raises(RuntimeError):
            _ = buffer.data

"""Unit and property tests for the device memory allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import MemoryAllocator, OutOfMemoryError
from repro.fpga.ddr import is_zero_view, materialize, zero_view


class TestAllocation:
    def test_allocate_tracks_usage(self):
        allocator = MemoryAllocator(1000)
        buffer = allocator.allocate(300)
        assert allocator.used == 300
        assert allocator.free == 700
        assert buffer.size == 300

    def test_out_of_memory_raises(self):
        allocator = MemoryAllocator(100)
        allocator.allocate(80)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(30)

    def test_release_returns_memory(self):
        allocator = MemoryAllocator(100)
        buffer = allocator.allocate(80)
        allocator.release(buffer)
        assert allocator.used == 0
        allocator.allocate(100)  # must fit again

    def test_release_unknown_id_raises(self):
        allocator = MemoryAllocator(100)
        with pytest.raises(KeyError):
            allocator.release(42)

    def test_release_all(self):
        allocator = MemoryAllocator(100)
        buffers = [allocator.allocate(10) for _ in range(5)]
        assert allocator.release_all() == 5
        assert allocator.used == 0
        for buffer in buffers:
            assert buffer.freed

    def test_zero_size_rejected(self):
        allocator = MemoryAllocator(100)
        with pytest.raises(ValueError):
            allocator.allocate(0)

    def test_get_by_id(self):
        allocator = MemoryAllocator(100)
        buffer = allocator.allocate(10)
        assert allocator.get(buffer.id) is buffer

    def test_buffers_do_not_overlap(self):
        allocator = MemoryAllocator(1000)
        buffers = [allocator.allocate(100) for _ in range(10)]
        ranges = sorted((b.offset, b.offset + b.size) for b in buffers)
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start

    def test_hole_reuse_after_free(self):
        allocator = MemoryAllocator(300)
        first = allocator.allocate(100)
        allocator.allocate(100)
        allocator.release(first)
        reused = allocator.allocate(100)
        assert reused.offset == 0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=64),
                       min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_invariants(self, sizes):
        allocator = MemoryAllocator(4096)
        live = []
        for index, size in enumerate(sizes):
            buffer = allocator.allocate(size)
            live.append(buffer)
            if index % 3 == 2:
                allocator.release(live.pop(0))
        assert allocator.used == sum(b.size for b in live)
        spans = sorted((b.offset, b.offset + b.size) for b in live)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start


class TestDeviceBuffer:
    def test_write_then_read_roundtrip(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(16)
        buffer.write(b"hello world!!")
        assert buffer.read(13) == b"hello world!!"

    def test_write_numpy_array(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(16)
        data = np.arange(4, dtype=np.float32)
        buffer.write(data)
        out = np.frombuffer(buffer.read(16), dtype=np.float32)
        np.testing.assert_array_equal(out, data)

    def test_offset_access(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(10)
        buffer.write(b"abc", offset=4)
        assert buffer.read(3, offset=4) == b"abc"

    def test_out_of_bounds_rejected(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(10)
        with pytest.raises(ValueError):
            buffer.write(b"x" * 11)
        with pytest.raises(ValueError):
            buffer.read(5, offset=8)

    def test_freed_buffer_rejected(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(10)
        allocator.release(buffer)
        with pytest.raises(RuntimeError):
            buffer.read(1)

    def test_as_array_view_is_writable(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(16)
        view = buffer.as_array(np.float32, (4,))
        view[:] = [1, 2, 3, 4]
        out = np.frombuffer(buffer.read(16), dtype=np.float32)
        np.testing.assert_array_equal(out, [1, 2, 3, 4])

    def test_timing_only_mode_has_no_data(self):
        allocator = MemoryAllocator(100, functional=False)
        buffer = allocator.allocate(10)
        buffer.write(b"ignored")            # accepted, dropped
        assert buffer.read(4) == bytes(4)   # zeros
        with pytest.raises(RuntimeError):
            _ = buffer.data


class TestZeroCopyViews:
    """The zero-copy contract: reads are views, copies are explicit."""

    def test_read_returns_memoryview(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(8)
        assert isinstance(buffer.read(), memoryview)

    def test_read_view_is_live(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(4)
        view = buffer.read(4)
        buffer.write(b"abcd")
        assert bytes(view) == b"abcd"

    def test_materialize_snapshots_live_views(self):
        allocator = MemoryAllocator(100, functional=True)
        buffer = allocator.allocate(4)
        buffer.write(b"abcd")
        snapshot = materialize(buffer.read(4))
        buffer.write(b"wxyz")
        assert snapshot == b"abcd"

    def test_materialize_passes_through_bytes_none_and_zero_pages(self):
        blob = b"payload"
        assert materialize(blob) is blob
        assert materialize(None) is None
        view = zero_view(32)
        assert materialize(view) is view

    def test_zero_view_identity_survives_growth(self):
        small = zero_view(8)
        big = zero_view(64 << 20)  # force the page to grow past 64 KiB
        assert is_zero_view(small)
        assert is_zero_view(big)
        assert big.nbytes == 64 << 20
        assert not is_zero_view(memoryview(b"\0" * 8))

    def test_timing_only_reads_share_the_zero_page(self):
        allocator = MemoryAllocator(100, functional=False)
        buffer = allocator.allocate(10)
        assert is_zero_view(buffer.read(10))

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["write", "read"]),
                st.integers(min_value=0, max_value=31),   # offset
                st.integers(min_value=0, max_value=32),   # length
                st.binary(min_size=0, max_size=32),       # payload source
            ),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_view_semantics_match_bytes_model(self, ops):
        """Property: the view-based buffer behaves exactly like the old
        bytes-based implementation, modelled here by a plain bytearray."""
        size = 32
        allocator = MemoryAllocator(1024, functional=True)
        buffer = allocator.allocate(size)
        model = bytearray(size)
        for kind, offset, length, payload in ops:
            if kind == "write":
                data = payload[:max(0, size - offset)]
                buffer.write(data, offset)
                model[offset:offset + len(data)] = data
            else:
                length = min(length, size - offset)
                got = materialize(buffer.read(length, offset))
                assert got == bytes(model[offset:offset + length])
        assert materialize(buffer.read()) == bytes(model)

    @given(data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_write_accepts_any_bytes_like(self, data):
        allocator = MemoryAllocator(1024, functional=True)
        for payload in (data, bytearray(data), memoryview(data),
                        np.frombuffer(data, dtype=np.uint8)):
            buffer = allocator.allocate(len(data))
            buffer.write(payload)
            assert materialize(buffer.read()) == data

"""Edge cases of the function-instance runtime and registry validation."""

import pytest

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.serverless import (
    FunctionController,
    FunctionSpec,
    Gateway,
    InstanceStartupError,
    MMApp,
    SobelApp,
)
from repro.sim import Environment


def make_stack(env, with_router=True):
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = None
    if with_router:
        router = PlatformRouter(env, testbed.network, testbed.library)
        router.add_managers(
            [ManagerAddress.of(m) for m in testbed.managers.values()]
        )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    if router is not None:
        registry.migrator = controller.migrate
    return testbed, registry, gateway, controller


class TestInstanceStartup:
    def test_blastfunction_without_router_fails_cleanly(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(
            env, with_router=False
        )

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="fn",
                app_factory=lambda: SobelApp(width=64, height=64),
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready("fn")

        with pytest.raises(InstanceStartupError, match="router"):
            env.run(until=env.process(flow()))

    def test_unknown_runtime_rejected(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="fn",
                app_factory=lambda: SobelApp(width=64, height=64),
                device_query=DeviceQuery(accelerator="sobel"),
                runtime="quantum",
            ))
            yield from controller.wait_ready("fn")

        with pytest.raises(InstanceStartupError, match="unknown runtime"):
            env.run(until=env.process(flow()))


class TestReconfigurationValidation:
    def test_foreign_binary_denied(self):
        """A function asking for a bitstream other than its declared
        accelerator is refused by the Registry's validator."""
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        class SneakyApp(SobelApp):
            def setup(self, env, platform, node):
                from repro.ocl import Context

                context = Context(platform.get_devices())
                # Declared accelerator is sobel; tries to program mm.
                program = context.create_program("mm")
                yield from program.build()

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="sneaky",
                app_factory=SneakyApp,
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready("sneaky")

        from repro.ocl import CLError

        with pytest.raises(CLError, match="denied by registry"):
            env.run(until=env.process(flow()))

    def test_unallocated_client_denied(self):
        """A client the Registry never placed cannot reconfigure a board."""
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)
        manager = testbed.managers["dm-A"]
        assert manager.reconfiguration_validator("rogue-client", "mm") \
            is False


class TestWatchBookkeeping:
    def test_deleting_pod_clears_device_instance(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="fn",
                app_factory=lambda: MMApp(n=64),
                device_query=DeviceQuery(accelerator="mm"),
            ))
            yield from controller.wait_ready("fn")

        env.run(until=env.process(flow()))
        record = next(d for d in registry.devices.all() if d.instances)
        assert "fn-i1" in record.instances
        testbed.cluster.delete_pod("fn-i1")
        assert "fn-i1" not in record.instances
        assert registry.functions.instance("fn-i1") is None

"""Gateway resilience policy: retries, circuit breaker, shedding, self-heal."""

import pytest

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.faults import GatewayPolicy
from repro.serverless import (
    CircuitBreaker,
    FunctionController,
    Gateway,
    InvocationError,
    SobelApp,
)
from repro.serverless.gateway import DeployedFunction, FunctionSpec
from repro.sim import Environment, run_guarded


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=2.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert not breaker.is_open(0.2)
        breaker.record_failure(0.2)
        assert breaker.is_open(0.3)
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=2.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.1)
        assert not breaker.is_open(0.2)

    def test_half_opens_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2.0)
        breaker.record_failure(0.0)
        assert breaker.is_open(1.9)
        assert not breaker.is_open(2.1)  # half-open: traffic admitted
        breaker.record_failure(2.2)      # probe failed: trips again
        assert breaker.is_open(2.3)
        assert breaker.trips == 2


def _gateway(env, policy):
    """A gateway with one function wired straight into its endpoint queue.

    ``invoke`` never touches the cluster: requests flow through
    ``function.request_queue``, which is all the resilience path needs.
    """
    gateway = Gateway(env, cluster=None, policy=policy)
    spec = FunctionSpec(name="f", app_factory=lambda: None)
    function = DeployedFunction(env, spec)
    function.pod_names.append("f-i1")  # pretend one instance is live
    gateway.functions["f"] = function
    return gateway, function


def _serve(env, function, outcomes, service_time=0.01):
    """Fake instance: answer queued requests with scripted outcomes."""

    def worker():
        for outcome in outcomes:
            request = yield function.request_queue.get()
            yield env.timeout(service_time)
            if isinstance(outcome, Exception):
                request.response.fail(outcome)
                request.response.defused = True
            else:
                request.response.succeed(outcome)

    env.process(worker())


class TestResilientInvoke:
    def test_retry_then_succeed(self):
        env = Environment()
        gateway, function = _gateway(env, GatewayPolicy(retry_budget=2))
        _serve(env, function,
               [InvocationError("cold"), InvocationError("cold"), "warm"])
        latency, result = env.run(until=env.process(gateway.invoke("f")))
        assert result == "warm"
        assert function.retries == 2
        assert function.failures == 2
        assert function.invocations == 3
        # The two backoffs (0.05 then 0.10) are part of the latency.
        assert latency > 0.15

    def test_budget_exhaustion_raises_last_error(self):
        env = Environment()
        gateway, function = _gateway(env, GatewayPolicy(retry_budget=1))
        _serve(env, function,
               [InvocationError("first"), InvocationError("second")])

        def run():
            try:
                yield from gateway.invoke("f")
            except InvocationError as exc:
                return str(exc)
            return None

        assert env.run(until=env.process(run())) == "second"
        assert function.retries == 1

    def test_attempt_timeout_retries_on_a_silent_backend(self):
        env = Environment()
        policy = GatewayPolicy(retry_budget=1, request_timeout=0.2)
        gateway, function = _gateway(env, policy)

        # First request is swallowed unanswered; answer only the retry.
        def ignore_one():
            yield function.request_queue.get()

        env.process(ignore_one())
        _serve(env, function, ["late-but-fine"])
        latency, result = env.run(until=env.process(gateway.invoke("f")))
        assert result == "late-but-fine"
        assert function.retries == 1
        assert latency >= 0.2  # paid the first attempt's full deadline

    def test_breaker_sheds_while_open_then_recovers(self):
        env = Environment()
        policy = GatewayPolicy(retry_budget=0, breaker_threshold=2,
                               breaker_cooldown=1.0)
        gateway, function = _gateway(env, policy)
        _serve(env, function,
               [InvocationError("down"), InvocationError("down"), "back"])

        def run():
            outcomes = []
            for _ in range(2):  # trip the breaker
                try:
                    yield from gateway.invoke("f")
                except InvocationError as exc:
                    outcomes.append(str(exc))
            try:  # rejected instantly: breaker open
                yield from gateway.invoke("f")
            except InvocationError as exc:
                outcomes.append(str(exc))
            yield env.timeout(1.5)  # past the cooldown: half-open probe
            _, result = yield from gateway.invoke("f")
            outcomes.append(result)
            return outcomes

        outcomes = env.run(until=env.process(run()))
        assert outcomes[:2] == ["down", "down"]
        assert "circuit breaker open" in outcomes[2]
        assert outcomes[3] == "back"
        assert function.shed == 1
        assert function.breaker.trips == 1

    def test_shed_when_unavailable(self):
        env = Environment()
        policy = GatewayPolicy(shed_when_unavailable=True)
        gateway, function = _gateway(env, policy)
        function.pod_names.clear()  # every instance is gone

        def run():
            with pytest.raises(InvocationError, match="no live instance"):
                yield from gateway.invoke("f")

        env.run(until=env.process(run()))
        assert function.shed == 1
        assert function.invocations == 0  # nothing was queued

    def test_queue_rides_out_an_outage_by_default(self):
        # shed_when_unavailable=False: the endpoint queue outlives the
        # instances, so a request queued during the outage completes once
        # capacity returns.
        env = Environment()
        gateway, function = _gateway(env, GatewayPolicy())
        function.pod_names.clear()

        def revive():
            yield env.timeout(0.5)
            function.pod_names.append("f-i2")
            _serve(env, function, ["recovered"])

        env.process(revive())
        latency, result = env.run(until=env.process(gateway.invoke("f")))
        assert result == "recovered"
        assert latency >= 0.5

    def test_policy_none_keeps_the_seed_fast_path(self):
        env = Environment()
        gateway, function = _gateway(env, None)
        assert gateway.policy is None
        _serve(env, function, ["plain"])
        latency, result = env.run(until=env.process(gateway.invoke("f")))
        assert result == "plain"
        assert function.breaker is None  # resilience machinery never armed
        assert function.retries == 0


# ---------------------------------------------------------------------------
# Full stack: controller self-heal and in-flight failure on instance death
# ---------------------------------------------------------------------------

def _full_stack(env, policy=None, self_heal=True):
    testbed = build_testbed(env, functional=False, scrape_interval=1.0)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster, policy=policy)
    controller = FunctionController(env, testbed.cluster, gateway, router,
                                    self_heal=self_heal)
    registry.migrator = controller.migrate
    return testbed, registry, gateway, controller


def _deploy_sobel(env, gateway, controller, name="sobel-1"):
    def flow():
        spec = FunctionSpec(
            name=name,
            app_factory=lambda: SobelApp(width=64, height=64),
            device_query=DeviceQuery(accelerator="sobel"),
        )
        yield from gateway.deploy(spec)
        yield from controller.wait_ready(name)

    run_guarded(env, until=env.process(flow()), what=f"deploy {name}")


class TestSelfHeal:
    def test_deleted_pod_is_respawned(self):
        env = Environment()
        testbed, registry, gateway, controller = _full_stack(env)
        _deploy_sobel(env, gateway, controller)
        function = gateway.function("sobel-1")
        victim = function.pod_names[0]

        testbed.cluster.delete_pod(victim)
        run_guarded(env, until=env.process(
            controller.wait_ready("sobel-1")), what="self-heal")

        assert controller.heals == 1
        assert victim not in function.pod_names
        replacement = function.pod_names[0]
        assert replacement != victim
        pod = testbed.cluster.pods[replacement]
        assert pod.spec.labels.get("healed") == "true"
        latency, result = run_guarded(
            env, until=env.process(gateway.invoke("sobel-1")),
            what="invoke after heal")
        assert result["bytes"] == 64 * 64 * 4

    def test_self_heal_off_leaves_function_down(self):
        env = Environment()
        testbed, registry, gateway, controller = _full_stack(
            env, self_heal=False)
        _deploy_sobel(env, gateway, controller)
        function = gateway.function("sobel-1")
        testbed.cluster.delete_pod(function.pod_names[0])
        env.run(until=env.now + 2.0)
        assert controller.heals == 0
        assert function.pod_names == []


class TestInstanceDeathMidRequest:
    def test_inflight_request_fails_instead_of_hanging(self):
        env = Environment()
        testbed, registry, gateway, controller = _full_stack(
            env, self_heal=False)
        _deploy_sobel(env, gateway, controller)
        function = gateway.function("sobel-1")
        victim = function.pod_names[0]

        def killer():
            # Strike while the instance is mid-handle.
            yield env.timeout(0.002)
            testbed.cluster.delete_pod(victim)

        def caller():
            try:
                yield from gateway.invoke("sobel-1")
            except InvocationError as exc:
                return str(exc)
            return None

        env.process(killer())
        outcome = run_guarded(env, until=env.process(caller()),
                              what="invoke during pod kill")
        assert outcome is not None
        assert "terminated mid-request" in outcome

    def test_retry_plus_heal_masks_the_death(self):
        env = Environment()
        policy = GatewayPolicy(retry_budget=2, retry_backoff=0.2)
        testbed, registry, gateway, controller = _full_stack(
            env, policy=policy, self_heal=True)
        _deploy_sobel(env, gateway, controller)
        function = gateway.function("sobel-1")
        victim = function.pod_names[0]

        def killer():
            yield env.timeout(0.002)
            testbed.cluster.delete_pod(victim)

        env.process(killer())
        latency, result = run_guarded(
            env, until=env.process(gateway.invoke("sobel-1")),
            what="invoke riding out pod kill")
        assert result["bytes"] == 64 * 64 * 4
        assert function.retries >= 1
        assert controller.heals == 1

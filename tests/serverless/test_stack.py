"""End-to-end serverless tests: gateway → function → BlastFunction/native.

These wire the whole system together the way the paper's evaluation does:
testbed + Accelerators Registry + gateway + controller + load generator.
"""

import math

import pytest

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import MANAGER_ENV, AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.loadgen import LoadStats, percentile, run_load
from repro.serverless import (
    FunctionController,
    FunctionSpec,
    Gateway,
    MMApp,
    SobelApp,
)
from repro.sim import Environment


def make_stack(env, functional=False):
    """Testbed + registry + gateway + controller, ready for deployments."""
    testbed = build_testbed(env, functional=functional, scrape_interval=1.0)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate
    return testbed, registry, gateway, controller


def run(env, generator):
    return env.run(until=env.process(generator))


class TestDeployment:
    def test_blastfunction_deploy_and_invoke(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow(env):
            spec = FunctionSpec(
                name="sobel-1",
                app_factory=lambda: SobelApp(width=640, height=480),
                device_query=DeviceQuery(accelerator="sobel"),
            )
            yield from gateway.deploy(spec)
            yield from controller.wait_ready("sobel-1")
            latency, result = yield from gateway.invoke("sobel-1")
            return latency, result

        latency, result = run(env, flow(env))
        assert result["bytes"] == 640 * 480 * 4
        assert 1e-3 < latency < 0.1
        assert registry.allocations == 1

    def test_registry_patches_pod_with_manager_address(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow(env):
            spec = FunctionSpec(
                name="sobel-1",
                app_factory=lambda: SobelApp(width=64, height=64),
                device_query=DeviceQuery(accelerator="sobel"),
            )
            yield from gateway.deploy(spec)
            yield from controller.wait_ready("sobel-1")

        run(env, flow(env))
        pod = testbed.cluster.pods["sobel-1-i1"]
        manager_name = pod.spec.env[MANAGER_ENV]
        assert manager_name in testbed.managers
        # The pod was forced onto the manager's node (shared memory).
        assert pod.node.name == testbed.managers[manager_name].node.name
        assert pod.spec.shm_volume

    def test_five_functions_spread_over_three_devices(self):
        """The paper deploys 5 identical functions on 3 boards."""
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow(env):
            for index in range(1, 6):
                spec = FunctionSpec(
                    name=f"sobel-{index}",
                    app_factory=lambda: SobelApp(width=64, height=64),
                    device_query=DeviceQuery(accelerator="sobel"),
                )
                yield from gateway.deploy(spec)
            for index in range(1, 6):
                yield from controller.wait_ready(f"sobel-{index}")

        run(env, flow(env))
        per_device = {
            name: len(record.instances)
            for name, record in (
                (d.name, d) for d in registry.devices.all()
            )
        }
        assert sum(per_device.values()) == 5
        assert max(per_device.values()) == 2
        assert min(per_device.values()) == 1

    def test_native_function_pinned_to_node(self):
        env = Environment()
        testbed = build_testbed(env, functional=False)
        gateway = Gateway(env, testbed.cluster)
        controller = FunctionController(env, testbed.cluster, gateway,
                                        router=None)

        def flow(env):
            spec = FunctionSpec(
                name="sobel-native",
                app_factory=lambda: SobelApp(width=640, height=480),
                runtime="native",
                node_name="B",
            )
            yield from gateway.deploy(spec)
            yield from controller.wait_ready("sobel-native")
            latency, _ = yield from gateway.invoke("sobel-native")
            return latency

        latency = run(env, flow(env))
        assert latency < 0.1
        board = testbed.cluster.node("B").board
        assert board.bitstream.name == "sobel"
        assert board.kernel_runs == 1

    def test_reconfiguration_validator_allows_own_function(self):
        """A BF function whose device needs programming gets it approved."""
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow(env):
            spec = FunctionSpec(
                name="mm-1",
                app_factory=lambda: MMApp(n=64),
                device_query=DeviceQuery(accelerator="mm"),
            )
            yield from gateway.deploy(spec)
            yield from controller.wait_ready("mm-1")
            latency, _ = yield from gateway.invoke("mm-1")
            return latency

        run(env, flow(env))
        programmed = [
            b.bitstream.name for b in testbed.boards() if b.bitstream
        ]
        assert programmed.count("mm") == 1


class TestLoadGenerator:
    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 100) == 100.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_load_meets_target_when_capacity_allows(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow(env):
            spec = FunctionSpec(
                name="sobel-1",
                app_factory=lambda: SobelApp(width=320, height=240),
                device_query=DeviceQuery(accelerator="sobel"),
            )
            yield from gateway.deploy(spec)
            yield from controller.wait_ready("sobel-1")
            stats = yield from run_load(
                env, gateway, "sobel-1", rate=10.0, duration=10.0,
                warmup=1.0,
            )
            return stats

        stats = run(env, flow(env))
        assert stats.achieved_rate == pytest.approx(10.0, rel=0.05)
        assert stats.target_gap < 0.05
        assert stats.mean_latency < 0.02

    def test_closed_loop_caps_at_one_over_latency(self):
        """Above saturation, 1 connection processes ~1/latency rq/s."""
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow(env):
            spec = FunctionSpec(
                name="sobel-1",
                app_factory=lambda: SobelApp(width=1920, height=1080),
                device_query=DeviceQuery(accelerator="sobel"),
            )
            yield from gateway.deploy(spec)
            yield from controller.wait_ready("sobel-1")
            stats = yield from run_load(
                env, gateway, "sobel-1", rate=200.0, duration=10.0,
                warmup=1.0,
            )
            return stats

        stats = run(env, flow(env))
        assert stats.achieved_rate < 200.0
        cap = 1.0 / stats.mean_latency
        assert stats.achieved_rate == pytest.approx(cap, rel=0.1)
        assert stats.target_gap > 0.5

    def test_stats_merge(self):
        a = LoadStats("f", 10.0, 5.0, sent=50, completed=50,
                      latencies=[0.01] * 50)
        b = LoadStats("f", 20.0, 5.0, sent=80, completed=70,
                      latencies=[0.02] * 70)
        a.merge(b)
        assert a.completed == 120
        assert a.target_rate == 30.0
        assert len(a.latencies) == 120

    def test_invalid_rate_rejected(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)
        with pytest.raises(ValueError):
            run(env, run_load(env, gateway, "f", rate=0, duration=1))


class TestMigration:
    def test_allocation_migrates_conflicting_instance(self):
        """An MM function allocated to a sobel-busy device displaces it."""
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow(env):
            # Fill all three devices with sobel functions.
            for index in range(1, 4):
                yield from gateway.deploy(FunctionSpec(
                    name=f"sobel-{index}",
                    app_factory=lambda: SobelApp(width=64, height=64),
                    device_query=DeviceQuery(accelerator="sobel"),
                ))
                yield from controller.wait_ready(f"sobel-{index}")
            # An MM function must reconfigure some device; its sobel tenant
            # is migrated (create-before-delete) to another device.
            yield from gateway.deploy(FunctionSpec(
                name="mm-1",
                app_factory=lambda: MMApp(n=64),
                device_query=DeviceQuery(accelerator="mm"),
            ))
            yield from controller.wait_ready("mm-1")
            yield env.timeout(10.0)  # let the migration finish
            latency, _ = yield from gateway.invoke("mm-1")
            for index in range(1, 4):
                yield from gateway.invoke(f"sobel-{index}")
            return latency

        run(env, flow(env))
        assert registry.migrations == 1
        # All functions still have exactly one running instance.
        for name in ("sobel-1", "sobel-2", "sobel-3", "mm-1"):
            assert len(testbed.cluster.pods_of_function(name)) == 1
        # The displaced sobel function now shares a device with another.
        mm_record = next(
            d for d in registry.devices.all()
            if d.configured_bitstream == "mm"
        )
        assert len(mm_record.instances) == 1

"""Behavioural tests of the three benchmark apps' OpenCL call patterns."""

import pytest

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.serverless import (
    AlexNetApp,
    FunctionController,
    FunctionSpec,
    Gateway,
    MMApp,
    SobelApp,
)
from repro.sim import Environment


def deploy_and_invoke(app_factory, accelerator, invocations=1):
    env = Environment()
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate

    def flow():
        yield from gateway.deploy(FunctionSpec(
            name="fn", app_factory=app_factory,
            device_query=DeviceQuery(accelerator=accelerator),
        ))
        yield from controller.wait_ready("fn")
        manager = testbed.managers[
            testbed.cluster.pods["fn-i1"].spec.env["BF_MANAGER"]
        ]
        before_tasks = manager.metrics.get("tasks_total").value
        before_ops = {
            kind: manager.metrics.get("ops_total").labels(kind).value
            for kind in ("write", "read", "kernel", "marker")
        }
        latencies = []
        for _ in range(invocations):
            latency, _result = yield from gateway.invoke("fn")
            latencies.append(latency)
        after_tasks = manager.metrics.get("tasks_total").value
        after_ops = {
            kind: manager.metrics.get("ops_total").labels(kind).value
            for kind in before_ops
        }
        delta_ops = {k: after_ops[k] - before_ops[k] for k in after_ops}
        return (after_tasks - before_tasks) / invocations, delta_ops, \
            latencies

    return env.run(until=env.process(flow()))


class TestSobelCallPattern:
    def test_one_task_per_request(self):
        """write+kernel+read land in a single atomic task."""
        tasks_per_request, ops, _ = deploy_and_invoke(
            lambda: SobelApp(), "sobel", invocations=3
        )
        assert tasks_per_request == 1
        assert ops["write"] == 3
        assert ops["kernel"] == 3
        assert ops["read"] == 3


class TestMMCallPattern:
    def test_blocking_writes_split_tasks(self):
        """Spector MM's two blocking writes close their own tasks."""
        tasks_per_request, ops, _ = deploy_and_invoke(
            lambda: MMApp(n=64), "mm", invocations=2
        )
        # write A | write B | kernel+read  →  3 tasks per request.
        assert tasks_per_request == 3
        assert ops["write"] == 4
        assert ops["kernel"] == 2
        assert ops["read"] == 2


class TestAlexNetCallPattern:
    def test_layer_boundaries_create_tasks(self):
        """PipeCNN waits per layer: 8 layer tasks + the final read task."""
        tasks_per_request, ops, latencies = deploy_and_invoke(
            lambda: AlexNetApp(), "pipecnn_alexnet", invocations=1
        )
        assert tasks_per_request == 9
        # 8 conv + 3 pool + 2 lrn + 8 mem_rd + 8 mem_wr = 29 kernel ops.
        assert ops["kernel"] == 29
        assert ops["read"] == 1
        # Unloaded single inference ≈ device time + per-layer round trips.
        assert 0.09 < latencies[0] < 0.13

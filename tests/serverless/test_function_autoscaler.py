"""Tests for function-replica autoscaling on endpoint queue depth."""

import pytest

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.loadgen import run_load
from repro.serverless import (
    FunctionAutoscaler,
    FunctionAutoscalerPolicy,
    FunctionController,
    FunctionSpec,
    Gateway,
    SobelApp,
)
from repro.sim import Environment


def make_stack(env):
    testbed = build_testbed(env, functional=False, scrape_interval=1.0)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate
    return testbed, registry, gateway, controller


def deploy_sobel(env, gateway, controller, name="sobel-1"):
    def flow():
        yield from gateway.deploy(FunctionSpec(
            name=name,
            app_factory=lambda: SobelApp(),
            device_query=DeviceQuery(accelerator="sobel"),
        ))
        yield from controller.wait_ready(name)

    env.run(until=env.process(flow()))


class TestScaleUp:
    def test_queue_pressure_adds_replicas(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)
        deploy_sobel(env, gateway, controller)
        autoscaler = FunctionAutoscaler(
            env, testbed.cluster, gateway,
            policy=FunctionAutoscalerPolicy(
                queue_threshold=2, interval=1.0, cooldown=3.0,
                max_replicas=3,
            ),
        )

        def flow():
            # 4 parallel connections at a rate far beyond one instance's
            # ~50 rq/s capacity builds a queue.
            stats = yield from run_load(
                env, gateway, "sobel-1", rate=160.0, duration=30.0,
                connections=4,
            )
            return stats

        env.run(until=env.process(flow()))
        assert autoscaler.scale_ups >= 1
        assert autoscaler.replicas("sobel-1") >= 2
        # Replicas were allocated devices by the Registry like any pod.
        total_instances = sum(
            len(d.instances) for d in registry.devices.all()
        )
        assert total_instances == autoscaler.replicas("sobel-1")

    def test_replicas_increase_throughput(self):
        def measured(max_replicas):
            env = Environment()
            testbed, registry, gateway, controller = make_stack(env)
            deploy_sobel(env, gateway, controller)
            FunctionAutoscaler(
                env, testbed.cluster, gateway,
                policy=FunctionAutoscalerPolicy(
                    queue_threshold=2, interval=1.0, cooldown=2.0,
                    max_replicas=max_replicas,
                ),
            )

            def flow():
                stats = yield from run_load(
                    env, gateway, "sobel-1", rate=160.0, duration=30.0,
                    connections=4, warmup=5.0,
                )
                return stats

            return env.run(until=env.process(flow()))

        single = measured(max_replicas=1)
        scaled = measured(max_replicas=3)
        assert scaled.achieved_rate > 1.3 * single.achieved_rate


class TestScaleDown:
    def test_idle_function_sheds_autoscaled_replicas(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)
        deploy_sobel(env, gateway, controller)
        autoscaler = FunctionAutoscaler(
            env, testbed.cluster, gateway,
            policy=FunctionAutoscalerPolicy(
                queue_threshold=2, interval=1.0, cooldown=2.0,
                max_replicas=3, idle_periods=3,
            ),
        )

        def flow():
            yield from run_load(
                env, gateway, "sobel-1", rate=160.0, duration=15.0,
                connections=4,
            )
            # Then silence: autoscaled replicas should retire.
            yield env.timeout(30.0)

        env.run(until=env.process(flow()))
        assert autoscaler.scale_ups >= 1
        assert autoscaler.scale_downs >= 1
        assert autoscaler.replicas("sobel-1") < 3

    def test_never_drops_below_spec_replicas(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)
        deploy_sobel(env, gateway, controller)
        autoscaler = FunctionAutoscaler(
            env, testbed.cluster, gateway,
            policy=FunctionAutoscalerPolicy(
                interval=1.0, idle_periods=2, cooldown=1.0,
            ),
        )
        env.run(until=30.0)
        assert autoscaler.replicas("sobel-1") == 1
        assert autoscaler.scale_downs == 0

"""Failure injection across the serverless layer."""

import pytest

from repro.cluster import DeviceQuery, build_testbed
from repro.core.registry import AcceleratorsRegistry
from repro.core.registry.allocation import AllocationError
from repro.core.remote_lib import ManagerAddress, PlatformRouter
from repro.serverless import (
    FunctionApp,
    FunctionController,
    FunctionSpec,
    Gateway,
    InvocationError,
    SobelApp,
)
from repro.sim import Environment


def make_stack(env):
    testbed = build_testbed(env, functional=False)
    registry = AcceleratorsRegistry(
        env, testbed.cluster, list(testbed.managers.values()),
        scraper=testbed.scraper,
    )
    router = PlatformRouter(env, testbed.network, testbed.library)
    router.add_managers(
        [ManagerAddress.of(m) for m in testbed.managers.values()]
    )
    gateway = Gateway(env, testbed.cluster)
    controller = FunctionController(env, testbed.cluster, gateway, router)
    registry.migrator = controller.migrate
    return testbed, registry, gateway, controller


class CrashyApp(FunctionApp):
    """Fails every other request."""

    host_overhead = 1e-3

    def __init__(self):
        self.calls = 0

    def setup(self, env, platform, node):
        self.env = env
        return
        yield

    def handle(self, request):
        self.calls += 1
        yield self.env.timeout(1e-3)
        if self.calls % 2 == 0:
            raise RuntimeError("transient backend failure")
        return {"ok": True}


class TestHandlerFailures:
    def test_failures_surface_as_invocation_errors(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="crashy", app_factory=CrashyApp,
            ))
            yield from controller.wait_ready("crashy")
            outcomes = []
            for _ in range(4):
                try:
                    _, result = yield from gateway.invoke("crashy")
                    outcomes.append("ok")
                except InvocationError:
                    outcomes.append("error")
            return outcomes

        outcomes = env.run(until=env.process(flow()))
        assert outcomes == ["ok", "error", "ok", "error"]
        function = gateway.function("crashy")
        assert function.failures == 2
        assert function.invocations == 4

    def test_instance_survives_handler_failures(self):
        """A crashing request must not kill the serving loop."""
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="crashy", app_factory=CrashyApp,
            ))
            yield from controller.wait_ready("crashy")
            for _ in range(2):
                try:
                    yield from gateway.invoke("crashy")
                except InvocationError:
                    pass
            latency, result = yield from gateway.invoke("crashy")
            return result

        assert env.run(until=env.process(flow())) == {"ok": True}


class TestStartupFailures:
    def test_unallocatable_function_rejected_at_admission(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="fn",
                app_factory=lambda: SobelApp(width=64, height=64),
                device_query=DeviceQuery(accelerator="nonexistent-acc"),
            ))

        with pytest.raises(AllocationError):
            env.run(until=env.process(flow()))
        # Nothing half-deployed remains.
        assert testbed.cluster.pods == {}

    def test_wait_ready_propagates_setup_failure(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        class BadSetupApp(FunctionApp):
            def setup(self, env, platform, node):
                raise RuntimeError("missing weights file")
                yield

            def handle(self, request):
                yield

        def flow():
            yield from gateway.deploy(FunctionSpec(
                name="bad", app_factory=BadSetupApp,
                device_query=DeviceQuery(accelerator="sobel"),
            ))
            yield from controller.wait_ready("bad")

        with pytest.raises(RuntimeError, match="missing weights"):
            env.run(until=env.process(flow()))


class TestGatewayMisuse:
    def test_unknown_function_invoke(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)
        with pytest.raises(KeyError):
            env.run(until=env.process(gateway.invoke("ghost")))

    def test_duplicate_deploy_rejected(self):
        env = Environment()
        testbed, registry, gateway, controller = make_stack(env)

        def flow():
            spec = FunctionSpec(
                name="fn",
                app_factory=lambda: SobelApp(width=64, height=64),
                device_query=DeviceQuery(accelerator="sobel"),
            )
            yield from gateway.deploy(spec)
            yield from gateway.deploy(spec)

        with pytest.raises(ValueError, match="already deployed"):
            env.run(until=env.process(flow()))

"""Determinism and semantics of the fault-injection plane."""

import pytest

from repro.faults import (
    PASS,
    FaultRng,
    FaultScript,
    NetworkFaultPlane,
)
from repro.sim import Environment


class TestFaultRng:
    def test_same_seed_same_stream(self):
        a, b = FaultRng(42), FaultRng(42)
        assert [a.random() for _ in range(100)] == [
            b.random() for _ in range(100)
        ]

    def test_different_seeds_diverge(self):
        a, b = FaultRng(1), FaultRng(2)
        assert [a.random() for _ in range(10)] != [
            b.random() for _ in range(10)
        ]

    def test_unit_interval(self):
        rng = FaultRng(7)
        draws = [rng.random() for _ in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_fork_is_independent_and_deterministic(self):
        parent = FaultRng(5)
        child = parent.fork(3)
        again = FaultRng(5).fork(3)
        assert [child.random() for _ in range(10)] == [
            again.random() for _ in range(10)
        ]


class TestNetworkFaultPlane:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            NetworkFaultPlane(drop_rate=-0.1)
        with pytest.raises(ValueError):
            NetworkFaultPlane(drop_rate=0.6, duplicate_rate=0.6)

    def test_zero_rates_always_pass(self):
        plane = NetworkFaultPlane(seed=1)
        for _ in range(50):
            assert plane.message_action("a", "b") is PASS
        assert plane.counters["delivered"] == 50
        assert plane.counters["dropped"] == 0

    def test_seeded_verdicts_replay(self):
        def verdicts(plane):
            return [
                (v.drop, v.delay, v.duplicate)
                for v in (plane.message_action("a", "b")
                          for _ in range(500))
            ]

        kwargs = dict(seed=9, drop_rate=0.1, duplicate_rate=0.1,
                      delay_rate=0.1)
        assert verdicts(NetworkFaultPlane(**kwargs)) == verdicts(
            NetworkFaultPlane(**kwargs)
        )

    def test_all_bands_reachable(self):
        plane = NetworkFaultPlane(seed=3, drop_rate=0.2, duplicate_rate=0.2,
                                  delay_rate=0.2, delay=0.5)
        for _ in range(500):
            plane.message_action("a", "b")
        counters = plane.counters
        assert counters["dropped"] > 0
        assert counters["duplicated"] > 0
        assert counters["delayed"] > 0
        assert (counters["delivered"] + counters["dropped"]) == 500

    def test_partition_drops_both_directions(self):
        plane = NetworkFaultPlane(seed=1)
        plane.partition("a", "b")
        assert plane.message_action("a", "b").drop
        assert plane.message_action("b", "a").drop
        assert plane.counters["partitioned"] == 2
        plane.heal("a", "b")
        assert plane.message_action("a", "b") is PASS

    def test_partition_consumes_no_draws(self):
        # Healing a partition must replay the rest of the run unchanged:
        # the partitioned messages take no random draws.
        kwargs = dict(seed=11, drop_rate=0.3, duplicate_rate=0.3)
        partitioned = NetworkFaultPlane(**kwargs)
        partitioned.partition("a", "b")
        for _ in range(25):
            partitioned.message_action("a", "b")
        partitioned.heal("a", "b")
        fresh = NetworkFaultPlane(**kwargs)
        after = [
            (v.drop, v.duplicate)
            for v in (partitioned.message_action("a", "b")
                      for _ in range(100))
        ]
        baseline = [
            (v.drop, v.duplicate)
            for v in (fresh.message_action("a", "b") for _ in range(100))
        ]
        assert after == baseline

    def test_isolation_cuts_host_off(self):
        plane = NetworkFaultPlane(seed=1)
        plane.isolate("b")
        assert plane.message_action("a", "b").drop
        assert plane.message_action("b", "c").drop
        assert plane.message_action("a", "c") is PASS
        plane.rejoin("b")
        assert plane.message_action("a", "b") is PASS

    def test_loopback_never_partitions(self):
        plane = NetworkFaultPlane(seed=1)
        plane.isolate("a")
        assert plane.message_action("a", "a") is PASS


class _Crashable:
    def __init__(self, name):
        self.name = name
        self.log = []

    def crash(self):
        self.log.append("crash")

    def restart(self):
        self.log.append("restart")


class TestFaultScript:
    def test_actions_run_in_time_order(self):
        env = Environment()
        script = FaultScript(env)
        order = []
        script.at(2.0, "second", lambda: order.append(("second", env.now)))
        script.at(1.0, "first", lambda: order.append(("first", env.now)))
        script.arm()
        env.run()
        assert order == [("first", 1.0), ("second", 2.0)]
        assert [(when, what) for when, what in script.executed] == [
            (1.0, "first"), (2.0, "second")
        ]

    def test_crash_manager_schedules_restart(self):
        env = Environment()
        manager = _Crashable("dm-X")
        script = FaultScript(env)
        script.crash_manager(manager, at=1.0, restart_after=0.5)
        script.arm()
        env.run()
        assert manager.log == ["crash", "restart"]
        assert script.executed[0][1] == "crash dm-X"
        assert script.executed[1] == (1.5, "restart dm-X")

    def test_partition_action_drives_plane(self):
        env = Environment()
        plane = NetworkFaultPlane(seed=1)
        script = FaultScript(env)
        script.partition(plane, "a", "b", at=1.0, heal_after=1.0)
        script.arm()
        env.run(until=1.5)
        assert plane.is_partitioned("a", "b")
        env.run()
        assert not plane.is_partitioned("a", "b")

    def test_cannot_extend_or_rearm_after_arming(self):
        env = Environment()
        script = FaultScript(env)
        script.at(1.0, "noop", lambda: None)
        script.arm()
        with pytest.raises(RuntimeError):
            script.at(2.0, "late", lambda: None)
        with pytest.raises(RuntimeError):
            script.arm()

"""Unit and property-based tests for Resource/Store/Container primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityItem,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


class TestResource:
    def test_capacity_enforced(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        log = []

        def user(env, name, hold):
            with resource.request() as req:
                yield req
                log.append(("acquired", name, env.now))
                yield env.timeout(hold)
            log.append(("released", name, env.now))

        env.process(user(env, "a", 2.0))
        env.process(user(env, "b", 2.0))
        env.process(user(env, "c", 2.0))
        env.run()
        acquired = {name: t for op, name, t in log if op == "acquired"}
        assert acquired == {"a": 0.0, "b": 0.0, "c": 2.0}

    def test_fifo_grant_order(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def user(env, name):
            with resource.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1.0)

        for name in "abcde":
            env.process(user(env, name))
        env.run()
        assert order == list("abcde")

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_count_tracks_users(self):
        env = Environment()
        resource = Resource(env, capacity=3)

        def user(env):
            with resource.request() as req:
                yield req
                yield env.timeout(1.0)

        env.process(user(env))
        env.process(user(env))
        env.run(until=0.5)
        assert resource.count == 2
        env.run()
        assert resource.count == 0

    def test_cancel_queued_request(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        granted = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(10.0)

        def impatient(env):
            req = resource.request()
            yield env.timeout(1.0)
            req.cancel()

        def patient(env):
            yield env.timeout(0.5)
            with resource.request() as req:
                yield req
                granted.append(env.now)

        env.process(holder(env))
        env.process(impatient(env))
        env.process(patient(env))
        env.run()
        # The cancelled request must not block `patient` past the holder.
        assert granted == [10.0]


class TestPriorityResource:
    def test_priority_grant_order(self):
        env = Environment()
        resource = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with resource.request(priority=0) as req:
                yield req
                yield env.timeout(5.0)

        def user(env, name, priority, arrival):
            yield env.timeout(arrival)
            with resource.request(priority=priority) as req:
                yield req
                order.append(name)

        env.process(holder(env))
        env.process(user(env, "low", 5, 1.0))
        env.process(user(env, "high", 1, 2.0))
        env.run()
        assert order == ["high", "low"]

    def test_equal_priority_is_fifo(self):
        env = Environment()
        resource = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with resource.request(priority=0) as req:
                yield req
                yield env.timeout(5.0)

        def user(env, name, arrival):
            yield env.timeout(arrival)
            with resource.request(priority=3) as req:
                yield req
                order.append(name)

        env.process(holder(env))
        env.process(user(env, "first", 1.0))
        env.process(user(env, "second", 2.0))
        env.run()
        assert order == ["first", "second"]


class TestStore:
    def test_put_get_fifo(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for i in range(3):
                yield store.put(i)
                yield env.timeout(1.0)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(4.0)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(4.0, "x")]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env):
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("put-a", 0.0), ("put-b", 3.0)]

    def test_len_reports_items(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert len(store) == 2


class TestFilterStore:
    def test_filter_skips_non_matching(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda i: i % 2 == 0)
            got.append(item)

        def producer(env):
            yield store.put(1)
            yield store.put(2)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [2]
        assert store.items == [1]

    def test_blocked_filter_get_does_not_block_others(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def never(env):
            yield store.get(lambda i: i == "never")

        def matcher(env):
            item = yield store.get(lambda i: i == "yes")
            got.append(item)

        env.process(never(env))
        env.process(matcher(env))

        def producer(env):
            yield env.timeout(1.0)
            yield store.put("yes")

        env.process(producer(env))
        env.run(until=10.0)
        assert got == ["yes"]


class TestPriorityStore:
    def test_items_come_out_in_priority_order(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer(env):
            yield store.put(PriorityItem(2, "low"))
            yield store.put(PriorityItem(0, "high"))
            yield store.put(PriorityItem(1, "mid"))

        def consumer(env):
            yield env.timeout(1.0)
            for _ in range(3):
                item = yield store.get()
                got.append(item.item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["high", "mid", "low"]


class TestContainer:
    def test_get_blocks_until_level(self):
        env = Environment()
        container = Container(env, capacity=10.0, init=0.0)
        got = []

        def consumer(env):
            yield container.get(5.0)
            got.append(env.now)

        def producer(env):
            for _ in range(5):
                yield env.timeout(1.0)
                yield container.put(1.0)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [5.0]
        assert container.level == 0.0

    def test_put_blocks_at_capacity(self):
        env = Environment()
        container = Container(env, capacity=2.0, init=2.0)
        done = []

        def producer(env):
            yield container.put(1.0)
            done.append(env.now)

        def consumer(env):
            yield env.timeout(2.0)
            yield container.get(1.5)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert done == [2.0]

    def test_invalid_amounts(self):
        env = Environment()
        container = Container(env, capacity=1.0)
        with pytest.raises(ValueError):
            container.put(0)
        with pytest.raises(ValueError):
            container.get(-1)
        with pytest.raises(ValueError):
            Container(env, capacity=1.0, init=5.0)


class TestStoreProperties:
    @given(items=st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_store_preserves_fifo_order(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in items:
                yield store.put(item)

        def consumer(env):
            for _ in items:
                received.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == items

    @given(
        priorities=st.lists(st.integers(min_value=0, max_value=5),
                            min_size=1, max_size=30)
    )
    @settings(max_examples=50, deadline=None)
    def test_priority_store_is_stable_sort(self, priorities):
        env = Environment()
        store = PriorityStore(env)
        tagged = list(enumerate(priorities))
        received = []

        def producer(env):
            for index, priority in tagged:
                yield store.put(PriorityItem(priority, index))

        def consumer(env):
            yield env.timeout(1.0)
            for _ in tagged:
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        expected = sorted(tagged, key=lambda pair: (pair[1], pair[0]))
        assert [(item.item, item.priority) for item in received] == [
            (index, priority) for index, priority in expected
        ]

    @given(
        holds=st.lists(
            st.floats(min_value=0.1, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=20,
        ),
        capacity=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_resource_never_exceeds_capacity(self, holds, capacity):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        max_seen = 0

        def user(env, hold):
            nonlocal max_seen
            with resource.request() as req:
                yield req
                max_seen = max(max_seen, resource.count)
                yield env.timeout(hold)

        for hold in holds:
            env.process(user(env, hold))
        env.run()
        assert max_seen <= capacity
        assert resource.count == 0

"""Unit tests for the DES scheduler and process machinery."""

import pytest

from repro.sim import Environment, Interrupt, SimError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run()
    assert env.now == 3.0


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_process_return_value_via_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    p = env.process(proc(env))
    assert env.run(until=p) == 99


def test_process_join():
    env = Environment()
    order = []

    def child(env):
        yield env.timeout(2.0)
        order.append("child")
        return "result"

    def parent(env):
        value = yield env.process(child(env))
        order.append("parent")
        assert value == "result"

    env.process(parent(env))
    env.run()
    assert order == ["child", "parent"]


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, name):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, 3.0, "c"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abcd":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcd")


def test_unhandled_process_exception_propagates():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(proc(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_failure_handled_by_joiner_does_not_propagate():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["boom"]


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_event_succeed_wakes_waiter():
    env = Environment()
    done = env.event()
    seen = []

    def waiter(env):
        value = yield done
        seen.append(value)

    def firer(env):
        yield env.timeout(5.0)
        done.succeed("fired")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert seen == ["fired"]
    assert env.now == 5.0


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimError):
        event.succeed()


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimError):
        _ = event.value


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    order = []

    def proc(env):
        done = env.event()
        done.succeed("x")
        yield env.timeout(1.0)  # let `done` be processed first
        value = yield done
        order.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert order == [(1.0, "x")]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim_proc):
        yield env.timeout(3.0)
        victim_proc.interrupt(cause="migration")

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert log == [(3.0, "migration")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def victim(env):
        yield env.timeout(1.0)

    v = env.process(victim(env))
    env.run()
    with pytest.raises(SimError):
        v.interrupt()


def test_interrupted_process_not_resumed_by_stale_target():
    env = Environment()
    resumed = []

    def victim(env):
        try:
            yield env.timeout(10.0)
            resumed.append("timeout")
        except Interrupt:
            yield env.timeout(100.0)
            resumed.append("after-interrupt")

    def interrupter(env, victim_proc):
        yield env.timeout(1.0)
        victim_proc.interrupt()

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    # The original 10s timeout must not resume the victim a second time.
    assert resumed == ["after-interrupt"]
    assert env.now == 101.0


def test_run_until_untriggered_event_with_empty_schedule_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimError):
        env.run(until=event)


def test_active_process_tracking():
    env = Environment()
    observed = []

    def proc(env):
        observed.append(env.active_process)
        yield env.timeout(1.0)

    p = env.process(proc(env))
    env.run()
    assert observed == [p]
    assert env.active_process is None


def test_peek_empty_queue_is_infinite():
    env = Environment()
    env.run()
    assert env.peek() == float("inf")

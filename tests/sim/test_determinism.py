"""Determinism guarantees of the simulation substrate.

Every benchmark in this repository runs a single round; that is only valid
because identical programs produce identical traces.  These tests pin that
property at three levels: the raw kernel, a full remote-stack run, and a
load-test scenario.
"""

import pytest

from repro.sim import Environment, PriorityResource, Resource, Store


def kernel_trace():
    """A mixed workload over the kernel's primitives; returns its trace."""
    env = Environment()
    trace = []
    resource = Resource(env, capacity=2)
    priority = PriorityResource(env)
    store = Store(env, capacity=3)

    def producer(name, delay):
        yield env.timeout(delay)
        for index in range(5):
            yield store.put((name, index))
            trace.append(("put", name, index, env.now))
            yield env.timeout(0.3)

    def consumer(name):
        for _ in range(5):
            item = yield store.get()
            trace.append(("got", name, item, env.now))
            with resource.request() as req:
                yield req
                yield env.timeout(0.7)

    def vip(priority_value, arrival):
        yield env.timeout(arrival)
        with priority.request(priority=priority_value) as req:
            yield req
            trace.append(("vip", priority_value, env.now))
            yield env.timeout(0.1)

    env.process(producer("a", 0.1))
    env.process(producer("b", 0.2))
    env.process(consumer("x"))
    env.process(consumer("y"))
    for p, t in ((3, 0.05), (1, 0.06), (2, 0.07)):
        env.process(vip(p, t))
    env.run()
    return trace, env.now


class TestKernelDeterminism:
    def test_identical_runs_identical_traces(self):
        first_trace, first_end = kernel_trace()
        second_trace, second_end = kernel_trace()
        assert first_trace == second_trace
        assert first_end == second_end


class TestStackDeterminism:
    def _one_run(self):
        from repro.core.device_manager import DeviceManager
        from repro.core.remote_lib import remote_platform
        from repro.fpga import FPGABoard, standard_library
        from repro.ocl import Context
        from repro.rpc import Network

        env = Environment()
        network = Network(env)
        library = standard_library()
        node = network.host("B")
        board = FPGABoard(env, functional=False)
        manager = DeviceManager(env, "dm-B", board, library, network, node)
        timestamps = []

        def client(name):
            platform = yield from remote_platform(
                env, name, node, manager, network, library
            )
            context = Context(platform.get_devices())
            queue = context.create_queue()
            program = context.create_program("sobel")
            yield from program.build()
            kernel = program.create_kernel("sobel")
            a = context.create_buffer(256 * 256 * 4)
            b = context.create_buffer(256 * 256 * 4)
            kernel.set_args(a, b, 256, 256)
            for _ in range(3):
                queue.enqueue_write_buffer(a, nbytes=a.size)
                queue.enqueue_kernel(kernel)
                yield from queue.read_buffer(b)
                timestamps.append((name, env.now))

        env.process(client("fn-1"))
        env.process(client("fn-2"))
        env.run()
        return timestamps

    def test_remote_stack_is_deterministic(self):
        assert self._one_run() == self._one_run()


class TestLoadScenarioDeterminism:
    def test_scenario_results_repeat_exactly(self):
        from repro.experiments import rates_for, run_scenario
        from repro.experiments.config import LoadTiming
        from repro.serverless import SobelApp

        def once():
            result = run_scenario(
                use_case="sobel", configuration="low",
                runtime="blastfunction",
                app_factory=lambda: SobelApp(),
                accelerator="sobel",
                rates=rates_for("sobel", "low", "blastfunction"),
                timing=LoadTiming(warmup=1.0, duration=4.0),
            )
            return [
                (fn.function, fn.node, fn.utilization, fn.latency,
                 fn.processed)
                for fn in result.functions
            ]

        assert once() == once()

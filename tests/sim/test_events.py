"""Unit tests for composite events (AllOf/AnyOf) and event chaining."""

import pytest

from repro.sim import AllOf, AnyOf, Environment


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        result = yield AllOf(env, [t1, t2])
        times.append(env.now)
        assert result[t1] == "a"
        assert result[t2] == "b"

    env.process(proc(env))
    env.run()
    assert times == [3.0]


def test_any_of_fires_on_first_event():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(3.0, value="slow")
        result = yield AnyOf(env, [t1, t2])
        times.append(env.now)
        assert t1 in result
        assert t2 not in result

    env.process(proc(env))
    env.run()
    assert times == [1.0]


def test_and_operator():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) & env.timeout(2.0)
        assert env.now == 2.0

    env.process(proc(env))
    env.run()


def test_or_operator():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) | env.timeout(2.0)
        assert env.now == 1.0

    env.process(proc(env))
    env.run()


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc(env):
        yield AllOf(env, [])
        assert env.now == 0.0

    env.process(proc(env))
    env.run()


def test_all_of_with_already_processed_events():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0)
        yield t1  # t1 is now processed
        t2 = env.timeout(1.0)
        yield AllOf(env, [t1, t2])
        assert env.now == 2.0

    env.process(proc(env))
    env.run()


def test_all_of_failure_propagates():
    env = Environment()
    caught = []

    def failing(env):
        yield env.timeout(1.0)
        raise RuntimeError("child failed")

    def proc(env):
        child = env.process(failing(env))
        slow = env.timeout(10.0)
        try:
            yield AllOf(env, [child, slow])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["child failed"]


def test_condition_value_mapping_api():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value=1)
        t2 = env.timeout(2.0, value=2)
        result = yield AllOf(env, [t1, t2])
        assert len(result) == 2
        assert list(result) == [t1, t2]
        assert result.todict() == {t1: 1, t2: 2}
        with pytest.raises(KeyError):
            _ = result[env.event()]

    env.process(proc(env))
    env.run()


def test_cross_environment_condition_rejected():
    env1 = Environment()
    env2 = Environment()
    t1 = env1.timeout(1.0)
    t2 = env2.timeout(1.0)
    with pytest.raises(ValueError):
        AllOf(env1, [t1, t2])


def test_event_trigger_chains_state():
    env = Environment()
    source = env.event()
    sink = env.event()
    source.callbacks.append(sink.trigger)
    source.succeed("payload")
    env.run()
    assert sink.ok
    assert sink.value == "payload"

"""The deadlock watchdog turns silent hangs into loud failures."""

import pytest

from repro.sim import Environment, WatchdogError, pending_summary, run_guarded


def test_normal_run_returns_the_event_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return "done"

    assert run_guarded(env, until=env.process(proc())) == "done"
    assert env.now == 1.0


def test_already_processed_event_returns_immediately():
    env = Environment()

    def proc():
        yield env.timeout(0.5)
        return "early"

    done = env.process(proc())
    env.run()
    assert run_guarded(env, until=done) == "early"


def test_deadlock_is_named_not_silent():
    env = Environment()
    never = env.event()

    def proc():
        yield never  # nobody will ever trigger this

    with pytest.raises(WatchdogError, match="deadlocked"):
        run_guarded(env, until=env.process(proc()), what="stuck client")


def test_virtual_time_overrun_dumps_pending_events():
    env = Environment()

    def spinner():
        while True:
            yield env.timeout(0.1)

    env.process(spinner())

    def proc():
        yield env.event()

    with pytest.raises(WatchdogError, match="still pending") as excinfo:
        run_guarded(env, until=env.process(proc()), deadline=5.0)
    assert "Timeout" in str(excinfo.value)  # the spinner's next events


def test_overrun_without_target_event():
    env = Environment()

    def spinner():
        while True:
            yield env.timeout(0.1)

    env.process(spinner())
    with pytest.raises(WatchdogError, match="still running"):
        run_guarded(env, deadline=2.0)


def test_clean_exhaustion_without_target_event():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    env.process(proc())
    assert run_guarded(env, deadline=10.0) is None
    assert env.peek() == float("inf")  # the schedule drained cleanly


def test_failed_until_event_raises_the_original_error():
    env = Environment()

    def proc():
        yield env.timeout(0.1)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        run_guarded(env, until=env.process(proc()))


def test_pending_summary_formats_schedule():
    env = Environment()
    env.timeout(1.5)
    text = pending_summary(env)
    assert "t=1.5" in text
    assert "Timeout" in text
    assert pending_summary(Environment()) == "schedule empty"

"""TimerWheel: one periodic DES event multiplexing many subscribers."""

import pytest

from repro.sim import Environment, TimerWheel


class TestTicking:
    def test_single_subscriber_fires_every_tick(self):
        env = Environment()
        wheel = TimerWheel(env, tick=0.5)
        times = []
        wheel.every(1, lambda: times.append(env.now))
        env.run(until=2.6)
        assert times == [0.5, 1.0, 1.5, 2.0, 2.5]

    def test_periods_are_multiples_of_the_tick(self):
        env = Environment()
        wheel = TimerWheel(env, tick=0.5)
        fast, slow = [], []
        wheel.every(1, lambda: fast.append(env.now))
        wheel.every(4, lambda: slow.append(env.now))
        env.run(until=4.1)
        assert len(fast) == 8
        assert slow == [2.0, 4.0]

    def test_callbacks_run_in_subscription_order(self):
        env = Environment()
        wheel = TimerWheel(env, tick=1.0)
        order = []
        wheel.every(1, lambda: order.append("first"))
        wheel.every(1, lambda: order.append("second"))
        env.run(until=1.1)
        assert order == ["first", "second"]

    def test_one_event_per_tick_regardless_of_subscribers(self):
        """The wheel's whole point: event volume is O(1) per interval."""
        env = Environment()
        wheel = TimerWheel(env, tick=1.0)
        for _ in range(100):
            wheel.every(1, lambda: None)
        env.run(until=10.1)
        solo_env = Environment()
        solo_wheel = TimerWheel(solo_env, tick=1.0)
        solo_wheel.every(1, lambda: None)
        solo_env.run(until=10.1)
        assert env._eid == solo_env._eid
        assert wheel.ticks == 10


class TestLifecycle:
    def test_cancel_stops_a_subscriber_only(self):
        env = Environment()
        wheel = TimerWheel(env, tick=1.0)
        kept, dropped = [], []
        sub = wheel.every(1, lambda: dropped.append(env.now))
        wheel.every(1, lambda: kept.append(env.now))
        env.run(until=2.1)
        wheel.cancel(sub)
        env.run(until=4.1)
        assert dropped == [1.0, 2.0]
        assert kept == [1.0, 2.0, 3.0, 4.0]

    def test_cancel_from_inside_a_callback_defers_one_round(self):
        env = Environment()
        wheel = TimerWheel(env, tick=1.0)
        fired = []

        def once():
            fired.append(env.now)
            wheel.cancel(sub)

        sub = wheel.every(1, once)
        env.run(until=3.1)
        assert fired == [1.0]

    def test_stop_kills_the_wheel_process(self):
        env = Environment()
        wheel = TimerWheel(env, tick=1.0)
        fired = []
        wheel.every(1, lambda: fired.append(env.now))
        env.run(until=1.1)
        wheel.stop()
        env.run(until=5.0)
        assert fired == [1.0]


class TestValidation:
    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError):
            TimerWheel(Environment(), tick=0.0)

    def test_rejects_zero_period(self):
        wheel = TimerWheel(Environment(), tick=1.0)
        with pytest.raises(ValueError):
            wheel.every(0, lambda: None)

    def test_ticks_for_converts_multiples(self):
        wheel = TimerWheel(Environment(), tick=0.5)
        assert wheel.ticks_for(0.5) == 1
        assert wheel.ticks_for(2.0) == 4

    def test_ticks_for_rejects_non_multiples(self):
        wheel = TimerWheel(Environment(), tick=0.5)
        with pytest.raises(ValueError):
            wheel.ticks_for(0.75)
